"""Matrix characterisation metrics (Table I and Section VI-D).

The paper explains its per-matrix results with two scalar metrics:

* ``dependency = NNZ / nRows`` — average non-zeros per component; and
* ``parallelism = nRows / nLevels`` — average available concurrency per
  level.

This module computes those plus the structural statistics printed in
Table I, and classifies matrices into the scaling regimes discussed in the
scalability study (high-parallelism matrices benefit most from more GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import LevelSets, compute_levels
from repro.sparse.csc import CscMatrix

__all__ = ["MatrixProfile", "profile_matrix", "scaling_class"]


@dataclass(frozen=True)
class MatrixProfile:
    """Structural profile of a lower-triangular SpTRSV input.

    Mirrors one row of Table I plus the Section VI-D metrics.
    """

    name: str
    n_rows: int
    nnz: int
    n_levels: int
    parallelism: float
    dependency: float
    max_level_width: int
    mean_level_width: float
    max_in_degree: int
    mean_in_degree: float

    def table_row(self) -> str:
        """Format as a Table I style row."""
        return (
            f"{self.name:<22s} {self.n_rows:>10,d} {self.nnz:>12,d} "
            f"{self.n_levels:>8,d} {self.parallelism:>12,.0f}"
        )

    @staticmethod
    def table_header() -> str:
        return (
            f"{'Name':<22s} {'#Rows':>10s} {'#Non-Zeros':>12s} "
            f"{'#Levels':>8s} {'Parallelism':>12s}"
        )


def profile_matrix(
    lower: CscMatrix,
    name: str = "",
    levels: LevelSets | None = None,
) -> MatrixProfile:
    """Compute the :class:`MatrixProfile` of a lower-triangular matrix.

    Pass a precomputed ``levels`` to avoid re-running the level analysis
    when the caller already has it.
    """
    dag = build_dag(lower)
    if levels is None:
        levels = compute_levels(dag)
    n = lower.shape[0]
    widths = levels.level_sizes()
    return MatrixProfile(
        name=name or "<unnamed>",
        n_rows=n,
        nnz=lower.nnz,
        n_levels=levels.n_levels,
        parallelism=levels.parallelism,
        dependency=lower.nnz / max(n, 1),
        max_level_width=int(widths.max(initial=0)),
        mean_level_width=float(widths.mean()) if len(widths) else 0.0,
        max_in_degree=int(dag.in_degree.max(initial=0)),
        mean_in_degree=float(dag.in_degree.mean()) if n else 0.0,
    )


def scaling_class(profile: MatrixProfile) -> str:
    """Classify a matrix into the paper's qualitative scaling regimes.

    Returns one of:

    * ``"scales"`` — low dependency and high parallelism: benefits from
      more GPUs (dc2, nlpkkt160, powersim, Wordnet3 in the paper).
    * ``"neutral"`` — moderate on both axes.
    * ``"serial-bound"`` — long dependency chains / low parallelism: extra
      GPUs mostly wait (chipcool0, pkustk14, shipsec1).

    The discriminant is the ratio ``parallelism / dependency`` — width per
    unit of per-component work — which cleanly separates the paper's two
    named groups on both the original Table I stats and the stand-ins.
    """
    ratio = profile.parallelism / max(profile.dependency, 1e-12)
    if ratio >= 200.0:
        return "scales"
    if ratio <= 30.0:
        return "serial-bound"
    return "neutral"
