"""Reordering strategies (extension study).

The paper notes (Section II-B) that level-set structure — and with it
every parallel SpTRSV's behaviour — is determined by the matrix ordering.
This module implements two classic symmetric reorderings from scratch so
the benches can study how ordering moves a matrix through the
``(#levels, parallelism)`` plane:

* :func:`rcm_ordering` — reverse Cuthill–McKee on the symmetrised
  pattern: minimises bandwidth, typically *lengthening* dependency
  chains (good for cache, bad for parallel SpTRSV);
* :func:`level_packing_ordering` — sorts components by level (ties by
  original index): produces the level-major numbering that maximises the
  contiguity of independent work.

Both return permutations usable with
:func:`repro.sparse.triangular.permute_symmetric`; note that a symmetric
permutation of a triangular matrix is generally *not* triangular — use
:func:`reorder_lower` which re-extracts the lower triangle of the
permuted pattern, the standard workflow when benchmarking orderings.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.analysis.levels import compute_levels
from repro.errors import ShapeError
from repro.sparse.csc import CscMatrix
from repro.sparse.triangular import lower_triangle, permute_symmetric

__all__ = [
    "rcm_ordering",
    "level_packing_ordering",
    "red_black_ordering",
    "reorder_lower",
]


def red_black_ordering(nx: int, ny: int) -> np.ndarray:
    """Red-black (checkerboard) permutation of an ``nx x ny`` grid.

    The classical parallel ordering for 5-point stencils: all "red"
    vertices (``(r + c)`` even) are numbered before all "black" ones.
    No red vertex neighbours another red vertex, so an incomplete
    factorisation in this order yields a nearly two-level dependency
    structure — the textbook demonstration that ordering, not the
    operator, decides how parallel a triangular solve can be.

    Returns ``perm`` with ``perm[old] = new`` (row-major old numbering).
    """
    if nx < 1 or ny < 1:
        raise ShapeError("grid must be at least 1x1")
    n = nx * ny
    rr, cc = np.divmod(np.arange(n), nx)
    red = (rr + cc) % 2 == 0
    perm = np.empty(n, dtype=np.int64)
    perm[red] = np.arange(int(red.sum()), dtype=np.int64)
    perm[~red] = int(red.sum()) + np.arange(n - int(red.sum()), dtype=np.int64)
    return perm


def _symmetric_adjacency(mat: CscMatrix) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of the symmetrised pattern, self-loops removed."""
    coo = mat.to_coo()
    off = coo.row != coo.col
    r = np.concatenate([coo.row[off], coo.col[off]])
    c = np.concatenate([coo.col[off], coo.row[off]])
    key = np.unique(r * mat.shape[0] + c)
    r, c = key // mat.shape[0], key % mat.shape[0]
    ptr = np.zeros(mat.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(r, minlength=mat.shape[0]), out=ptr[1:])
    return ptr, c


def rcm_ordering(mat: CscMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee permutation of a square sparse matrix.

    Returns ``perm`` with ``perm[old] = new`` (the convention of
    :func:`~repro.sparse.triangular.permute_symmetric`).  BFS starts from
    a minimum-degree vertex of each connected component and visits
    neighbours in increasing-degree order; the final order is reversed.
    """
    n, m = mat.shape
    if n != m:
        raise ShapeError("RCM needs a square matrix")
    ptr, adj = _symmetric_adjacency(mat)
    degree = np.diff(ptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Process components in order of their minimum-degree seed.
    seeds = np.argsort(degree, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue = deque([int(seed)])
        while queue:
            v = queue.popleft()
            order.append(v)
            nbrs = adj[ptr[v] : ptr[v + 1]]
            nbrs = nbrs[~visited[nbrs]]
            visited[nbrs] = True
            for u in nbrs[np.argsort(degree[nbrs], kind="stable")]:
                queue.append(int(u))
    order.reverse()
    perm = np.empty(n, dtype=np.int64)
    perm[np.asarray(order)] = np.arange(n, dtype=np.int64)
    return perm


def level_packing_ordering(lower: CscMatrix) -> np.ndarray:
    """Permutation sorting components level-major (stable on index).

    Applied to a lower-triangular matrix this yields a numbering whose
    level sets are contiguous index ranges — the idealised layout for
    level-scheduled solvers and the block-distribution worst case for the
    task-model study.
    """
    levels = compute_levels(lower)
    order = np.lexsort((np.arange(levels.n), levels.level_of))
    perm = np.empty(levels.n, dtype=np.int64)
    perm[order] = np.arange(levels.n, dtype=np.int64)
    return perm


def reorder_lower(lower: CscMatrix, perm: np.ndarray) -> CscMatrix:
    """Apply a symmetric permutation and re-extract the lower triangle.

    ``P L P^T`` of a triangular matrix is not triangular in general; the
    benchmark-standard workflow keeps the permuted *pattern* and solves
    its lower triangle.  Off-diagonal values are preserved where they
    land in the lower triangle; the diagonal is refreshed to stay
    row-dominant.
    """
    permuted = permute_symmetric(lower, perm)
    return lower_triangle(permuted, ensure_nonzero_diag=True)
