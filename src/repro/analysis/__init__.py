"""Dependency analysis: DAG extraction, level sets, metrics, critical path."""

from repro.analysis.criticalpath import CriticalPath, critical_path
from repro.analysis.dag import DependencyDag, build_dag
from repro.analysis.levels import (
    DispatchFronts,
    LevelSets,
    compute_dispatch_fronts,
    compute_levels,
)
from repro.analysis.metrics import MatrixProfile, profile_matrix, scaling_class
from repro.analysis.reorder import (
    level_packing_ordering,
    rcm_ordering,
    red_black_ordering,
    reorder_lower,
)

__all__ = [
    "DependencyDag",
    "build_dag",
    "LevelSets",
    "compute_levels",
    "DispatchFronts",
    "compute_dispatch_fronts",
    "MatrixProfile",
    "profile_matrix",
    "scaling_class",
    "CriticalPath",
    "critical_path",
    "rcm_ordering",
    "level_packing_ordering",
    "red_black_ordering",
    "reorder_lower",
]
