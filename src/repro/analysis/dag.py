"""Dependency DAG of a lower-triangular solve.

For ``Lx = b`` component ``i`` depends on every ``j < i`` with a stored
entry ``L[i, j]`` (Section II-A of the paper: *column dependency* for the
consumer, *row dependency* for the producer).  This module extracts that
DAG from CSC/CSR structure in vectorised form and exposes the in-degree
array that the synchronization-free solvers spin on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotTriangularError
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["DependencyDag", "build_dag"]


@dataclass(frozen=True)
class DependencyDag:
    """Dependency DAG in both orientations.

    Attributes
    ----------
    n:
        Number of components (rows of L).
    out_ptr, out_idx:
        CSR-of-the-DAG over *successors*: component ``j``'s dependants are
        ``out_idx[out_ptr[j]:out_ptr[j+1]]`` — exactly the strictly-lower
        entries of column ``j`` of L.
    in_ptr, in_idx:
        Same over *predecessors* (strictly-lower entries of row ``i``).
    in_degree:
        ``in_degree[i]`` = number of components ``x_i`` waits for; the
        quantity Algorithms 2/3 compute in their pre-pass.
    """

    n: int
    out_ptr: np.ndarray
    out_idx: np.ndarray
    in_ptr: np.ndarray
    in_idx: np.ndarray
    in_degree: np.ndarray

    @property
    def n_edges(self) -> int:
        return int(len(self.out_idx))

    def successors(self, j: int) -> np.ndarray:
        """Components whose left_sum must be updated after solving ``j``."""
        return self.out_idx[self.out_ptr[j] : self.out_ptr[j + 1]]

    def predecessors(self, i: int) -> np.ndarray:
        """Components that must be solved before ``i`` can be solved."""
        return self.in_idx[self.in_ptr[i] : self.in_ptr[i + 1]]

    def roots(self) -> np.ndarray:
        """Components with no dependencies (solvable immediately)."""
        return np.nonzero(self.in_degree == 0)[0]

    def validate_acyclic(self) -> None:
        """Sanity check: every edge goes from lower to higher index.

        Holds by construction for triangular matrices; used by tests.
        """
        src = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.out_ptr))
        if np.any(src >= self.out_idx):
            raise NotTriangularError("dependency edge does not increase index")


def build_dag(lower: CscMatrix | CsrMatrix) -> DependencyDag:
    """Build the dependency DAG of a lower-triangular matrix.

    Accepts CSC (the solver input format) or CSR.  Diagonal entries carry
    no dependency and are skipped; entries above the diagonal raise
    :class:`NotTriangularError`.
    """
    if isinstance(lower, CscMatrix):
        csc = lower
    else:
        csc = lower.to_csc()
    n = csc.shape[0]
    if csc.shape[0] != csc.shape[1]:
        raise NotTriangularError(f"matrix is not square: {csc.shape}")

    cols = np.repeat(np.arange(n, dtype=np.int64), csc.col_nnz())
    rows = csc.indices
    if np.any(rows < cols):
        raise NotTriangularError("matrix has entries above the diagonal")
    strict = rows > cols
    src = cols[strict]  # producer (solved component)
    dst = rows[strict]  # consumer (dependant)

    # Successor adjacency: CSC columns are already grouped by src and row
    # indices are sorted within a column, so (src, dst) pairs are sorted.
    out_counts = np.bincount(src, minlength=n)
    out_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_ptr[1:])
    out_idx = dst.copy()

    # Predecessor adjacency via stable counting sort on dst.
    order = np.argsort(dst, kind="stable")
    in_counts = np.bincount(dst, minlength=n)
    in_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(in_counts, out=in_ptr[1:])
    in_idx = src[order]

    return DependencyDag(
        n=n,
        out_ptr=out_ptr,
        out_idx=out_idx,
        in_ptr=in_ptr,
        in_idx=in_idx,
        in_degree=in_counts.astype(np.int64),
    )
