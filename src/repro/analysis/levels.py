"""Level-set analysis of the SpTRSV dependency DAG.

The *level* of component ``i`` is the length of the longest dependency
chain ending at ``i`` (level 0 = no dependencies).  All components in the
same level are mutually independent and can be solved in parallel after a
barrier — the classical level-scheduling strategy of Naumov's cuSPARSE
solver (Section II-B), and the source of the ``#Levels`` / ``Parallelism``
columns of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import DependencyDag, build_dag
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

__all__ = [
    "LevelSets",
    "compute_levels",
    "DispatchFronts",
    "compute_dispatch_fronts",
]


@dataclass(frozen=True)
class LevelSets:
    """Level-set decomposition of a dependency DAG.

    Attributes
    ----------
    level_of:
        ``level_of[i]`` = level index of component ``i``.
    level_ptr, level_idx:
        CSR-style grouping: level ``l`` contains components
        ``level_idx[level_ptr[l]:level_ptr[l+1]]`` (ascending within each
        level).
    """

    level_of: np.ndarray
    level_ptr: np.ndarray
    level_idx: np.ndarray

    @property
    def n_levels(self) -> int:
        return int(len(self.level_ptr) - 1)

    @property
    def n(self) -> int:
        return int(len(self.level_of))

    def level(self, l: int) -> np.ndarray:
        """Components in level ``l`` (ascending index order)."""
        return self.level_idx[self.level_ptr[l] : self.level_ptr[l + 1]]

    def level_sizes(self) -> np.ndarray:
        """Number of components per level."""
        return np.diff(self.level_ptr)

    @property
    def parallelism(self) -> float:
        """Average available concurrency per level (Table I definition:
        ``nRow / nLevel``)."""
        if self.n_levels == 0:
            return 0.0
        return self.n / self.n_levels

    @property
    def max_width(self) -> int:
        """Widest level — the peak instantaneous parallelism."""
        if self.n_levels == 0:
            return 0
        return int(self.level_sizes().max())

    @property
    def critical_path_length(self) -> int:
        """Length (in components) of the longest dependency chain."""
        return self.n_levels


def compute_levels(
    source: CscMatrix | CsrMatrix | DependencyDag,
) -> LevelSets:
    """Compute level sets with a vectorised Kahn-style sweep.

    Complexity is ``O(n + nnz)``; each sweep processes the entire frontier
    with NumPy primitives, so the Python-level loop runs once per level
    rather than once per component.
    """
    dag = source if isinstance(source, DependencyDag) else build_dag(source)
    n = dag.n
    level_of = np.full(n, -1, dtype=np.int64)
    remaining = dag.in_degree.copy()
    frontier = np.nonzero(remaining == 0)[0]

    level_groups: list[np.ndarray] = []
    level = 0
    processed = 0
    out_ptr, out_idx = dag.out_ptr, dag.out_idx
    while len(frontier):
        level_of[frontier] = level
        level_groups.append(frontier)
        processed += len(frontier)
        # Gather all successor edges of the frontier at once.
        starts = out_ptr[frontier]
        counts = out_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total:
            # Build the concatenated index ranges without a Python loop:
            # offsets[k] enumerates 0..total, shifted into each slice.
            rep_starts = np.repeat(starts, counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            targets = out_idx[rep_starts + within]
            dec = np.bincount(targets, minlength=n)
            remaining -= dec
            candidates = np.unique(targets)
            frontier = candidates[remaining[candidates] == 0]
        else:
            frontier = np.zeros(0, dtype=np.int64)
        level += 1

    if processed != n:
        # Can only happen for non-triangular input that slipped through.
        raise RuntimeError(
            f"level analysis processed {processed} of {n} components: cycle?"
        )

    sizes = np.asarray([len(g) for g in level_groups], dtype=np.int64)
    level_ptr = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=level_ptr[1:])
    level_idx = (
        np.concatenate(level_groups) if level_groups else np.zeros(0, dtype=np.int64)
    )
    return LevelSets(level_of=level_of, level_ptr=level_ptr, level_idx=level_idx)


@dataclass(frozen=True)
class DispatchFronts:
    """Greedy index-contiguous antichain decomposition of a dependency DAG.

    Front ``f`` is the component range ``[front_ptr[f], front_ptr[f+1])``:
    a maximal run of consecutive indices none of which depends on another
    member of the run.  Fronts are the batching unit of the vectorised
    fast-model scheduling pass: the hardware dispatches components in
    ascending index order, and within a front every readiness, slot-pool,
    and finish-time decision can be resolved with one array operation
    because no member waits on another.

    When the component numbering is level-major (each level set occupies
    a contiguous index range, e.g. ``dag_profile_matrix`` with
    ``scatter=0``), the fronts coincide exactly with the level sets of
    :func:`compute_levels`; for scattered numberings they are the finest
    index-contiguous refinement that still respects dispatch order.
    """

    front_ptr: np.ndarray

    @property
    def n_fronts(self) -> int:
        return int(len(self.front_ptr) - 1)

    @property
    def n(self) -> int:
        return int(self.front_ptr[-1]) if len(self.front_ptr) else 0

    def front(self, f: int) -> slice:
        """Index range of front ``f`` (contiguous by construction)."""
        return slice(int(self.front_ptr[f]), int(self.front_ptr[f + 1]))

    def front_sizes(self) -> np.ndarray:
        """Number of components per front."""
        return np.diff(self.front_ptr)

    @property
    def mean_width(self) -> float:
        """Average batch size — the vectorisation payoff per Python step."""
        if self.n_fronts == 0:
            return 0.0
        return self.n / self.n_fronts


def compute_dispatch_fronts(dag: DependencyDag) -> DispatchFronts:
    """Partition ``0..n`` into maximal independent index-contiguous runs.

    Greedy left-to-right: a front starting at ``s`` absorbs components
    while every predecessor index stays below ``s``; the first component
    with a predecessor inside the running front starts the next one.
    Equivalently, with ``M[i] = max(maxpred[0..i])`` (non-decreasing,
    since every predecessor index is below its consumer), the front
    starting at ``s`` ends at the first ``i`` with ``M[i] >= s`` — a
    binary search.  Total cost ``O(n + nnz + F log n)`` for ``F`` fronts.
    """
    n = dag.n
    if n == 0:
        return DispatchFronts(front_ptr=np.zeros(1, dtype=np.int64))
    in_ptr, in_idx = dag.in_ptr, dag.in_idx
    maxpred = np.full(n, -1, dtype=np.int64)
    nonempty = in_ptr[1:] > in_ptr[:-1]
    if len(in_idx):
        # reduceat over the non-empty segment starts: consecutive offsets
        # span exactly one segment each because the empty segments between
        # them contribute no elements.
        maxpred[nonempty] = np.maximum.reduceat(in_idx, in_ptr[:-1][nonempty])
    running_max = np.maximum.accumulate(maxpred)

    bounds = [0]
    s = 0
    while s < n:
        # First i with running_max[i] >= s; such i is always > s because
        # a predecessor index is strictly below its consumer.
        e = int(np.searchsorted(running_max, s, side="left"))
        e = min(e, n)
        if e <= s:  # pragma: no cover - defensive (cannot happen on a DAG)
            e = s + 1
        bounds.append(e)
        s = e
    return DispatchFronts(front_ptr=np.asarray(bounds, dtype=np.int64))
