"""Level-set analysis of the SpTRSV dependency DAG.

The *level* of component ``i`` is the length of the longest dependency
chain ending at ``i`` (level 0 = no dependencies).  All components in the
same level are mutually independent and can be solved in parallel after a
barrier — the classical level-scheduling strategy of Naumov's cuSPARSE
solver (Section II-B), and the source of the ``#Levels`` / ``Parallelism``
columns of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import DependencyDag, build_dag
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["LevelSets", "compute_levels"]


@dataclass(frozen=True)
class LevelSets:
    """Level-set decomposition of a dependency DAG.

    Attributes
    ----------
    level_of:
        ``level_of[i]`` = level index of component ``i``.
    level_ptr, level_idx:
        CSR-style grouping: level ``l`` contains components
        ``level_idx[level_ptr[l]:level_ptr[l+1]]`` (ascending within each
        level).
    """

    level_of: np.ndarray
    level_ptr: np.ndarray
    level_idx: np.ndarray

    @property
    def n_levels(self) -> int:
        return int(len(self.level_ptr) - 1)

    @property
    def n(self) -> int:
        return int(len(self.level_of))

    def level(self, l: int) -> np.ndarray:
        """Components in level ``l`` (ascending index order)."""
        return self.level_idx[self.level_ptr[l] : self.level_ptr[l + 1]]

    def level_sizes(self) -> np.ndarray:
        """Number of components per level."""
        return np.diff(self.level_ptr)

    @property
    def parallelism(self) -> float:
        """Average available concurrency per level (Table I definition:
        ``nRow / nLevel``)."""
        if self.n_levels == 0:
            return 0.0
        return self.n / self.n_levels

    @property
    def max_width(self) -> int:
        """Widest level — the peak instantaneous parallelism."""
        if self.n_levels == 0:
            return 0
        return int(self.level_sizes().max())

    @property
    def critical_path_length(self) -> int:
        """Length (in components) of the longest dependency chain."""
        return self.n_levels


def compute_levels(
    source: CscMatrix | CsrMatrix | DependencyDag,
) -> LevelSets:
    """Compute level sets with a vectorised Kahn-style sweep.

    Complexity is ``O(n + nnz)``; each sweep processes the entire frontier
    with NumPy primitives, so the Python-level loop runs once per level
    rather than once per component.
    """
    dag = source if isinstance(source, DependencyDag) else build_dag(source)
    n = dag.n
    level_of = np.full(n, -1, dtype=np.int64)
    remaining = dag.in_degree.copy()
    frontier = np.nonzero(remaining == 0)[0]

    level_groups: list[np.ndarray] = []
    level = 0
    processed = 0
    out_ptr, out_idx = dag.out_ptr, dag.out_idx
    while len(frontier):
        level_of[frontier] = level
        level_groups.append(frontier)
        processed += len(frontier)
        # Gather all successor edges of the frontier at once.
        starts = out_ptr[frontier]
        counts = out_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total:
            # Build the concatenated index ranges without a Python loop:
            # offsets[k] enumerates 0..total, shifted into each slice.
            rep_starts = np.repeat(starts, counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            targets = out_idx[rep_starts + within]
            dec = np.bincount(targets, minlength=n)
            remaining -= dec
            candidates = np.unique(targets)
            frontier = candidates[remaining[candidates] == 0]
        else:
            frontier = np.zeros(0, dtype=np.int64)
        level += 1

    if processed != n:
        # Can only happen for non-triangular input that slipped through.
        raise RuntimeError(
            f"level analysis processed {processed} of {n} components: cycle?"
        )

    sizes = np.asarray([len(g) for g in level_groups], dtype=np.int64)
    level_ptr = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=level_ptr[1:])
    level_idx = (
        np.concatenate(level_groups) if level_groups else np.zeros(0, dtype=np.int64)
    )
    return LevelSets(level_of=level_of, level_ptr=level_ptr, level_idx=level_idx)
