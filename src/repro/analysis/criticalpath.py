"""Weighted critical-path analysis of the dependency DAG.

Where :mod:`repro.analysis.levels` counts chain *length*, this module
computes chain *cost*: the earliest possible finish time of each component
given a per-component solve cost, assuming unlimited parallelism and free
communication.  That is the machine-independent lower bound on SpTRSV
time; the execution model (``repro.exec_model``) layers resource limits
and communication on top, and the ratio measured/ideal quantifies how much
a given design loses to contention and imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import DependencyDag, build_dag
from repro.analysis.levels import compute_levels
from repro.sparse.csc import CscMatrix

__all__ = ["CriticalPath", "critical_path"]


@dataclass(frozen=True)
class CriticalPath:
    """Result of the weighted critical-path computation.

    Attributes
    ----------
    finish:
        ``finish[i]`` = earliest finish time of component ``i`` under
        infinite resources.
    length:
        Total critical-path cost = ``finish.max()``.
    path:
        One longest chain, as component indices in execution order.
    total_work:
        Sum of all per-component costs (the serial execution time).
    """

    finish: np.ndarray
    length: float
    path: np.ndarray
    total_work: float

    @property
    def ideal_speedup(self) -> float:
        """Maximum possible speedup over serial: ``total_work / length``."""
        if self.length == 0.0:
            return 1.0
        return self.total_work / self.length


def critical_path(
    lower: CscMatrix | DependencyDag,
    cost: np.ndarray | None = None,
) -> CriticalPath:
    """Compute earliest finish times and one critical path.

    Parameters
    ----------
    lower:
        Lower-triangular matrix or a prebuilt dependency DAG.
    cost:
        Per-component solve cost.  Defaults to ``1 + in_degree[i]``, a
        proxy for the work of accumulating ``in_degree`` products plus one
        division (the paper's solve-update phase).
    """
    dag = lower if isinstance(lower, DependencyDag) else build_dag(lower)
    n = dag.n
    if cost is None:
        cost = 1.0 + dag.in_degree.astype(np.float64)
    else:
        cost = np.asarray(cost, dtype=np.float64)
        if cost.shape != (n,):
            raise ValueError(f"cost must have shape ({n},), got {cost.shape}")

    levels = compute_levels(dag)
    finish = np.zeros(n)
    crit_pred = np.full(n, -1, dtype=np.int64)

    # Process level by level: every predecessor of a level-l component is
    # in a strictly lower level, so finish[] of all predecessors is final.
    for l in range(levels.n_levels):
        comps = levels.level(l)
        if l == 0:
            finish[comps] = cost[comps]
            continue
        for i in comps:
            preds = dag.predecessors(int(i))
            k = int(preds[np.argmax(finish[preds])])
            crit_pred[i] = k
            finish[i] = finish[k] + cost[i]

    if n == 0:
        return CriticalPath(finish, 0.0, np.zeros(0, dtype=np.int64), 0.0)

    end = int(np.argmax(finish))
    chain = [end]
    while crit_pred[chain[-1]] >= 0:
        chain.append(int(crit_pred[chain[-1]]))
    chain.reverse()
    return CriticalPath(
        finish=finish,
        length=float(finish[end]),
        path=np.asarray(chain, dtype=np.int64),
        total_work=float(cost.sum()),
    )
