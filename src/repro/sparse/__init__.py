"""Sparse matrix substrate: formats, conversion, I/O, triangles, LU.

Built from scratch on NumPy (no scipy.sparse in the hot paths) so that the
package fully owns the data layout the solvers consume — in particular the
CSC ``(col.ptr, row.idx, val)`` triple that the paper's Algorithms 2 and 3
take as input.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_csr,
    csr_to_csc,
    from_scipy,
    to_scipy,
)
from repro.sparse.io import dumps, loads, read_matrix_market, write_matrix_market
from repro.sparse.lu import LuFactors, ilu0, sparse_lu
from repro.sparse.triangular import (
    check_nonzero_diagonal,
    is_lower_triangular,
    is_upper_triangular,
    lower_triangle,
    permute_symmetric,
    require_lower_triangular,
    upper_triangle,
)
from repro.sparse.validate import (
    assert_solutions_close,
    random_rhs_for_solution,
    relative_error,
    residual_norm,
)

__all__ = [
    "CooMatrix",
    "CscMatrix",
    "CsrMatrix",
    "coo_to_csc",
    "coo_to_csr",
    "csc_to_csr",
    "csr_to_csc",
    "from_scipy",
    "to_scipy",
    "read_matrix_market",
    "write_matrix_market",
    "loads",
    "dumps",
    "LuFactors",
    "sparse_lu",
    "ilu0",
    "lower_triangle",
    "upper_triangle",
    "is_lower_triangular",
    "is_upper_triangular",
    "require_lower_triangular",
    "check_nonzero_diagonal",
    "permute_symmetric",
    "residual_norm",
    "relative_error",
    "assert_solutions_close",
    "random_rhs_for_solution",
]
