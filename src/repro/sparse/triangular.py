"""Triangular-structure helpers.

Extraction of lower/upper triangles, triangularity checks, and permutation
utilities.  The paper factorises general SuiteSparse matrices and runs
SpTRSV on the resulting L factor; :func:`lower_triangle` with
``ensure_nonzero_diag=True`` is the shortcut used throughout benchmarking
literature (including the sync-free SpTRSV baseline of Liu et al.) when a
full factorisation is not required.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotTriangularError, ShapeError, SingularMatrixError
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

__all__ = [
    "is_lower_triangular",
    "is_upper_triangular",
    "lower_triangle",
    "upper_triangle",
    "require_lower_triangular",
    "check_nonzero_diagonal",
    "permute_symmetric",
]


def is_lower_triangular(mat: CscMatrix | CsrMatrix | CooMatrix) -> bool:
    """True if every stored entry satisfies ``row >= col``."""
    coo = mat if isinstance(mat, CooMatrix) else mat.to_coo()
    return bool(np.all(coo.row >= coo.col))


def is_upper_triangular(mat: CscMatrix | CsrMatrix | CooMatrix) -> bool:
    """True if every stored entry satisfies ``row <= col``."""
    coo = mat if isinstance(mat, CooMatrix) else mat.to_coo()
    return bool(np.all(coo.row <= coo.col))


def lower_triangle(
    mat: CooMatrix | CscMatrix | CsrMatrix,
    ensure_nonzero_diag: bool = True,
    diag_shift: float = 0.0,
) -> CscMatrix:
    """Extract the lower triangle (including the diagonal) as CSC.

    Parameters
    ----------
    mat:
        A square sparse matrix in any format.
    ensure_nonzero_diag:
        If True (default), missing or zero diagonal entries are replaced by
        ``1 + |row_sum|`` so the triangle is non-singular and comfortably
        diagonally dominant — the standard trick for building SpTRSV
        benchmark inputs from arbitrary sparsity patterns.
    diag_shift:
        Constant added to every diagonal entry (after the fix-up).
    """
    coo = (mat if isinstance(mat, CooMatrix) else mat.to_coo()).sum_duplicates()
    if coo.shape[0] != coo.shape[1]:
        raise ShapeError(f"lower_triangle needs a square matrix, got {coo.shape}")
    n = coo.shape[0]
    keep = coo.row >= coo.col
    rows, cols, data = coo.row[keep], coo.col[keep], coo.data[keep]

    if ensure_nonzero_diag or diag_shift:
        on_diag = rows == cols
        diag = np.zeros(n)
        diag[rows[on_diag]] = data[on_diag]
        if ensure_nonzero_diag:
            row_sum = np.zeros(n)
            np.add.at(row_sum, rows[~on_diag], np.abs(data[~on_diag]))
            weak = np.abs(diag) < 1e-12
            diag[weak] = 1.0 + row_sum[weak]
        diag += diag_shift
        rows = np.concatenate([rows[~on_diag], np.arange(n, dtype=np.int64)])
        cols = np.concatenate([cols[~on_diag], np.arange(n, dtype=np.int64)])
        data = np.concatenate([data[~on_diag], diag])

    return CooMatrix(rows, cols, data, (n, n)).to_csc()


def upper_triangle(
    mat: CooMatrix | CscMatrix | CsrMatrix,
    ensure_nonzero_diag: bool = True,
    diag_shift: float = 0.0,
) -> CscMatrix:
    """Extract the upper triangle (including the diagonal) as CSC.

    Mirrors :func:`lower_triangle`; used for backward substitution
    (``Ux = b``) tests.
    """
    coo = (mat if isinstance(mat, CooMatrix) else mat.to_coo()).sum_duplicates()
    flipped = lower_triangle(
        coo.transpose(),
        ensure_nonzero_diag=ensure_nonzero_diag,
        diag_shift=diag_shift,
    )
    # flipped is the lower triangle of A^T in CSC == upper triangle of A in
    # CSR; convert back to CSC of the upper triangle.
    return flipped.transpose().to_csc()


def require_lower_triangular(mat: CscMatrix) -> None:
    """Raise :class:`NotTriangularError` unless ``mat`` is square lower."""
    if mat.shape[0] != mat.shape[1]:
        raise NotTriangularError(f"matrix is not square: {mat.shape}")
    if not is_lower_triangular(mat):
        raise NotTriangularError("matrix has entries above the diagonal")


def check_nonzero_diagonal(mat: CscMatrix, tol: float = 0.0) -> None:
    """Raise :class:`SingularMatrixError` if any diagonal entry is <= tol.

    SpTRSV divides by the diagonal; a (near-)zero pivot makes the system
    singular.
    """
    diag = mat.diagonal()
    bad = np.nonzero(np.abs(diag) <= tol)[0]
    if len(bad):
        raise SingularMatrixError(
            f"zero/small diagonal at indices {bad[:8].tolist()}"
            + ("..." if len(bad) > 8 else "")
        )


def permute_symmetric(mat: CscMatrix | CsrMatrix, perm: np.ndarray) -> CscMatrix:
    """Symmetric permutation ``P A P^T`` returned as CSC.

    ``perm[i]`` gives the new index of old row/column ``i``.  Used by
    reordering experiments (a permutation changes #levels/parallelism
    without changing the numerics of the solve).
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = mat.shape[0]
    if mat.shape[0] != mat.shape[1]:
        raise ShapeError("symmetric permutation needs a square matrix")
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ShapeError("perm must be a permutation of range(n)")
    coo = mat.to_coo()
    return CooMatrix(perm[coo.row], perm[coo.col], coo.data, coo.shape).to_csc()
