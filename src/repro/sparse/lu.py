"""Sparse LU factorisation — the MA48 substitute.

The paper factorises its SuiteSparse inputs with HSL MA48 to obtain the
lower-triangular systems that SpTRSV solves.  MA48 is proprietary, so this
module provides two open substitutes:

* :func:`sparse_lu` — a left-looking Gilbert–Peierls LU with partial
  pivoting.  Exact (complete) factorisation; the symbolic step does a
  depth-first search per column to predict fill-in, which is the textbook
  algorithm behind SuperLU/UMFPACK-style codes.
* :func:`ilu0` — incomplete LU with zero fill (ILU(0)): keeps the original
  sparsity pattern, the standard preconditioner construction whose
  triangular factors feed preconditioned iterative methods (one of the
  paper's motivating applications).

Both return unit-lower L (unit diagonal stored explicitly) and upper U as
CSC matrices, plus the row permutation for the pivoted variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError, SingularMatrixError
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

__all__ = ["LuFactors", "sparse_lu", "ilu0"]


@dataclass(frozen=True)
class LuFactors:
    """Result of a sparse LU factorisation ``P A = L U``.

    Attributes
    ----------
    lower:
        Unit-lower-triangular factor L in CSC (diagonal stored).
    upper:
        Upper-triangular factor U in CSC.
    row_perm:
        Row permutation as an index array: row ``row_perm[i]`` of A becomes
        row ``i`` of ``L @ U``.  Identity for :func:`ilu0`.
    """

    lower: CscMatrix
    upper: CscMatrix
    row_perm: np.ndarray

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` via forward + backward substitution.

        Provided for validation; the solver subpackage has the real
        SpTRSV implementations.
        """
        from repro.solvers.serial import serial_backward, serial_forward

        y = serial_forward(self.lower, np.asarray(b, dtype=np.float64)[self.row_perm])
        return serial_backward(self.upper, y)


def _reach(
    j_col_rows: np.ndarray,
    l_cols: list[np.ndarray],
    pivoted: np.ndarray,
) -> list[int]:
    """Symbolic step of Gilbert–Peierls: nonzero pattern of L^{-1} a_j.

    Depth-first search from the nonzero rows of column j through the DAG of
    already-computed columns of L, emitting vertices in reverse topological
    order (so the numeric loop can process them in topological order by
    reading the list backwards... we return it already reversed).
    """
    visited: set[int] = set()
    topo: list[int] = []
    for start in j_col_rows:
        start = int(start)
        if start in visited:
            continue
        # Iterative DFS with an explicit stack of (node, child-iterator
        # position) to avoid recursion limits on long dependency chains.
        stack: list[tuple[int, int]] = [(start, 0)]
        visited.add(start)
        while stack:
            node, ptr = stack[-1]
            children = l_cols[pivoted[node]] if pivoted[node] >= 0 else None
            if children is not None and ptr < len(children):
                stack[-1] = (node, ptr + 1)
                child = int(children[ptr])
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                stack.pop()
                topo.append(node)
    topo.reverse()
    return topo


def sparse_lu(
    a: CscMatrix | CsrMatrix | CooMatrix,
    pivot_threshold: float = 1.0,
    drop_tol: float = 0.0,
) -> LuFactors:
    """Left-looking sparse LU with (threshold) partial pivoting.

    Parameters
    ----------
    a:
        Square sparse matrix.
    pivot_threshold:
        Threshold-pivoting parameter in (0, 1]: a diagonal candidate is
        accepted if its magnitude is at least ``pivot_threshold`` times the
        column maximum.  ``1.0`` is classical partial pivoting; smaller
        values trade stability for sparsity (as MA48 does).
    drop_tol:
        Entries with magnitude below ``drop_tol`` (relative to the column
        max) are dropped from the factors, yielding an incomplete LU with
        dynamic pattern.

    Returns
    -------
    LuFactors
        Factors with ``P A = L U``.
    """
    csc = a if isinstance(a, CscMatrix) else a.to_csc()
    n = csc.shape[0]
    if csc.shape[0] != csc.shape[1]:
        raise ShapeError(f"LU needs a square matrix, got {csc.shape}")
    if not 0.0 < pivot_threshold <= 1.0:
        raise ValueError("pivot_threshold must be in (0, 1]")

    # perm_rows[i] = original row index occupying pivot position i.
    # pivoted[orig_row] = pivot position, or -1 while unpivoted.
    pivoted = np.full(n, -1, dtype=np.int64)
    perm_rows = np.full(n, -1, dtype=np.int64)

    # Columns of L as arrays of *original* row indices below the pivot
    # (needed by the symbolic DFS) plus parallel value arrays.
    l_cols: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * n
    l_vals: list[np.ndarray] = [np.zeros(0)] * n
    u_rows: list[list[int]] = []
    u_vals: list[list[float]] = []
    u_diag = np.zeros(n)

    work = np.zeros(n)

    for j in range(n):
        sl = csc.col_slice(j)
        col_rows = csc.indices[sl]
        col_vals = csc.data[sl]
        pattern = _reach(col_rows, l_cols, pivoted)
        work[pattern] = 0.0
        work[col_rows] = col_vals

        # Numeric left-looking update in topological order.
        for node in pattern:
            p = pivoted[node]
            if p < 0:
                continue
            xv = work[node]
            if xv == 0.0:
                continue
            rows_k = l_cols[p]
            work[rows_k] -= xv * l_vals[p]

        # Split into U part (pivoted rows) and candidate pivot rows.
        upper_nodes = [v for v in pattern if pivoted[v] >= 0]
        lower_nodes = [v for v in pattern if pivoted[v] < 0]
        if not lower_nodes:
            raise SingularMatrixError(f"structurally singular at column {j}")

        lower_abs = np.abs(work[lower_nodes])
        col_max = lower_abs.max()
        if col_max == 0.0:
            raise SingularMatrixError(f"numerically singular at column {j}")
        # Threshold pivoting: among acceptable candidates prefer the one
        # that appears earliest (cheap Markowitz-like tie-break keeping
        # natural order when possible), mirroring MA48's strategy shape.
        acceptable = [
            v for v, m in zip(lower_nodes, lower_abs) if m >= pivot_threshold * col_max
        ]
        pivot_row = min(acceptable)
        pv = work[pivot_row]

        u_r = [pivoted[v] for v in upper_nodes]
        u_v = [work[v] for v in upper_nodes]
        if drop_tol > 0.0 and u_v:
            keep = np.abs(np.asarray(u_v)) >= drop_tol * col_max
            u_r = [r for r, k in zip(u_r, keep) if k]
            u_v = [v for v, k in zip(u_v, keep) if k]
        u_rows.append(u_r)
        u_vals.append(u_v)
        u_diag[j] = pv

        below = [v for v in lower_nodes if v != pivot_row]
        below_vals = work[below] / pv
        if drop_tol > 0.0 and len(below):
            keep = np.abs(below_vals) >= drop_tol
            below = [v for v, k in zip(below, keep) if k]
            below_vals = below_vals[keep]
        l_cols[j] = np.asarray(below, dtype=np.int64)
        l_vals[j] = np.asarray(below_vals, dtype=np.float64)

        pivoted[pivot_row] = j
        perm_rows[j] = pivot_row
        work[pattern] = 0.0

    # Assemble L: unit diagonal + strictly-lower entries with permuted rows.
    l_r: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    l_c: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    l_d: list[np.ndarray] = [np.ones(n)]
    for j in range(n):
        if len(l_cols[j]) == 0:
            continue
        l_r.append(pivoted[l_cols[j]])
        l_c.append(np.full(len(l_cols[j]), j, dtype=np.int64))
        l_d.append(l_vals[j])
    lower = CooMatrix(
        np.concatenate(l_r), np.concatenate(l_c), np.concatenate(l_d), (n, n)
    ).to_csc()

    u_r2: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    u_c2: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    u_d2: list[np.ndarray] = [u_diag]
    for j in range(n):
        if not u_rows[j]:
            continue
        u_r2.append(np.asarray(u_rows[j], dtype=np.int64))
        u_c2.append(np.full(len(u_rows[j]), j, dtype=np.int64))
        u_d2.append(np.asarray(u_vals[j], dtype=np.float64))
    upper = CooMatrix(
        np.concatenate(u_r2), np.concatenate(u_c2), np.concatenate(u_d2), (n, n)
    ).to_csc()

    inv_perm = perm_rows  # row inv_perm[i] of A sits at pivot position i
    return LuFactors(lower=lower, upper=upper, row_perm=inv_perm)


def ilu0(a: CsrMatrix | CscMatrix | CooMatrix) -> LuFactors:
    """ILU(0): incomplete LU keeping the sparsity pattern of ``a``.

    The matrix must have a full nonzero diagonal (no pivoting is
    performed).  Uses the IKJ (row-by-row) formulation on CSR.
    """
    csr = a if isinstance(a, CsrMatrix) else a.to_csr()
    n = csr.shape[0]
    if csr.shape[0] != csr.shape[1]:
        raise ShapeError(f"ILU(0) needs a square matrix, got {csr.shape}")

    indptr, indices = csr.indptr, csr.indices
    data = csr.data.copy()
    diag_ptr = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        sl = csr.row_slice(i)
        hit = np.searchsorted(indices[sl], i)
        if hit < sl.stop - sl.start and indices[sl.start + hit] == i:
            diag_ptr[i] = sl.start + hit
    if np.any(diag_ptr < 0):
        raise SingularMatrixError("ILU(0) requires a structurally full diagonal")

    # Row-index lookup per row for O(log nnz_row) membership tests.
    for i in range(1, n):
        row_start, row_end = int(indptr[i]), int(indptr[i + 1])
        for kp in range(row_start, row_end):
            k = int(indices[kp])
            if k >= i:
                break
            dk = data[diag_ptr[k]]
            if dk == 0.0:
                raise SingularMatrixError(f"zero pivot at row {k} during ILU(0)")
            lik = data[kp] / dk
            data[kp] = lik
            # Subtract lik * U[k, j] for j in row i's pattern beyond k.
            k_sl = slice(int(diag_ptr[k]) + 1, int(indptr[k + 1]))
            k_cols = indices[k_sl]
            k_vals = data[k_sl]
            i_cols = indices[kp + 1 : row_end]
            pos = np.searchsorted(i_cols, k_cols)
            in_range = pos < len(i_cols)
            match = np.zeros(len(k_cols), dtype=bool)
            match[in_range] = i_cols[pos[in_range]] == k_cols[in_range]
            tgt = kp + 1 + pos[match]
            data[tgt] -= lik * k_vals[match]

    # Split into L (unit diag) and U.
    coo = CsrMatrix(indptr, indices, data, csr.shape).to_coo()
    lower_mask = coo.row > coo.col
    upper_mask = coo.row <= coo.col
    eye = np.arange(n, dtype=np.int64)
    lower = CooMatrix(
        np.concatenate([coo.row[lower_mask], eye]),
        np.concatenate([coo.col[lower_mask], eye]),
        np.concatenate([coo.data[lower_mask], np.ones(n)]),
        (n, n),
    ).to_csc()
    upper = CooMatrix(
        coo.row[upper_mask], coo.col[upper_mask], coo.data[upper_mask], (n, n)
    ).to_csc()
    return LuFactors(lower=lower, upper=upper, row_perm=np.arange(n, dtype=np.int64))
