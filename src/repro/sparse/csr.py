"""Compressed Sparse Row (CSR) matrix format.

CSR stores, for each row, a contiguous slice of column indices and values.
It is the natural format for row-oriented kernels (SpMV, the cuSPARSE
``csrsv2`` baseline) and for computing *row dependencies* of SpTRSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import ShapeError, SparseFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import CooMatrix
    from repro.sparse.csc import CscMatrix

__all__ = ["CsrMatrix"]


@dataclass
class CsrMatrix:
    """Sparse matrix in compressed sparse row format.

    Parameters
    ----------
    indptr:
        ``(n_rows + 1,)`` row-pointer array; row ``i`` occupies the slice
        ``indptr[i]:indptr[i+1]`` of ``indices``/``data``.
    indices:
        Column index of each stored entry.
    data:
        Value of each stored entry.
    shape:
        ``(n_rows, n_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        if self.indptr.ndim != 1 or len(self.indptr) != self.shape[0] + 1:
            raise SparseFormatError(
                f"indptr length {len(self.indptr)} != n_rows+1 = {self.shape[0] + 1}"
            )
        if len(self.indices) != len(self.data):
            raise SparseFormatError("indices and data must have equal length")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.data))

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_slice(self, i: int) -> slice:
        """The slice of ``indices``/``data`` belonging to row ``i``."""
        return slice(int(self.indptr[i]), int(self.indptr[i + 1]))

    def row_nnz(self) -> np.ndarray:
        """Number of stored entries per row, shape ``(n_rows,)``."""
        return np.diff(self.indptr)

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(i, cols, vals)`` for each row (views, do not mutate)."""
        for i in range(self.n_rows):
            sl = self.row_slice(i)
            yield i, self.indices[sl], self.data[sl]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`SparseFormatError`.

        Invariants: ``indptr`` monotone non-decreasing starting at 0 and
        ending at ``nnz``; all column indices within range; column indices
        strictly increasing within each row (canonical form).
        """
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if self.indptr[-1] != self.nnz:
            raise SparseFormatError(
                f"indptr must end at nnz={self.nnz}, got {int(self.indptr[-1])}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.shape[1]:
                raise SparseFormatError("column index out of range")
            # strictly increasing within each row <=> diff > 0 except at row
            # boundaries.
            d = np.diff(self.indices)
            boundary = np.zeros(len(d), dtype=bool)
            inner_ptr = self.indptr[1:-1]
            boundary[inner_ptr[(inner_ptr > 0) & (inner_ptr < self.nnz)] - 1] = True
            if np.any((d <= 0) & ~boundary):
                raise SparseFormatError(
                    "column indices must be strictly increasing within each row"
                )
        if not np.all(np.isfinite(self.data)):
            raise SparseFormatError("non-finite values in CSR matrix")

    def validated(self) -> "CsrMatrix":
        self.validate()
        return self

    # ------------------------------------------------------------------
    def to_coo(self) -> "CooMatrix":
        from repro.sparse.coo import CooMatrix

        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz())
        out = CooMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)
        out._canonical = True
        return out

    def to_csc(self) -> "CscMatrix":
        from repro.sparse.convert import csr_to_csc

        return csr_to_csc(self)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def transpose(self) -> "CscMatrix":
        """Zero-cost transpose: a CSR matrix reinterpreted as CSC.

        The returned :class:`CscMatrix` shares the underlying arrays.
        """
        from repro.sparse.csc import CscMatrix

        return CscMatrix(
            self.indptr, self.indices, self.data, (self.shape[1], self.shape[0])
        )

    def copy(self) -> "CsrMatrix":
        return CsrMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via per-entry gather + segmented reduction."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        products = self.data * x[self.indices]
        out = np.zeros(self.shape[0])
        np.add.at(
            out,
            np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_nnz()),
            products,
        )
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector (missing entries are 0)."""
        n = min(self.shape)
        out = np.zeros(n)
        for i in range(n):
            sl = self.row_slice(i)
            hit = np.searchsorted(self.indices[sl], i)
            if hit < sl.stop - sl.start and self.indices[sl.start + hit] == i:
                out[i] = self.data[sl.start + hit]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    __hash__ = None  # type: ignore[assignment]
