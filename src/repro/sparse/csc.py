"""Compressed Sparse Column (CSC) matrix format.

CSC is the paper's input format for SpTRSV (Algorithms 2 and 3 consume
``col.ptr`` / ``row.idx`` / ``val``): the solve walks columns in ascending
order, and after solving ``x_i`` the entries of column ``i`` below the
diagonal identify the dependants whose ``left_sum`` must be updated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import ShapeError, SparseFormatError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sparse.coo import CooMatrix
    from repro.sparse.csr import CsrMatrix

__all__ = ["CscMatrix"]


@dataclass
class CscMatrix:
    """Sparse matrix in compressed sparse column format.

    Parameters
    ----------
    indptr:
        ``(n_cols + 1,)`` column-pointer array; column ``j`` occupies the
        slice ``indptr[j]:indptr[j+1]`` of ``indices``/``data``.
    indices:
        Row index of each stored entry.
    data:
        Value of each stored entry.
    shape:
        ``(n_rows, n_cols)``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        if self.indptr.ndim != 1 or len(self.indptr) != self.shape[1] + 1:
            raise SparseFormatError(
                f"indptr length {len(self.indptr)} != n_cols+1 = {self.shape[1] + 1}"
            )
        if len(self.indices) != len(self.data):
            raise SparseFormatError("indices and data must have equal length")

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(len(self.data))

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def col_slice(self, j: int) -> slice:
        """The slice of ``indices``/``data`` belonging to column ``j``."""
        return slice(int(self.indptr[j]), int(self.indptr[j + 1]))

    def col_nnz(self) -> np.ndarray:
        """Number of stored entries per column, shape ``(n_cols,)``."""
        return np.diff(self.indptr)

    def iter_cols(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(j, rows, vals)`` per column (views, do not mutate)."""
        for j in range(self.n_cols):
            sl = self.col_slice(j)
            yield j, self.indices[sl], self.data[sl]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`SparseFormatError`."""
        if self.indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if self.indptr[-1] != self.nnz:
            raise SparseFormatError(
                f"indptr must end at nnz={self.nnz}, got {int(self.indptr[-1])}"
            )
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.nnz:
            if self.indices.min() < 0 or self.indices.max() >= self.shape[0]:
                raise SparseFormatError("row index out of range")
            d = np.diff(self.indices)
            boundary = np.zeros(len(d), dtype=bool)
            inner_ptr = self.indptr[1:-1]
            boundary[inner_ptr[(inner_ptr > 0) & (inner_ptr < self.nnz)] - 1] = True
            if np.any((d <= 0) & ~boundary):
                raise SparseFormatError(
                    "row indices must be strictly increasing within each column"
                )
        if not np.all(np.isfinite(self.data)):
            raise SparseFormatError("non-finite values in CSC matrix")

    def validated(self) -> "CscMatrix":
        self.validate()
        return self

    # ------------------------------------------------------------------
    def to_coo(self) -> "CooMatrix":
        from repro.sparse.coo import CooMatrix

        cols = np.repeat(np.arange(self.n_cols, dtype=np.int64), self.col_nnz())
        return CooMatrix(self.indices.copy(), cols, self.data.copy(), self.shape)

    def to_csr(self) -> "CsrMatrix":
        from repro.sparse.convert import csc_to_csr

        return csc_to_csr(self)

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def transpose(self) -> "CsrMatrix":
        """Zero-cost transpose: a CSC matrix reinterpreted as CSR."""
        from repro.sparse.csr import CsrMatrix

        return CsrMatrix(
            self.indptr, self.indices, self.data, (self.shape[1], self.shape[0])
        )

    def copy(self) -> "CscMatrix":
        return CscMatrix(
            self.indptr.copy(), self.indices.copy(), self.data.copy(), self.shape
        )

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` computed column-wise (scatter-add of scaled columns)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        cols = np.repeat(np.arange(self.n_cols, dtype=np.int64), self.col_nnz())
        out = np.zeros(self.shape[0])
        np.add.at(out, self.indices, self.data * x[cols])
        return out

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector (missing entries are 0)."""
        n = min(self.shape)
        out = np.zeros(n)
        for j in range(n):
            sl = self.col_slice(j)
            hit = np.searchsorted(self.indices[sl], j)
            if hit < sl.stop - sl.start and self.indices[sl.start + hit] == j:
                out[j] = self.data[sl.start + hit]
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CscMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.data, other.data)
        )

    __hash__ = None  # type: ignore[assignment]
