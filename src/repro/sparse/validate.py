"""Numerical validation helpers shared by tests, examples and benches.

SpTRSV implementations in this package are checked two ways:

* against the dense solve of the same system (:func:`residual_norm`), and
* against each other (:func:`assert_solutions_close`), since every solver
  variant must produce the same ``x`` regardless of its communication
  model.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CscMatrix

__all__ = [
    "residual_norm",
    "relative_error",
    "assert_solutions_close",
    "random_rhs_for_solution",
]


def residual_norm(lower: CscMatrix, x: np.ndarray, b: np.ndarray) -> float:
    """Infinity-norm of ``L x - b`` scaled by ``|L| |x| + |b|`` (componentwise
    backward-error style), robust to wildly varying magnitudes."""
    x = np.asarray(x, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r = lower.matvec(x) - b
    scale_mat = CscMatrix(
        lower.indptr, lower.indices, np.abs(lower.data), lower.shape
    )
    scale = scale_mat.matvec(np.abs(x)) + np.abs(b)
    scale[scale == 0.0] = 1.0
    return float(np.max(np.abs(r) / scale))


def relative_error(x: np.ndarray, x_ref: np.ndarray) -> float:
    """Relative infinity-norm error of ``x`` versus a reference solution."""
    x = np.asarray(x, dtype=np.float64)
    x_ref = np.asarray(x_ref, dtype=np.float64)
    denom = max(float(np.max(np.abs(x_ref))), 1e-300)
    return float(np.max(np.abs(x - x_ref))) / denom


def assert_solutions_close(
    x: np.ndarray,
    x_ref: np.ndarray,
    rtol: float = 1e-9,
    context: str = "",
) -> None:
    """Assert two solver outputs agree; raise AssertionError with detail."""
    err = relative_error(x, x_ref)
    if err > rtol:
        worst = int(np.argmax(np.abs(np.asarray(x) - np.asarray(x_ref))))
        raise AssertionError(
            f"solutions differ{' (' + context + ')' if context else ''}: "
            f"rel err {err:.3e} > {rtol:.1e}; worst component {worst}: "
            f"{x[worst]!r} vs {x_ref[worst]!r}"
        )


def random_rhs_for_solution(
    lower: CscMatrix, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Manufacture ``(b, x_true)`` with known solution ``x_true``.

    Draws ``x_true`` from U(0.5, 1.5) (away from zero so relative error is
    well defined) and returns ``b = L x_true``.
    """
    rng = np.random.default_rng(seed)
    x_true = rng.uniform(0.5, 1.5, size=lower.shape[1])
    return lower.matvec(x_true), x_true
