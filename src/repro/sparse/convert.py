"""Format conversions between COO, CSR and CSC.

All conversions are vectorised (counting sort over the major index) and
produce canonical outputs: duplicates summed, minor indices strictly
increasing within each major slice.  A small SciPy bridge is provided for
interoperability with the wider ecosystem (and for test oracles).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

__all__ = [
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_csc",
    "csc_to_csr",
    "to_scipy",
    "from_scipy",
]


def _compress(
    major: np.ndarray,
    minor: np.ndarray,
    data: np.ndarray,
    n_major: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compress sorted-by-(major, minor) triplets into (indptr, indices, data).

    Assumes the caller already canonicalised (no duplicates, sorted).
    """
    counts = np.bincount(major, minlength=n_major)
    indptr = np.zeros(n_major + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, minor, data


def coo_to_csr(coo: CooMatrix) -> CsrMatrix:
    """Convert COO to canonical CSR (duplicates summed, columns sorted)."""
    canon = coo.sum_duplicates()
    indptr, indices, data = _compress(
        canon.row, canon.col, canon.data, canon.shape[0]
    )
    return CsrMatrix(indptr, indices.copy(), data.copy(), canon.shape)


def coo_to_csc(coo: CooMatrix) -> CscMatrix:
    """Convert COO to canonical CSC (duplicates summed, rows sorted)."""
    canon = coo.transpose().sum_duplicates()
    # canon is the transpose in canonical row-major order == column-major
    # order of the original matrix.
    indptr, indices, data = _compress(
        canon.row, canon.col, canon.data, canon.shape[0]
    )
    return CscMatrix(
        indptr, indices.copy(), data.copy(), (coo.shape[0], coo.shape[1])
    )


def csr_to_csc(csr: CsrMatrix) -> CscMatrix:
    """Convert CSR to CSC with a stable counting sort over columns."""
    rows = np.repeat(np.arange(csr.n_rows, dtype=np.int64), csr.row_nnz())
    order = np.argsort(csr.indices, kind="stable")
    counts = np.bincount(csr.indices, minlength=csr.n_cols)
    indptr = np.zeros(csr.n_cols + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CscMatrix(indptr, rows[order], csr.data[order], csr.shape)


def csc_to_csr(csc: CscMatrix) -> CsrMatrix:
    """Convert CSC to CSR with a stable counting sort over rows."""
    cols = np.repeat(np.arange(csc.n_cols, dtype=np.int64), csc.col_nnz())
    order = np.argsort(csc.indices, kind="stable")
    counts = np.bincount(csc.indices, minlength=csc.n_rows)
    indptr = np.zeros(csc.n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CsrMatrix(indptr, cols[order], csc.data[order], csc.shape)


def to_scipy(mat: CooMatrix | CsrMatrix | CscMatrix):
    """Convert any repro sparse matrix to the matching SciPy sparse class."""
    import scipy.sparse as sp

    if isinstance(mat, CooMatrix):
        return sp.coo_matrix((mat.data, (mat.row, mat.col)), shape=mat.shape)
    if isinstance(mat, CsrMatrix):
        return sp.csr_matrix((mat.data, mat.indices, mat.indptr), shape=mat.shape)
    if isinstance(mat, CscMatrix):
        return sp.csc_matrix((mat.data, mat.indices, mat.indptr), shape=mat.shape)
    raise TypeError(f"unsupported matrix type {type(mat).__name__}")


def from_scipy(mat) -> CooMatrix | CsrMatrix | CscMatrix:
    """Convert a SciPy sparse matrix to the matching repro class."""
    import scipy.sparse as sp

    if sp.isspmatrix_coo(mat):
        return CooMatrix(mat.row, mat.col, mat.data, mat.shape)
    if sp.isspmatrix_csr(mat):
        m = mat.sorted_indices()
        m.sum_duplicates()
        return CsrMatrix(m.indptr, m.indices, m.data, m.shape)
    if sp.isspmatrix_csc(mat):
        m = mat.sorted_indices()
        m.sum_duplicates()
        return CscMatrix(m.indptr, m.indices, m.data, m.shape)
    # Fall back through COO for anything else (LIL, DOK, DIA, arrays...)
    c = sp.coo_matrix(mat)
    return CooMatrix(c.row, c.col, c.data, c.shape)
