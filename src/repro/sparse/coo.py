"""Coordinate (COO/triplet) sparse matrix format.

COO is the interchange format of the package: MatrixMarket files load into
COO, synthetic generators emit COO, and CSR/CSC are built from it.  The
class stores three parallel arrays ``(row, col, data)`` plus an explicit
shape; duplicate entries are allowed until :meth:`CooMatrix.sum_duplicates`
is called (conversions call it implicitly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ShapeError, SparseFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sparse.csc import CscMatrix
    from repro.sparse.csr import CsrMatrix

__all__ = ["CooMatrix"]


@dataclass
class CooMatrix:
    """Sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    row, col:
        Integer arrays of equal length holding the coordinates of each
        stored entry.
    data:
        Float array of the stored values, parallel to ``row``/``col``.
    shape:
        ``(n_rows, n_cols)`` of the logical matrix.

    Notes
    -----
    The constructor copies nothing; callers that mutate the arrays after
    construction are responsible for keeping them consistent.  Use
    :meth:`validated` to get a checked instance.
    """

    row: np.ndarray
    col: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]
    _canonical: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.row = np.asarray(self.row, dtype=np.int64)
        self.col = np.asarray(self.col, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        if not (self.row.ndim == self.col.ndim == self.data.ndim == 1):
            raise SparseFormatError("COO arrays must be one-dimensional")
        if not (len(self.row) == len(self.col) == len(self.data)):
            raise SparseFormatError(
                "COO arrays must have equal length: "
                f"row={len(self.row)}, col={len(self.col)}, data={len(self.data)}"
            )
        if len(self.shape) != 2 or self.shape[0] < 0 or self.shape[1] < 0:
            raise ShapeError(f"invalid shape {self.shape!r}")
        self.shape = (int(self.shape[0]), int(self.shape[1]))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "CooMatrix":
        """An all-zero matrix of the given shape."""
        z = np.zeros(0, dtype=np.int64)
        return cls(z, z.copy(), np.zeros(0), shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CooMatrix":
        """Build from a dense array, keeping entries with ``|a_ij| > tol``.

        Exact zeros are always dropped; pass ``tol > 0`` to also drop tiny
        values (useful when densifying numerically-noisy factors).
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tol
        r, c = np.nonzero(mask)
        return cls(r, c, dense[r, c], dense.shape)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries (including duplicates, if any)."""
        return int(len(self.data))

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    # ------------------------------------------------------------------
    # Validation / canonicalisation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`SparseFormatError` if any index is out of range."""
        if self.nnz == 0:
            return
        if self.row.min(initial=0) < 0 or self.col.min(initial=0) < 0:
            raise SparseFormatError("negative indices in COO matrix")
        if self.row.max(initial=-1) >= self.shape[0]:
            raise SparseFormatError(
                f"row index {int(self.row.max())} out of range for shape {self.shape}"
            )
        if self.col.max(initial=-1) >= self.shape[1]:
            raise SparseFormatError(
                f"col index {int(self.col.max())} out of range for shape {self.shape}"
            )
        if not np.all(np.isfinite(self.data)):
            raise SparseFormatError("non-finite values in COO matrix")

    def validated(self) -> "CooMatrix":
        """Return ``self`` after running :meth:`validate` (fluent helper)."""
        self.validate()
        return self

    def sum_duplicates(self) -> "CooMatrix":
        """Return a canonical copy: duplicates summed, entries sorted.

        Entries are sorted by ``(row, col)``; explicit zeros produced by
        cancellation are *kept* (structural nonzeros matter for dependency
        analysis, mirroring how factorisation codes treat fill-in).
        """
        if self._canonical:
            return self
        if self.nnz == 0:
            out = CooMatrix(self.row, self.col, self.data, self.shape)
            out._canonical = True
            return out
        keys = self.row * self.shape[1] + self.col
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        uniq, first = np.unique(keys, return_index=True)
        data = np.add.reduceat(self.data[order], first)
        out = CooMatrix(uniq // self.shape[1], uniq % self.shape[1], data, self.shape)
        out._canonical = True
        return out

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Densify (duplicates are summed)."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def to_csr(self) -> "CsrMatrix":
        from repro.sparse.convert import coo_to_csr

        return coo_to_csr(self)

    def to_csc(self) -> "CscMatrix":
        from repro.sparse.convert import coo_to_csc

        return coo_to_csc(self)

    def transpose(self) -> "CooMatrix":
        """Transpose view as a new COO matrix (arrays are shared)."""
        return CooMatrix(self.col, self.row, self.data, (self.shape[1], self.shape[0]))

    def copy(self) -> "CooMatrix":
        out = CooMatrix(
            self.row.copy(), self.col.copy(), self.data.copy(), self.shape
        )
        out._canonical = self._canonical
        return out

    # ------------------------------------------------------------------
    # Arithmetic helpers used by tests / examples
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Dense mat-vec ``A @ x`` (duplicates contribute additively)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ShapeError(
                f"matvec operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        out = np.zeros(self.shape[0])
        np.add.at(out, self.row, self.data * x[self.col])
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CooMatrix):
            return NotImplemented
        a, b = self.sum_duplicates(), other.sum_duplicates()
        return (
            a.shape == b.shape
            and np.array_equal(a.row, b.row)
            and np.array_equal(a.col, b.col)
            and np.array_equal(a.data, b.data)
        )

    __hash__ = None  # type: ignore[assignment]
