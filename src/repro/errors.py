"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the failure domain (matrix format, simulation,
solver, ...) via the concrete subclasses.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SparseFormatError",
    "ShapeError",
    "SingularMatrixError",
    "NotTriangularError",
    "MatrixMarketError",
    "SimulationError",
    "DeadlockError",
    "TopologyError",
    "MemoryModelError",
    "ShmemError",
    "SolverError",
    "ConfigurationError",
    "TaskModelError",
    "WorkloadError",
    "FaultInjectionError",
    "RecoveryExhaustedError",
    "ServiceError",
    "ServiceOverloadError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "WorkerCrashError",
    "ServiceShutdownError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SparseFormatError(ReproError, ValueError):
    """A sparse matrix's structural arrays are inconsistent or malformed."""


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes."""


class SingularMatrixError(ReproError, ArithmeticError):
    """A (numerically) singular matrix was passed to a solver/factoriser."""


class NotTriangularError(ReproError, ValueError):
    """A matrix expected to be triangular has entries on the wrong side."""


class MatrixMarketError(ReproError, ValueError):
    """Malformed MatrixMarket file content."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The simulation can make no further progress while work remains.

    Raised by the DES engines when the event calendar drains with
    processes still blocked (quiescent-with-waiters), or by the
    resilience watchdog when simulated time keeps advancing without any
    solve progress (livelock / no-progress stall).

    Attributes
    ----------
    blocked:
        Mapping of blocked channel / resource name to waiter count, when
        known (``None`` for watchdog stalls).
    diagnostics:
        Free-form diagnostic trace: recent progress marks, stall horizon,
        alive-process count — whatever the raise site can cheaply attach.
    """

    def __init__(
        self,
        message: str,
        *,
        blocked: dict | None = None,
        diagnostics: dict | None = None,
    ):
        super().__init__(message)
        self.blocked = blocked
        self.diagnostics = diagnostics or {}


class TopologyError(ReproError, ValueError):
    """Invalid interconnect topology description or unreachable peers."""


class MemoryModelError(ReproError, RuntimeError):
    """Invalid operation on the simulated (unified/device) memory system."""


class ShmemError(ReproError, RuntimeError):
    """Invalid use of the simulated NVSHMEM API (symmetric heap, get/put)."""


class SolverError(ReproError, RuntimeError):
    """A solver failed to produce a solution (deadlock, divergence, ...)."""


class ConfigurationError(SolverError, ValueError):
    """An execution-configuration knob has an unknown or invalid value.

    Raised for unknown ``engine`` / ``design`` / ``scheduler`` choices
    (and any other :class:`~repro.runtime.config.RunConfig` field) with
    the valid choices spelled out in the message.  Subclasses
    :class:`SolverError` so existing ``except SolverError`` call sites
    keep catching it, and :class:`ValueError` because the failure is a
    bad argument.

    Attributes
    ----------
    parameter:
        Name of the offending knob (``"engine"``, ``"design"``, ...).
    value:
        The rejected value, verbatim.
    choices:
        Tuple of accepted values, when the domain is enumerable.
    """

    def __init__(
        self,
        message: str,
        *,
        parameter: str | None = None,
        value: object = None,
        choices: tuple | None = None,
    ):
        super().__init__(message)
        self.parameter = parameter
        self.value = value
        self.choices = choices


class TaskModelError(ReproError, ValueError):
    """Invalid task partitioning or scheduling parameters."""


class WorkloadError(ReproError, ValueError):
    """Invalid synthetic-workload parameters."""


class FaultInjectionError(ReproError, ValueError):
    """Invalid fault plan: unknown kind, bad window, or impossible target."""


class RecoveryExhaustedError(SolverError):
    """Recovery gave up: bounded retries spent or no survivors to remap to.

    Attributes
    ----------
    context:
        Raise-site detail (edge / component / attempt counts) for the
        chaos harness's scenario reports.
    """

    def __init__(self, message: str, *, context: dict | None = None):
        super().__init__(message)
        self.context = context or {}


class ServiceError(ReproError, RuntimeError):
    """Base class for the solve-service layer (:mod:`repro.serve`).

    Every service-level failure mode — overload, deadline, open circuit,
    worker crash, shutdown — derives from this, so a client can catch
    the whole domain with one clause while the concrete subclasses keep
    the failure actionable.
    """


class ServiceOverloadError(ServiceError):
    """The service refused a request to protect itself (backpressure).

    Raised by admission control (token bucket empty) and by the bounded
    request queue (no free slot) — the service never buffers without
    bound.  ``retry_after`` is the earliest back-off the client should
    honour, in wall seconds.

    Attributes
    ----------
    retry_after:
        Suggested client back-off before resubmitting (seconds).
    reason:
        ``"admission"`` (token bucket) or ``"queue_full"`` (bounded
        queue).
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 0.0,
        reason: str = "overload",
    ):
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before a result was produced.

    The request is cooperatively cancelled: queued work is skipped, an
    in-flight solve is abandoned (its worker-side watchdog bounds the
    stray computation), and the client gets this typed error instead of
    a hang.

    Attributes
    ----------
    deadline:
        The request's wall-clock budget in seconds.
    stage:
        Where the deadline fired: ``"queued"`` / ``"executing"``.
    """

    def __init__(
        self, message: str, *, deadline: float = 0.0, stage: str = ""
    ):
        super().__init__(message)
        self.deadline = deadline
        self.stage = stage


class CircuitOpenError(ServiceError):
    """The (fingerprint, config) circuit breaker is open: failing fast.

    Repeated :class:`RecoveryExhaustedError` / :class:`DeadlockError`
    outcomes on one key trip its breaker; until the cooldown elapses,
    requests for that key are rejected immediately (or degraded, when
    the client allows) instead of burning a worker on a known-bad solve.

    Attributes
    ----------
    key:
        The tripped ``(matrix fingerprint, config fingerprint)`` pair.
    retry_after:
        Seconds until the breaker admits a half-open probe.
    failures:
        Consecutive failures that tripped it.
    """

    def __init__(
        self,
        message: str,
        *,
        key: tuple = (),
        retry_after: float = 0.0,
        failures: int = 0,
    ):
        super().__init__(message)
        self.key = key
        self.retry_after = retry_after
        self.failures = failures


class WorkerCrashError(ServiceError):
    """A worker process died (or was killed) mid-solve.

    Transient by contract: the service rebuilds the pool and retries
    with exponential backoff + jitter; only exhausting the retry budget
    surfaces this to the client.
    """


class ServiceShutdownError(ServiceError):
    """The service is stopping; the request was not (fully) served."""
