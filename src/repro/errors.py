"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the failure domain (matrix format, simulation,
solver, ...) via the concrete subclasses.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SparseFormatError",
    "ShapeError",
    "SingularMatrixError",
    "NotTriangularError",
    "MatrixMarketError",
    "SimulationError",
    "TopologyError",
    "MemoryModelError",
    "ShmemError",
    "SolverError",
    "TaskModelError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SparseFormatError(ReproError, ValueError):
    """A sparse matrix's structural arrays are inconsistent or malformed."""


class ShapeError(ReproError, ValueError):
    """Operands have incompatible shapes."""


class SingularMatrixError(ReproError, ArithmeticError):
    """A (numerically) singular matrix was passed to a solver/factoriser."""


class NotTriangularError(ReproError, ValueError):
    """A matrix expected to be triangular has entries on the wrong side."""


class MatrixMarketError(ReproError, ValueError):
    """Malformed MatrixMarket file content."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class TopologyError(ReproError, ValueError):
    """Invalid interconnect topology description or unreachable peers."""


class MemoryModelError(ReproError, RuntimeError):
    """Invalid operation on the simulated (unified/device) memory system."""


class ShmemError(ReproError, RuntimeError):
    """Invalid use of the simulated NVSHMEM API (symmetric heap, get/put)."""


class SolverError(ReproError, RuntimeError):
    """A solver failed to produce a solution (deadlock, divergence, ...)."""


class TaskModelError(ReproError, ValueError):
    """Invalid task partitioning or scheduling parameters."""


class WorkloadError(ReproError, ValueError):
    """Invalid synthetic-workload parameters."""
