"""The plan/execute API: analyse once, solve many right-hand sides.

Production triangular-solver libraries split work exactly the way
cuSPARSE's ``csrsv2_analysis`` / ``csrsv2_solve`` pair does, because the
dominant use cases (time stepping, preconditioner application) reuse one
matrix against a stream of right-hand sides.  :class:`SpTrsvPlan`
packages that workflow for this library:

* construction runs every reusable step once — validation, dependency
  DAG, level sets, task distribution, communication cost tables, and the
  simulated analysis phase;
* :meth:`SpTrsvPlan.solve` then runs only the numeric sweep plus the
  solve-phase timing, amortising the analysis exactly as the paper
  assumes when it reports "analysis + solve" for single-shot runs;
* the plan accumulates usage statistics so an application can read back
  how much the amortisation actually saved.

>>> import numpy as np
>>> from repro import dgx1, dag_profile_matrix
>>> from repro.solvers.plan import SpTrsvPlan
>>> L = dag_profile_matrix(n=500, n_levels=10, dependency=2.5, seed=3)
>>> plan = SpTrsvPlan(L, machine=dgx1(2), tasks_per_gpu=4)
>>> x = plan.solve(L.matvec(np.ones(500))).x
>>> bool(np.allclose(x, 1.0))
True
>>> plan.stats.solves
1
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.analysis.levels import LevelSets
from repro.errors import ShapeError
from repro.exec_model.artefacts import get_artefacts
from repro.exec_model.costmodel import CommCosts, Design
from repro.exec_model.timeline import ExecutionReport, simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, validate_system
from repro.solvers.levelset import levelset_forward
from repro.solvers.multirhs import multi_rhs_forward
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import (
    Distribution,
    block_distribution,
    round_robin_distribution,
)

__all__ = ["PlanStats", "SpTrsvPlan"]


@dataclass
class PlanStats:
    """Cumulative usage counters of one plan."""

    solves: int = 0
    rhs_columns: int = 0
    simulated_solve_time: float = 0.0
    analysis_time: float = 0.0

    @property
    def amortised_analysis_fraction(self) -> float:
        """Analysis share of the total simulated time so far."""
        total = self.analysis_time + self.simulated_solve_time
        return self.analysis_time / total if total > 0 else 0.0


class SpTrsvPlan:
    """Reusable multi-GPU SpTRSV plan for one lower-triangular matrix.

    Parameters
    ----------
    lower:
        The system matrix (validated once, here).
    machine:
        Node configuration (defaults to the 4-GPU DGX-1 clique).
    design:
        Communication design (zero-copy read-only by default).
    tasks_per_gpu:
        None = block distribution; an int enables the task model.
    warp_reduce, shortcircuit:
        Section IV-B optimisation knobs, forwarded to the cost model.
    """

    def __init__(
        self,
        lower: CscMatrix,
        machine: MachineConfig | None = None,
        design: Design | str = Design.SHMEM_READONLY,
        tasks_per_gpu: int | None = 8,
        warp_reduce: bool = True,
        shortcircuit: bool = True,
    ):
        validate_system(lower, np.zeros(lower.shape[0]))
        self.lower = lower
        self.machine = machine if machine is not None else dgx1(4)
        self.design = Design(design)
        # All structure products come from the shared artefact cache, so
        # plans, the DES tier, and benches sweeping the same matrix pay
        # the dependency analysis once between them.
        self._artefacts = get_artefacts(lower)
        self.dag: DependencyDag = self._artefacts.dag
        self.levels: LevelSets = self._artefacts.levels
        n = lower.shape[0]
        if tasks_per_gpu is None:
            self.distribution: Distribution = block_distribution(
                n, self.machine.n_gpus
            )
        else:
            self.distribution = round_robin_distribution(
                n, self.machine.n_gpus, tasks_per_gpu
            )
        self.costs: CommCosts = self._artefacts.comm_costs(
            self.machine,
            self.design,
            warp_reduce=warp_reduce,
            shortcircuit=shortcircuit,
        )
        # One priced execution, reused: analysis once; solve time per call.
        self._report: ExecutionReport = simulate_execution(
            lower,
            self.distribution,
            self.machine,
            self.design,
            artefacts=self._artefacts,
            levels=self.levels,
            costs=self.costs,
        )
        self.stats = PlanStats(analysis_time=self._report.analysis_time)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.lower.shape[0]

    def solve(self, b: np.ndarray) -> SolveResult:
        """Solve against one right-hand side (analysis amortised)."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise ShapeError(f"rhs has shape {b.shape}, expected ({self.n},)")
        x = levelset_forward(self.lower, b, self.levels)
        self.stats.solves += 1
        self.stats.rhs_columns += 1
        self.stats.simulated_solve_time += self._report.solve_time
        return SolveResult(x=x, report=self._report, solver="plan")

    def solve_many(self, b_block: np.ndarray) -> np.ndarray:
        """Solve a block of right-hand sides through the shared plan."""
        x = multi_rhs_forward(self.lower, b_block)
        k = x.shape[1]
        self.stats.solves += 1
        self.stats.rhs_columns += k
        # Arithmetic scales with k; dependencies/communication do not.
        arith = float(np.sum(self.lower.col_nnz())) * (
            self.machine.gpu.t_per_nnz * (k - 1)
        ) / max(self.machine.gpu.warp_slots * self.machine.n_gpus, 1)
        self.stats.simulated_solve_time += self._report.solve_time + arith
        return x

    @property
    def report(self) -> ExecutionReport:
        """The priced execution this plan replays per solve."""
        return self._report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpTrsvPlan n={self.n} design={self.design.value} "
            f"gpus={self.machine.n_gpus} tasks={self.distribution.n_tasks} "
            f"solves={self.stats.solves}>"
        )
