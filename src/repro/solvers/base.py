"""Solver interfaces and shared result types.

Every solver in the package — serial reference, level-set, sync-free,
and the three multi-GPU designs — implements :class:`TriangularSolver`:
it consumes a lower-triangular CSC system and returns a
:class:`SolveResult` carrying both the numeric solution (computed by
*executing the algorithm's actual memory semantics* on the simulated
machine) and the :class:`~repro.exec_model.timeline.ExecutionReport`
priced by the timing model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.exec_model.timeline import ExecutionReport
from repro.sparse.csc import CscMatrix
from repro.sparse.triangular import check_nonzero_diagonal, require_lower_triangular

__all__ = ["SolveResult", "TriangularSolver", "validate_system"]


@dataclass(frozen=True)
class SolveResult:
    """Solution plus simulated execution telemetry.

    Attributes
    ----------
    x:
        The solution vector.
    report:
        Simulated-execution report (None for host-side reference solvers
        that model no machine).
    solver:
        Name of the producing solver.
    """

    x: np.ndarray
    report: ExecutionReport | None
    solver: str

    @property
    def simulated_time(self) -> float:
        """Total simulated time (analysis + solve), 0.0 for reference."""
        return self.report.total_time if self.report is not None else 0.0


def validate_system(lower: CscMatrix, b: np.ndarray) -> np.ndarray:
    """Common input checking: square lower-triangular, nonzero diagonal,
    matching RHS.  Returns ``b`` as a float64 array."""
    require_lower_triangular(lower)
    check_nonzero_diagonal(lower)
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.shape[0],):
        raise ShapeError(
            f"rhs has shape {b.shape}, expected ({lower.shape[0]},)"
        )
    return b


class TriangularSolver(abc.ABC):
    """Abstract solver for ``Lx = b``."""

    #: Human-readable solver name (used in reports and figures).
    name: str = "abstract"

    @abc.abstractmethod
    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        """Solve the lower-triangular system."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
