"""Thread-level synchronization-free SpTRSV (CapelliniSpTRSV-style).

The paper's related work ([3] Su et al., ICPP 2020) maps one component
per *thread* instead of one per *warp* (Liu et al.'s mapping, which the
paper inherits).  The trade-off it explores:

* 32x more components resident at once (a warp hosts 32 solvers), which
  helps matrices with huge level widths and tiny rows;
* but each component's arithmetic is scalar (no intra-warp parallelism
  over the row's nonzeros), and divergent spinning within a warp stalls
  all 32 lanes until the slowest component's dependencies land.

This module models that mapping as an alternative single-GPU baseline:
``ThreadLevelSolver`` prices the same dependency schedule with
thread-granularity occupancy (``warp_slots * 32`` slots), scalar
per-nonzero cost (no warp-parallel gather), and a warp-divergence
penalty coupling each component's start to its 32-lane group.

It slots into the scalability study as a second baseline alongside the
cuSPARSE model: warp-level wins on high-dependency rows, thread-level on
skinny-row/high-width matrices — the crossover CapelliniSpTRSV reports.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.exec_model.timeline import ExecutionReport
from repro.machine.gpu import WarpScheduler
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.levelset import levelset_forward
from repro.sparse.csc import CscMatrix

__all__ = ["ThreadLevelSolver", "thread_level_schedule"]

#: Lanes per warp on every CUDA-capable part this models.
WARP_WIDTH = 32

#: Scalar-lane slowdown of the per-nonzero work versus the warp-parallel
#: gather (one lane does serially what 32 did cooperatively, minus the
#: reduction overhead it no longer needs; uncoalesced access adds more).
SCALAR_FACTOR = 6.0

#: Memory-system concurrency: how many scalar lanes the LSU/HBM path can
#: actually feed per resident warp slot.  32 lanes may be *resident*, but
#: their uncoalesced gathers serialise well below that — the reason
#: thread-level mappings stop scaling despite enormous nominal occupancy.
MEM_LANES_PER_SLOT = 4


def thread_level_schedule(
    lower: CscMatrix,
    machine: MachineConfig,
) -> ExecutionReport:
    """Price a single-GPU thread-level sync-free execution.

    Components dispatch in index order onto ``warp_slots * 32`` thread
    slots, 32 at a time: a warp retires only when its slowest lane's
    component finishes (divergence coupling), which is the mapping's
    fundamental cost on dependency-heavy inputs.
    """
    gpu = machine.gpu
    dag = build_dag(lower)
    n = dag.n
    col_nnz = lower.col_nnz().astype(np.float64)
    in_counts = np.diff(dag.in_ptr).astype(np.float64)
    # Scalar arithmetic: every nonzero processed by one lane.
    solve = gpu.t_per_nnz * SCALAR_FACTOR * (
        np.maximum(col_nnz, 1.0) + in_counts
    )

    sched = WarpScheduler(gpu.with_(warp_slots=gpu.warp_slots))
    finish = np.zeros(n)
    busy = 0.0
    spin = 0.0
    in_ptr, in_idx = dag.in_ptr, dag.in_idx

    # Process warps of 32 consecutive components: the whole group occupies
    # one warp slot from the first lane's dispatch to the last lane's
    # finish.
    for w0 in range(0, n, WARP_WIDTH):
        group = np.arange(w0, min(w0 + WARP_WIDTH, n))
        dispatch = sched.dispatch(0.0)
        group_fin = dispatch
        for i in group:
            lo, hi = in_ptr[i], in_ptr[i + 1]
            ready = (
                float(np.max(finish[in_idx[lo:hi]])) if hi > lo else 0.0
            )
            start = max(dispatch, ready)
            fin = start + solve[i]
            finish[i] = fin
            busy += solve[i]
            spin += max(0.0, ready - dispatch)
            group_fin = max(group_fin, fin)
        # Divergence coupling: the warp slot is held until the slowest
        # lane's component finishes.
        sched.retire(group_fin)

    # Memory-throughput floor: the scalar gathers of all lanes share the
    # LSU/HBM path, which feeds far fewer lanes than are resident.
    mem_bound = busy / (gpu.warp_slots * MEM_LANES_PER_SLOT)
    solve_time = max(float(finish.max(initial=0.0)), mem_bound)
    analysis = lower.nnz * gpu.t_atomic_device / max(gpu.analysis_parallelism, 1)
    return ExecutionReport(
        design="threadlevel",
        machine=machine.topology.name,
        n_gpus=1,
        n_tasks=1,
        analysis_time=analysis,
        solve_time=solve_time,
        gpu_busy=np.array([busy]),
        gpu_spin=np.array([spin]),
        gpu_comm=np.array([0.0]),
        gpu_finish=np.array([solve_time]),
        local_updates=dag.n_edges,
        remote_updates=0,
        page_faults=0.0,
        migrated_bytes=0.0,
        fabric_bytes=0.0,
    )


class ThreadLevelSolver(TriangularSolver):
    """Single-GPU thread-level sync-free baseline (one thread/component)."""

    name = "threadlevel-1gpu"

    def __init__(self, machine: MachineConfig | None = None):
        if machine is None:
            machine = dgx1(1)
        if machine.n_gpus != 1:
            raise ValueError("ThreadLevelSolver is a single-GPU baseline")
        self.machine = machine

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        x = levelset_forward(lower, b, compute_levels(lower))
        report = thread_level_schedule(lower, self.machine)
        return SolveResult(x=x, report=report, solver=self.name)
