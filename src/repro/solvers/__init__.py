"""SpTRSV solver implementations: reference, baselines, and the paper's designs."""

from repro.solvers.backward import BackwardSolver, anti_transpose
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.blocked import (
    BlockedLower,
    BlockedSolver,
    blocked_forward,
    detect_supernodes,
)
from repro.solvers.cusparse import CusparseCsrsv2Solver
from repro.solvers.des_partition import (
    execute_partitioned,
    partition_of_gpu,
    run_partitioned_spill,
)
from repro.solvers.des_solver import DesExecution, DesSolver, des_execute
from repro.solvers.levelset import LevelSetSolver, level_schedule_time, levelset_forward
from repro.solvers.numerics import (
    emulate_shmem_solve,
    emulate_unified_solve,
    interleaved_order,
    random_level_order,
)
from repro.solvers.mixedprec import MixedPrecisionSolver, float32_forward
from repro.solvers.multirhs import MultiRhsResult, multi_rhs_forward, solve_multi_rhs
from repro.solvers.nvshmem import NaiveShmemSolver, ShmemSolver
from repro.solvers.plan import PlanStats, SpTrsvPlan
from repro.solvers.serial import SerialSolver, serial_backward, serial_forward
from repro.solvers.syncfree import SyncFreeSolver
from repro.solvers.threadlevel import ThreadLevelSolver, thread_level_schedule
from repro.solvers.unified import UnifiedMemorySolver
from repro.solvers.zerocopy import ZeroCopySolver

__all__ = [
    "SolveResult",
    "TriangularSolver",
    "validate_system",
    "SerialSolver",
    "serial_forward",
    "serial_backward",
    "LevelSetSolver",
    "levelset_forward",
    "level_schedule_time",
    "CusparseCsrsv2Solver",
    "DesSolver",
    "DesExecution",
    "des_execute",
    "execute_partitioned",
    "partition_of_gpu",
    "run_partitioned_spill",
    "SyncFreeSolver",
    "ThreadLevelSolver",
    "thread_level_schedule",
    "UnifiedMemorySolver",
    "ShmemSolver",
    "NaiveShmemSolver",
    "ZeroCopySolver",
    "BackwardSolver",
    "anti_transpose",
    "BlockedSolver",
    "BlockedLower",
    "blocked_forward",
    "detect_supernodes",
    "MultiRhsResult",
    "multi_rhs_forward",
    "solve_multi_rhs",
    "MixedPrecisionSolver",
    "float32_forward",
    "SpTrsvPlan",
    "PlanStats",
    "emulate_unified_solve",
    "emulate_shmem_solve",
    "interleaved_order",
    "random_level_order",
]
