"""Partitioned parallel DES playout: conservative round-based execution.

This module splits the event calendar of the array engine
(:mod:`repro.solvers.des_array`) **by GPU**: each partition owns a
contiguous block of the simulated GPUs and plays out every event whose
process lives on an owned GPU — component lifecycle steps, warp-slot
grants, and the full claim/wire/retire pipeline of every link (links
are directional and owned by their *source* GPU, so all three transfer
steps of an edge execute in the source partition).  The only event that
crosses a partition boundary is the **update delivery** of a cross-GPU
edge: generated at the transfer's retire step in the source partition,
consumed at the destination component's partition.

Conservative per-pair lookahead
-------------------------------
Every cross-partition delivery is scheduled ``e_delay[e]`` after its
retire event, and ``e_delay[e] = uc + dl[e] >= dl[e]`` where ``dl[e]``
is the cross-pair notify latency from
:func:`~repro.engine.protocol.edge_cost_tables`.  Each partition ``q``
therefore has a **per-destination lookahead**

    ``W[q][r] = min(dl[e] for edges e crossing from q to r)``

(``inf`` when no edge crosses that pair): any message ``q`` generates
for ``r`` while its earliest pending event is at ``t_q`` targets
``>= t_q + W[q][r]``.  The coordinator advances in rounds with a
*per-partition* window

    ``end[r] = min over q != r of (t_q + W[q][r])``

so each partition drains as far as the *actual* cross-link delays of
its inbound pairs allow, not to the global minimum plus the global
minimum delay.  The partition holding the globally earliest event
always clears it (``end[r*] > t_{r*}``), so every round makes
progress.  Link claim/wire times never bound the window because the
whole link pipeline is partition-local.  A partition with no inbound
cross edges drains completely in one round.

Shared-memory state (multiprocess path)
---------------------------------------
:func:`run_partitioned_spill` loads the workload bundle **once** in
the coordinator and places the playout state in
:mod:`multiprocessing.shared_memory`: the matrix tables
(``indptr``/``indices``/``data``), the right-hand side, the DAG
in-pointers/in-degrees, the solution vector, and the cross-edge
contribution table.  Workers map the same block instead of re-loading
a pickle spill each, boundary messages carry only the edge id (the
contribution value travels through the shared table, with the round
barrier's pipe hand-off ordering the write before the read), and the
solved ``x`` entries are written in place — ``finish`` ships only
scalars.  Message fold-in is double-buffered: inbound deliveries stage
in a back buffer on receipt and are merged into the calendar in one
sorted pass when the next round starts draining, so the barrier cost
per message is an append, not a binary insertion.

Ordering contract (and its honest limit)
----------------------------------------
The sequential engines break timestamp ties by *push order*: a
monotone sequence number assigned when the event is scheduled.  The
partitioned playout reproduces that order with a **pusher key**
``(push_time, partition_rank, local_seq)`` attached to every calendar
entry:

* pushes are chronologically ordered within a partition, so for two
  entries with *different* push times the key order equals the
  sequential push order exactly (sequence numbers are assigned while
  the simulation clock is non-decreasing);
* entries pushed at the *same* time from the same partition keep their
  local order, which matches the sequential order restricted to that
  partition;
* entries pushed at the same time from *different* partitions fall
  back to the canonical ``partition_rank`` tie-break.  This is the one
  place the merged order is canonical rather than provably identical
  to the sequential interleaving, so the bench layer *verifies* every
  observable (solution bits, simulated wall clock, event and trace
  counters) against the sequential engine per case and reports the
  comparison rather than assuming it.

Scope: the partitioned playout covers the unfaulted, non-unified
configurations the DES bench measures.  Unified-memory designs share
one global page table (cost depends on global access order) and the
resilience hooks mutate cross-partition state; both delegate to the
sequential engines.
"""

from __future__ import annotations

import multiprocessing as mp
from heapq import heappop, heappush
from multiprocessing import shared_memory

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.protocol import (
    COMP_ACQUIRE,
    COMP_DISPATCH,
    COMP_GATHER,
    COMP_POST,
    COMP_RELEASE,
    COMP_SHIFT,
    COMP_SOLVE,
    XFER_CLAIM,
    XFER_RETIRE,
    TokenLayout,
    design_hooks,
    edge_cost_tables,
    gather_cost_table,
    launch_times,
    link_capacity,
    solve_cost_table,
    validate_diagonals,
    wire_time,
)
from repro.engine.resources import ResourceBank
from repro.errors import SolverError
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = [
    "PartitionEngine",
    "execute_partitioned",
    "partition_of_gpu",
    "run_partitioned_spill",
]


def partition_of_gpu(n_gpus: int, n_workers: int) -> np.ndarray:
    """Blocked GPU→partition map: contiguous GPU ranges per worker."""
    if not 1 <= n_workers <= n_gpus:
        raise SolverError(
            f"partition count must be in [1, n_gpus={n_gpus}], "
            f"got {n_workers}"
        )
    gpus = np.arange(n_gpus, dtype=np.int64)
    return gpus * n_workers // n_gpus


class PartitionEngine:
    """One partition of the array engine's event playout.

    Owns the components, warp pools, and outgoing links of a block of
    GPUs; exchanges cross-partition update deliveries through
    round-barrier outboxes.  The precompute mirrors
    :func:`~repro.solvers.des_array.execute_array` exactly (every
    partition builds the full global tables — they are cheap relative
    to the playout and keep edge indexing identical), then seeds its
    calendar with only the owned components' dispatch front.
    """

    def __init__(
        self,
        lower: CscMatrix,
        b: np.ndarray,
        dist: Distribution,
        machine: MachineConfig,
        design: Design,
        *,
        dag: DependencyDag,
        costs: CommCosts,
        n_workers: int,
        rank: int,
        x_out: np.ndarray | None = None,
        contrib_out: np.ndarray | None = None,
    ):
        from repro.solvers.des_solver import MESSAGES_IN_FLIGHT_PER_LINK

        if design_hooks(design).page_table:
            raise SolverError(
                "partitioned playout does not support unified-memory "
                "designs (global page-table state); use the sequential "
                "engines"
            )
        n = lower.shape[0]
        n_gpus = machine.n_gpus
        gpu_spec = machine.gpu
        topo = machine.topology
        phys = machine.active_gpus
        indptr = lower.indptr
        gpu_of = dist.gpu_of
        in_counts = np.diff(dag.in_ptr)
        col_nnz = np.diff(indptr)
        nnz = int(indptr[-1])
        validate_diagonals(indptr, lower.indices, n)

        self.rank = rank
        self.n_workers = n_workers
        self._n = n
        self._indptr_l = indptr.tolist()
        self._idx_l = lower.indices.tolist()
        self._data_l = lower.data.tolist()
        self._g_l = gpu_of.tolist()
        self._b_l = np.asarray(b, dtype=np.float64).tolist()
        self._remaining = dag.in_degree.tolist()
        self._gather_l = gather_cost_table(costs.gather, in_counts).tolist()
        self._solve_l = solve_cost_table(
            gpu_spec.t_per_nnz, col_nnz, in_counts
        ).tolist()

        col_of = np.repeat(np.arange(n, dtype=np.int64), col_nnz)
        src_g_e = gpu_of[col_of]
        dst_g_e = gpu_of[lower.indices]
        local_e = src_g_e == dst_g_e
        inc_e, dl_e = edge_cost_tables(costs, src_g_e, dst_g_e, local_e)
        self._inc_l = inc_e.tolist()
        self._dl_l = dl_e.tolist()
        self._dstg_l = dst_g_e.tolist()
        self._srcg_l = src_g_e.tolist()

        layout = TokenLayout.for_system(n, nnz)
        self._n8 = layout.local_base
        self._m8 = layout.xfer_base
        self._spawn_code_l = layout.spawn_codes(local_e).tolist()
        self._e_contrib = [0.0] * nnz
        self._e_delay = [0.0] * nnz

        bank = ResourceBank()
        for g in range(n_gpus):
            bank.add(f"gpu{g}.warps", gpu_spec.warp_slots)
        pair_rid = np.full(n_gpus * n_gpus, -1, dtype=np.int64)
        pair_wire = np.zeros(n_gpus * n_gpus)
        cross_pairs = np.unique(
            src_g_e[~local_e] * n_gpus + dst_g_e[~local_e]
        )
        for p in cross_pairs.tolist():
            src_pe, dst_pe = p // n_gpus, p % n_gpus
            ga, gb = int(phys[src_pe]), int(phys[dst_pe])
            cap = link_capacity(topo, ga, gb, MESSAGES_IN_FLIGHT_PER_LINK)
            pair_rid[p] = bank.add(f"link{src_pe}->{dst_pe}", cap)
            pair_wire[p] = wire_time(topo, ga, gb)
        self._elink_l = np.where(
            local_e, -1, pair_rid[src_g_e * n_gpus + dst_g_e]
        ).tolist()
        self._ewire_l = np.where(
            local_e, 0.0, pair_wire[src_g_e * n_gpus + dst_g_e]
        ).tolist()
        self._bank = bank

        # Ownership and the conservative lookahead windows: the global
        # minimum (reported in the payload) and the per-destination
        # minima this partition's outbound messages can never undercut.
        rank_of_g = partition_of_gpu(n_gpus, n_workers)
        self._rank_of_g = rank_of_g.tolist()
        cross_part = (~local_e) & (
            rank_of_g[src_g_e] != rank_of_g[dst_g_e]
        )
        self.lookahead = (
            float(dl_e[cross_part].min()) if cross_part.any() else np.inf
        )
        mine = cross_part & (rank_of_g[src_g_e] == rank)
        out_la = np.full(n_workers, np.inf)
        if mine.any():
            np.minimum.at(out_la, rank_of_g[dst_g_e[mine]], dl_e[mine])
        self.lookahead_out = out_la

        # Seed the owned dispatch front.  Pusher keys ``(-1.0, 0, i)``
        # order seeds before any runtime push and by component index
        # within equal spawn times — the sequential ingest order.
        task_of = dist.task_of()
        launch = launch_times(dist.n_tasks, gpu_spec.t_kernel_launch)
        spawn_times = launch[task_of]
        own = rank_of_g[gpu_of] == rank
        own_idx = np.nonzero(own)[0]
        self._own_idx = own_idx
        order = own_idx[np.argsort(spawn_times[own_idx], kind="stable")]
        self._buckets: dict[float, list] = {}
        self._theap: list[float] = []
        st_sorted = spawn_times[order].tolist()
        for i, t in zip(order.tolist(), st_sorted):
            entry = (-1.0, 0, i, i << COMP_SHIFT)
            bl = self._buckets.get(t)
            if bl is None:
                self._buckets[t] = [entry]
                self._theap.append(t)
            else:
                bl.append(entry)
        self._theap.sort()

        self._x_out = x_out
        self._contrib_out = contrib_out
        self._inbox: list[tuple] = []
        self._parked_ready = [False] * n
        self._x_l = [0.0] * n
        self._left_sum = [0.0] * n
        self._t_disp = gpu_spec.t_warp_dispatch
        self._seq = 0
        self._nevents = 0
        self._last = 0.0
        self._counters = dict(
            dispatch=0, solve=0, release=0, xfer_begin=0, xfer_end=0
        )

    # ------------------------------------------------------------ barriers
    def next_time(self) -> float | None:
        """Earliest pending local event time, or None when drained."""
        self._fold_inbox()
        return self._theap[0] if self._theap else None

    def receive(self, msgs: list[tuple]) -> None:
        """Stage inbound deliveries in the back buffer (no merge cost).

        Messages are ``(t2, ptime, src_rank, seq, e, contrib)`` — or
        ``(t2, ptime, src_rank, seq, e)`` when the contribution travels
        through the shared-memory table.  The fold into the calendar
        happens in one sorted pass when the next round starts.
        """
        self._inbox.extend(msgs)

    def _fold_inbox(self) -> None:
        """Merge the staged back buffer into the calendar front.

        One sort orders every staged message by ``(t2, pusher key)``;
        each target-time group then lands in its bucket in a single
        extend+sort (existing bucket entries are already sorted by
        pusher key, and keys are globally unique, so the merged order
        equals the per-entry binary-insertion order exactly).
        """
        msgs = self._inbox
        if not msgs:
            return
        self._inbox = []
        msgs.sort()
        buckets = self._buckets
        e_contrib = self._e_contrib
        contrib_out = self._contrib_out
        k = 0
        nmsgs = len(msgs)
        while k < nmsgs:
            t2 = msgs[k][0]
            entries = []
            while k < nmsgs and msgs[k][0] == t2:
                m = msgs[k]
                e = m[4]
                e_contrib[e] = m[5] if len(m) > 5 else contrib_out[e]
                entries.append((m[1], m[2], m[3], -1 - e))
                k += 1
            bl = buckets.get(t2)
            if bl is None:
                buckets[t2] = entries
                heappush(self._theap, t2)
            else:
                bl.extend(entries)
                bl.sort()

    # ------------------------------------------------------------ playout
    def run_round(self, round_end: float) -> dict[int, list]:
        """Drain every owned event strictly before ``round_end``.

        Returns the outbox: destination rank → cross-partition delivery
        messages generated this round.
        """
        self._fold_inbox()
        theap = self._theap
        buckets = self._buckets
        idx_l = self._idx_l
        indptr_l = self._indptr_l
        data_l = self._data_l
        g_l = self._g_l
        b_l = self._b_l
        remaining = self._remaining
        parked_ready = self._parked_ready
        left_sum = self._left_sum
        x_l = self._x_l
        gather_l = self._gather_l
        solve_l = self._solve_l
        inc_l = self._inc_l
        dl_l = self._dl_l
        e_contrib = self._e_contrib
        e_delay = self._e_delay
        contrib_out = self._contrib_out
        dstg_l = self._dstg_l
        elink_l = self._elink_l
        ewire_l = self._ewire_l
        spawn_code_l = self._spawn_code_l
        rank_of_g = self._rank_of_g
        my_rank = self.rank
        n8 = self._n8
        m8 = self._m8
        t_disp = self._t_disp
        bank = self._bank
        r_cap = bank.capacity
        r_used = bank.in_use
        r_tot = bank.total_acquisitions
        r_peak = bank.peak_in_use
        r_q = bank._queues
        bget = buckets.get
        c = self._counters
        c_dispatch = c["dispatch"]
        c_solve = c["solve"]
        c_release = c["release"]
        c_xb = c["xfer_begin"]
        c_xe = c["xfer_end"]
        seq = self._seq
        nevents = self._nevents
        now = self._last
        outbox: dict[int, list] = {}

        while theap and theap[0] < round_end:
            t = heappop(theap)
            now = t
            cur = buckets.pop(t)
            for entry in cur:
                code = entry[3]
                if code < 0:
                    # -------------------------------- update delivery
                    e = -1 - code
                    dst = idx_l[e]
                    left_sum[dst] += e_contrib[e]
                    rem = remaining[dst] - 1
                    remaining[dst] = rem
                    if rem == 0 and parked_ready[dst]:
                        parked_ready[dst] = False
                        seq += 1
                        cur.append((now, my_rank, seq, (dst << 3) | COMP_GATHER))
                    continue
                if code >= n8:
                    if code < m8:
                        # ------------------ local edge: one delay hop
                        e = code - n8
                        t2 = now + e_delay[e]
                        seq += 1
                        entry2 = (now, my_rank, seq, -1 - e)
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    # -------------------- cross-GPU transfer steps
                    cc = code - m8
                    st = cc & 3
                    e = cc >> 2
                    if st == XFER_RETIRE:
                        c_xe += 1
                        link = elink_l[e]
                        q = r_q[link]
                        if q:
                            r_tot[link] += 1
                            seq += 1
                            cur.append((now, my_rank, seq, q.popleft()))
                        else:
                            r_used[link] -= 1
                        t2 = now + e_delay[e]
                        seq += 1
                        dr = rank_of_g[dstg_l[e]]
                        if dr != my_rank:
                            if contrib_out is None:
                                msg = (t2, now, my_rank, seq, e,
                                       e_contrib[e])
                            else:
                                # Contribution travels via the shared
                                # table; the barrier pipe orders this
                                # write before the consumer's read.
                                contrib_out[e] = e_contrib[e]
                                msg = (t2, now, my_rank, seq, e)
                            ob = outbox.get(dr)
                            if ob is None:
                                outbox[dr] = [msg]
                            else:
                                ob.append(msg)
                            continue
                        entry2 = (now, my_rank, seq, -1 - e)
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    if st == XFER_CLAIM:
                        link = elink_l[e]
                        q = r_q[link]
                        if q or r_used[link] >= r_cap[link]:
                            q.append(code + 1)  # park; resume at WIRE
                            continue
                        u = r_used[link] + 1
                        r_used[link] = u
                        r_tot[link] += 1
                        if u > r_peak[link]:
                            r_peak[link] = u
                    # XFER_WIRE (granted inline above, or woken parked)
                    c_xb += 1
                    t2 = now + ewire_l[e]
                    seq += 1
                    entry2 = (now, my_rank, seq, code - st + XFER_RETIRE)
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [entry2]
                            heappush(theap, t2)
                        else:
                            b2.append(entry2)
                    else:
                        cur.append(entry2)
                    continue

                # ------------------------------------------ component
                i = code >> 3
                st = code & 7
                if st == COMP_GATHER:
                    if remaining[i] > 0:
                        parked_ready[i] = True
                        continue
                    gather = gather_l[i]
                    if gather > 0.0:
                        t2 = now + gather
                        seq += 1
                        entry2 = (now, my_rank, seq, (code & -8) | COMP_SOLVE)
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    st = COMP_SOLVE  # zero gather: solve in this event
                if st == COMP_SOLVE:
                    t2 = now + solve_l[i]
                    seq += 1
                    entry2 = (now, my_rank, seq, (code & -8) | COMP_POST)
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [entry2]
                            heappush(theap, t2)
                        else:
                            b2.append(entry2)
                    else:
                        cur.append(entry2)
                    continue
                if st == COMP_POST:
                    lo = indptr_l[i]
                    hi = indptr_l[i + 1]
                    xi = (b_l[i] - left_sum[i]) / data_l[lo]
                    x_l[i] = xi
                    g = g_l[i]
                    c_solve += 1
                    uc = 0.0
                    for e in range(lo + 1, hi):
                        uc += inc_l[e]
                        e_contrib[e] = data_l[e] * xi
                        e_delay[e] = uc + dl_l[e]
                    if hi > lo + 1:
                        for sc in spawn_code_l[lo + 1 : hi]:
                            seq += 1
                            cur.append((now, my_rank, seq, sc))
                    if uc > 0.0:
                        t2 = now + uc
                        seq += 1
                        entry2 = (
                            now, my_rank, seq, (code & -8) | COMP_RELEASE
                        )
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    st = COMP_RELEASE  # zero update cost: retire now
                if st == COMP_RELEASE:
                    g = g_l[i]
                    c_release += 1
                    q = r_q[g]
                    if q:
                        r_tot[g] += 1
                        seq += 1
                        cur.append((now, my_rank, seq, q.popleft()))
                    else:
                        r_used[g] -= 1
                    continue
                # COMP_ACQUIRE / COMP_DISPATCH
                g = g_l[i]
                if st == COMP_ACQUIRE:
                    q = r_q[g]
                    if q or r_used[g] >= r_cap[g]:
                        q.append(code | COMP_DISPATCH)  # park; grant later
                        continue
                    u = r_used[g] + 1
                    r_used[g] = u
                    r_tot[g] += 1
                    if u > r_peak[g]:
                        r_peak[g] = u
                c_dispatch += 1
                t2 = now + t_disp
                seq += 1
                entry2 = (now, my_rank, seq, (code & -8) | COMP_GATHER)
                if t2 > now:
                    b2 = bget(t2)
                    if b2 is None:
                        buckets[t2] = [entry2]
                        heappush(theap, t2)
                    else:
                        b2.append(entry2)
                else:
                    cur.append(entry2)
            nevents += len(cur)

        c["dispatch"] = c_dispatch
        c["solve"] = c_solve
        c["release"] = c_release
        c["xfer_begin"] = c_xb
        c["xfer_end"] = c_xe
        self._seq = seq
        self._nevents = nevents
        self._last = now
        return outbox

    # ------------------------------------------------------------- results
    def finish(self) -> tuple[np.ndarray, np.ndarray, float, int, dict]:
        """Owned results: ``(own_idx, x_own, last_time, events, counters)``.

        Raises :class:`SolverError` when an owned component never
        solved — with the conservative barrier protocol that can only
        mean a lost boundary message, so fail loudly.
        """
        own = self._own_idx
        rem = self._remaining
        if any(rem[i] for i in own.tolist()):
            raise SolverError(
                f"partition {self.rank}: unsatisfied dependencies after "
                "drain (lost boundary message?)"
            )
        x = np.asarray(self._x_l, dtype=np.float64)[own]
        if self._x_out is not None:
            self._x_out[own] = x  # in-place publish; no pickled payload
        return own, x, self._last, self._nevents, dict(self._counters)


#: Pipeline chunk width, in multiples of a partition's outgoing
#: lookahead.  A producer whose consumers are still live stops its
#: round this far past its own clock so the round barrier releases its
#: boundary messages while it keeps working — consumers trail the
#: producer by one chunk of simulated time instead of idling until it
#: drains.  Larger values amortise more barrier crossings per round;
#: smaller values fill the pipeline sooner.
PIPELINE_CHUNK = 24.0


def _pair_windows(next_ts, w_mat, chunk=PIPELINE_CHUNK) -> list[float]:
    """Per-partition safe round ends from the pair-lookahead matrix.

    ``end[r] = min over q != r of (next_ts[q] + w_mat[q][r])`` — the
    earliest target any live peer could still send ``r``.  Drained
    peers (``None``) and non-communicating pairs (``inf``) never bound
    the window; a partition nobody can reach drains in one round —
    unless it still feeds a live consumer, in which case its round is
    capped at ``chunk`` times its outgoing lookahead so the consumer
    overlaps it (processing less than the safe bound is always safe).
    """
    nw = len(next_ts)
    ends = []
    for r in range(nw):
        end = np.inf
        for q in range(nw):
            if q == r or next_ts[q] is None:
                continue
            w = w_mat[q][r]
            if w < np.inf:
                end = min(end, next_ts[q] + w)
        if chunk and next_ts[r] is not None:
            wout = min(
                (w_mat[r][s] for s in range(nw)
                 if s != r and next_ts[s] is not None),
                default=np.inf,
            )
            if wout < np.inf:
                end = min(end, next_ts[r] + chunk * wout)
        ends.append(end)
    return ends


def _drive_rounds(engines) -> int:
    """Inline round loop over in-process partition engines."""
    w_mat = [e.lookahead_out for e in engines]
    rounds = 0
    while True:
        nts = [e.next_time() for e in engines]
        if all(t is None for t in nts):
            return rounds
        ends = _pair_windows(nts, w_mat)
        rounds += 1
        outboxes = [
            e.run_round(ends[r]) for r, e in enumerate(engines)
        ]
        for ob in outboxes:
            for r, msgs in ob.items():
                engines[r].receive(msgs)


def execute_partitioned(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design,
    *,
    dag: DependencyDag,
    costs: CommCosts,
    n_workers: int = 2,
) -> dict:
    """Single-process partitioned playout (deterministic, no IPC).

    Runs ``n_workers`` partition engines round-robin in this process —
    the exact round/barrier/outbox protocol of the multiprocess path
    without its process machinery, so tests and verification exercise
    the same ordering rules cheaply.  Returns the observable dict
    (``x``, ``total_time``, ``events``, ``counters``, ``rounds``,
    ``lookahead``, ``workers``).
    """
    engines = [
        PartitionEngine(
            lower, b, dist, machine, design,
            dag=dag, costs=costs, n_workers=n_workers, rank=r,
        )
        for r in range(n_workers)
    ]
    rounds = _drive_rounds(engines)
    n = lower.shape[0]
    x = np.zeros(n, dtype=np.float64)
    total = 0.0
    events = 0
    counters = dict(
        dispatch=0, solve=0, release=0, xfer_begin=0, xfer_end=0
    )
    for eng in engines:
        own, x_own, last, nev, cnt = eng.finish()
        x[own] = x_own
        total = max(total, last)
        events += nev
        for k, v in cnt.items():
            counters[k] += v
    return {
        "x": x,
        "total_time": total,
        "events": events,
        "counters": counters,
        "rounds": rounds,
        "lookahead": engines[0].lookahead,
        "workers": n_workers,
    }


# ---------------------------------------------------------------- processes
#: Segment order of the coordinator's shared-memory block; every field
#: is 8 bytes wide (int64 / float64), laid out back to back.
_SHM_SEGMENTS = (
    ("indptr", "n1", np.int64),
    ("indices", "nnz", np.int64),
    ("data", "nnz", np.float64),
    ("b", "n", np.float64),
    ("in_ptr", "n1", np.int64),
    ("in_degree", "n", np.int64),
    ("x", "n", np.float64),
    ("contrib", "nnz", np.float64),
)


def _shm_views(buf, n: int, nnz: int) -> dict[str, np.ndarray]:
    """Zero-copy numpy views of every segment in the shared block."""
    counts = {"n": n, "n1": n + 1, "nnz": nnz}
    views = {}
    off = 0
    for name, cnt_key, dt in _SHM_SEGMENTS:
        cnt = counts[cnt_key]
        views[name] = np.ndarray(cnt, dtype=dt, buffer=buf, offset=off)
        off += cnt * 8
    return views


def _partition_worker(conn, views, n_gpus, design_value, n_workers,
                      rank, costs):
    """Persistent worker: play out one partition over the shared block.

    The workload tables arrive as shared-memory views (mapped once by
    the coordinator, inherited through fork) — no bundle is loaded and
    no analysis is re-derived here.  Solved ``x`` entries and boundary
    contributions are written back through the same block, so round
    replies and the finish payload carry only scalars.
    """
    from repro.machine.node import dgx1
    from repro.tasks.schedule import block_distribution

    try:
        n = len(views["b"])
        lower = CscMatrix(
            indptr=views["indptr"], indices=views["indices"],
            data=views["data"], shape=(n, n),
        )
        empty = np.empty(0, dtype=np.int64)
        dag = DependencyDag(
            n=n, out_ptr=empty, out_idx=empty,
            in_ptr=views["in_ptr"], in_idx=empty,
            in_degree=views["in_degree"],
        )
        eng = PartitionEngine(
            lower, views["b"], block_distribution(n, n_gpus),
            dgx1(n_gpus), Design(design_value),
            dag=dag, costs=costs, n_workers=n_workers, rank=rank,
            x_out=views["x"], contrib_out=views["contrib"],
        )
        conn.send(("ready", eng.lookahead_out.tolist()))
    except BaseException as err:  # surface the failure to the parent
        conn.send(("error", repr(err)))
        conn.close()
        return
    while True:
        req = conn.recv()
        kind = req[0]
        if kind == "round":
            if req[2]:
                eng.receive(req[2])
            outbox = eng.run_round(req[1])
            conn.send((eng.next_time(), outbox))
        elif kind == "finish":
            _own, _x, last, nev, cnt = eng.finish()
            conn.send((last, nev, cnt))
            conn.close()
            return
        else:  # "stop"
            conn.close()
            return


def run_partitioned_spill(
    spill_path: str,
    *,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    n_workers: int = 2,
    seed: int = 0,
) -> dict:
    """Multiprocess partitioned playout over a shared-memory block.

    The coordinator loads the spilled bundle **once**, copies the
    workload tables plus the mutable playout state into one
    :class:`multiprocessing.shared_memory.SharedMemory` block, and
    forks ``n_workers`` persistent partition workers over it — no
    worker ever loads the bundle or re-derives analysis.  Rounds use
    the per-pair lookahead matrix gathered from the workers: each
    partition's window ends at the earliest target any live peer could
    still send it, so wide pairs advance far past the global minimum.
    Boundary messages carry only the edge id (contributions travel in
    the shared block) and the solution is read back in place.  Returns
    the same observable dict as :func:`execute_partitioned` plus
    ``analysis_shared``.
    """
    from numpy.random import default_rng

    from repro.exec_model.artefacts import load_artefacts
    from repro.machine.node import dgx1

    lower, art = load_artefacts(spill_path)
    n = lower.shape[0]
    nnz = int(lower.nnz)
    costs = art.comm_costs(dgx1(n_gpus), design)
    analysis_shared = art.build_counts.get("dag", 0) == 0
    total_bytes = (5 * n + 2 + 3 * nnz) * 8

    ctx = mp.get_context("fork")
    pipes = []
    procs = []
    shm = shared_memory.SharedMemory(
        create=True, size=max(total_bytes, 8)
    )
    views = _shm_views(shm.buf, n, nnz)
    try:
        views["indptr"][:] = lower.indptr
        views["indices"][:] = lower.indices
        views["data"][:] = lower.data
        views["b"][:] = default_rng(seed).standard_normal(n)
        views["in_ptr"][:] = art.dag.in_ptr
        views["in_degree"][:] = art.dag.in_degree
        views["x"][:] = 0.0
        views["contrib"][:] = 0.0
        for r in range(n_workers):
            parent, child = ctx.Pipe()
            p = ctx.Process(
                target=_partition_worker,
                args=(child, views, n_gpus, design.value,
                      n_workers, r, costs),
            )
            p.start()
            child.close()
            pipes.append(parent)
            procs.append(p)
        w_mat = [None] * n_workers
        for r, conn in enumerate(pipes):
            msg = conn.recv()
            if msg[0] == "error":
                raise SolverError(f"partition worker failed: {msg[1]}")
            w_mat[r] = msg[1]
        finite = [w for row in w_mat for w in row if w < np.inf]
        lookahead = float(min(finite)) if finite else np.inf
        # Workers report their next pending time after every round; the
        # initial front is read with one zero-width round.
        next_ts = [None] * n_workers
        for conn in pipes:
            conn.send(("round", -np.inf, None))
        for r, conn in enumerate(pipes):
            next_ts[r], _ = conn.recv()
        # Undelivered boundary messages are held here and folded into
        # each destination's *next* round request (one barrier per
        # round, not two).  The parent sees every message's target
        # time, so pending inboxes bound the per-pair window scan.
        pending: dict[int, list] = {}
        rounds = 0
        while True:
            eff = list(next_ts)
            for r, msgs in pending.items():
                lo = min(m[0] for m in msgs)
                eff[r] = lo if eff[r] is None else min(eff[r], lo)
            if all(t is None for t in eff):
                break
            ends = _pair_windows(eff, w_mat)
            rounds += 1
            for r, conn in enumerate(pipes):
                # Determinism: per-destination messages are sorted by
                # target time then pusher key — the same order the
                # worker's fold produces, independent of arrival.
                inbound = pending.pop(r, None)
                if inbound is not None:
                    inbound.sort()
                conn.send(("round", ends[r], inbound))
            for r, conn in enumerate(pipes):
                next_ts[r], outbox = conn.recv()
                for dst, msgs in outbox.items():
                    pending.setdefault(dst, []).extend(msgs)
        total = 0.0
        events = 0
        counters = dict(
            dispatch=0, solve=0, release=0, xfer_begin=0, xfer_end=0
        )
        for conn in pipes:
            conn.send(("finish",))
        for conn in pipes:
            last, nev, cnt = conn.recv()
            total = max(total, last)
            events += nev
            for k, v in cnt.items():
                counters[k] += v
        xv = np.array(views["x"], dtype=np.float64, copy=True)
        return {
            "x": xv,
            "total_time": total,
            "events": events,
            "counters": counters,
            "rounds": rounds,
            "lookahead": lookahead,
            "workers": n_workers,
            "analysis_shared": analysis_shared,
        }
    finally:
        for conn in pipes:
            try:
                conn.close()
            except OSError:
                pass
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)
        views.clear()
        shm.close()
        shm.unlink()
