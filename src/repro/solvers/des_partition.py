"""Partitioned parallel DES playout: conservative round-based execution.

This module splits the event calendar of the array engine
(:mod:`repro.solvers.des_array`) **by GPU**: each partition owns a
contiguous block of the simulated GPUs and plays out every event whose
process lives on an owned GPU — component lifecycle steps, warp-slot
grants, and the full claim/wire/retire pipeline of every link (links
are directional and owned by their *source* GPU, so all three transfer
steps of an edge execute in the source partition).  The only event that
crosses a partition boundary is the **update delivery** of a cross-GPU
edge: generated at the transfer's retire step in the source partition,
consumed at the destination component's partition.

Conservative lookahead
----------------------
Every cross-partition delivery is scheduled ``e_delay[e]`` after its
retire event, and ``e_delay[e] = uc + dl[e] >= dl[e]`` where ``dl[e]``
is the cross-pair notify latency from
:func:`~repro.engine.protocol.edge_cost_tables`.  The lookahead window

    ``W = min(dl[e] for cross-partition edges e)``

is therefore a hard lower bound on the source-time-to-target-time gap
of any boundary message.  The coordinator advances in rounds: find the
global minimum pending event time ``t0``, let every partition drain
events in ``[t0, t0 + W)``, exchange the outboxes at the barrier, and
repeat.  A message generated in a round (pusher time ``>= t0``) targets
``>= t0 + W`` — at or beyond the round end — so it always arrives at
its destination partition before that partition reaches its target
time.  Link claim/wire times never bound the window because the whole
link pipeline is partition-local.  When no edge crosses a partition
boundary the window is infinite and the playout completes in one round.

Ordering contract (and its honest limit)
----------------------------------------
The sequential engines break timestamp ties by *push order*: a
monotone sequence number assigned when the event is scheduled.  The
partitioned playout reproduces that order with a **pusher key**
``(push_time, partition_rank, local_seq)`` attached to every calendar
entry:

* pushes are chronologically ordered within a partition, so for two
  entries with *different* push times the key order equals the
  sequential push order exactly (sequence numbers are assigned while
  the simulation clock is non-decreasing);
* entries pushed at the *same* time from the same partition keep their
  local order, which matches the sequential order restricted to that
  partition;
* entries pushed at the same time from *different* partitions fall
  back to the canonical ``partition_rank`` tie-break.  This is the one
  place the merged order is canonical rather than provably identical
  to the sequential interleaving, so the bench layer *verifies* every
  observable (solution bits, simulated wall clock, event and trace
  counters) against the sequential engine per case and reports the
  comparison rather than assuming it.

Scope: the partitioned playout covers the unfaulted, non-unified
configurations the DES bench measures.  Unified-memory designs share
one global page table (cost depends on global access order) and the
resilience hooks mutate cross-partition state; both delegate to the
sequential engines.
"""

from __future__ import annotations

import multiprocessing as mp
from bisect import insort
from heapq import heappop, heappush

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.protocol import (
    COMP_ACQUIRE,
    COMP_DISPATCH,
    COMP_GATHER,
    COMP_POST,
    COMP_RELEASE,
    COMP_SHIFT,
    COMP_SOLVE,
    XFER_CLAIM,
    XFER_RETIRE,
    TokenLayout,
    design_hooks,
    edge_cost_tables,
    gather_cost_table,
    launch_times,
    link_capacity,
    solve_cost_table,
    validate_diagonals,
    wire_time,
)
from repro.engine.resources import ResourceBank
from repro.errors import SolverError
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = [
    "PartitionEngine",
    "execute_partitioned",
    "partition_of_gpu",
    "run_partitioned_spill",
]


def partition_of_gpu(n_gpus: int, n_workers: int) -> np.ndarray:
    """Blocked GPU→partition map: contiguous GPU ranges per worker."""
    if not 1 <= n_workers <= n_gpus:
        raise SolverError(
            f"partition count must be in [1, n_gpus={n_gpus}], "
            f"got {n_workers}"
        )
    gpus = np.arange(n_gpus, dtype=np.int64)
    return gpus * n_workers // n_gpus


class PartitionEngine:
    """One partition of the array engine's event playout.

    Owns the components, warp pools, and outgoing links of a block of
    GPUs; exchanges cross-partition update deliveries through
    round-barrier outboxes.  The precompute mirrors
    :func:`~repro.solvers.des_array.execute_array` exactly (every
    partition builds the full global tables — they are cheap relative
    to the playout and keep edge indexing identical), then seeds its
    calendar with only the owned components' dispatch front.
    """

    def __init__(
        self,
        lower: CscMatrix,
        b: np.ndarray,
        dist: Distribution,
        machine: MachineConfig,
        design: Design,
        *,
        dag: DependencyDag,
        costs: CommCosts,
        n_workers: int,
        rank: int,
    ):
        from repro.solvers.des_solver import MESSAGES_IN_FLIGHT_PER_LINK

        if design_hooks(design).page_table:
            raise SolverError(
                "partitioned playout does not support unified-memory "
                "designs (global page-table state); use the sequential "
                "engines"
            )
        n = lower.shape[0]
        n_gpus = machine.n_gpus
        gpu_spec = machine.gpu
        topo = machine.topology
        phys = machine.active_gpus
        indptr = lower.indptr
        gpu_of = dist.gpu_of
        in_counts = np.diff(dag.in_ptr)
        col_nnz = np.diff(indptr)
        nnz = int(indptr[-1])
        validate_diagonals(indptr, lower.indices, n)

        self.rank = rank
        self.n_workers = n_workers
        self._n = n
        self._indptr_l = indptr.tolist()
        self._idx_l = lower.indices.tolist()
        self._data_l = lower.data.tolist()
        self._g_l = gpu_of.tolist()
        self._b_l = np.asarray(b, dtype=np.float64).tolist()
        self._remaining = dag.in_degree.tolist()
        self._gather_l = gather_cost_table(costs.gather, in_counts).tolist()
        self._solve_l = solve_cost_table(
            gpu_spec.t_per_nnz, col_nnz, in_counts
        ).tolist()

        col_of = np.repeat(np.arange(n, dtype=np.int64), col_nnz)
        src_g_e = gpu_of[col_of]
        dst_g_e = gpu_of[lower.indices]
        local_e = src_g_e == dst_g_e
        inc_e, dl_e = edge_cost_tables(costs, src_g_e, dst_g_e, local_e)
        self._inc_l = inc_e.tolist()
        self._dl_l = dl_e.tolist()
        self._dstg_l = dst_g_e.tolist()
        self._srcg_l = src_g_e.tolist()

        layout = TokenLayout.for_system(n, nnz)
        self._n8 = layout.local_base
        self._m8 = layout.xfer_base
        self._spawn_code_l = layout.spawn_codes(local_e).tolist()
        self._e_contrib = [0.0] * nnz
        self._e_delay = [0.0] * nnz

        bank = ResourceBank()
        for g in range(n_gpus):
            bank.add(f"gpu{g}.warps", gpu_spec.warp_slots)
        pair_rid = np.full(n_gpus * n_gpus, -1, dtype=np.int64)
        pair_wire = np.zeros(n_gpus * n_gpus)
        cross_pairs = np.unique(
            src_g_e[~local_e] * n_gpus + dst_g_e[~local_e]
        )
        for p in cross_pairs.tolist():
            src_pe, dst_pe = p // n_gpus, p % n_gpus
            ga, gb = int(phys[src_pe]), int(phys[dst_pe])
            cap = link_capacity(topo, ga, gb, MESSAGES_IN_FLIGHT_PER_LINK)
            pair_rid[p] = bank.add(f"link{src_pe}->{dst_pe}", cap)
            pair_wire[p] = wire_time(topo, ga, gb)
        self._elink_l = np.where(
            local_e, -1, pair_rid[src_g_e * n_gpus + dst_g_e]
        ).tolist()
        self._ewire_l = np.where(
            local_e, 0.0, pair_wire[src_g_e * n_gpus + dst_g_e]
        ).tolist()
        self._bank = bank

        # Ownership and the conservative lookahead window.
        rank_of_g = partition_of_gpu(n_gpus, n_workers)
        self._rank_of_g = rank_of_g.tolist()
        cross_part = (~local_e) & (
            rank_of_g[src_g_e] != rank_of_g[dst_g_e]
        )
        self.lookahead = (
            float(dl_e[cross_part].min()) if cross_part.any() else np.inf
        )

        # Seed the owned dispatch front.  Pusher keys ``(-1.0, 0, i)``
        # order seeds before any runtime push and by component index
        # within equal spawn times — the sequential ingest order.
        task_of = dist.task_of()
        launch = launch_times(dist.n_tasks, gpu_spec.t_kernel_launch)
        spawn_times = launch[task_of]
        own = rank_of_g[gpu_of] == rank
        own_idx = np.nonzero(own)[0]
        self._own_idx = own_idx
        order = own_idx[np.argsort(spawn_times[own_idx], kind="stable")]
        self._buckets: dict[float, list] = {}
        self._theap: list[float] = []
        st_sorted = spawn_times[order].tolist()
        for i, t in zip(order.tolist(), st_sorted):
            entry = (-1.0, 0, i, i << COMP_SHIFT)
            bl = self._buckets.get(t)
            if bl is None:
                self._buckets[t] = [entry]
                self._theap.append(t)
            else:
                bl.append(entry)
        self._theap.sort()

        self._parked_ready = [False] * n
        self._x_l = [0.0] * n
        self._left_sum = [0.0] * n
        self._t_disp = gpu_spec.t_warp_dispatch
        self._seq = 0
        self._nevents = 0
        self._last = 0.0
        self._counters = dict(
            dispatch=0, solve=0, release=0, xfer_begin=0, xfer_end=0
        )

    # ------------------------------------------------------------ barriers
    def next_time(self) -> float | None:
        """Earliest pending local event time, or None when drained."""
        return self._theap[0] if self._theap else None

    def receive(self, msgs: list[tuple]) -> None:
        """Merge inbound deliveries ``(t2, ptime, src_rank, seq, e, contrib)``.

        Each message lands in the bucket at its target time at the slot
        its pusher key dictates; local entries already in the bucket
        were pushed in non-decreasing pusher-time order, so the list is
        sorted by pusher key and a plain ``insort`` is exact.
        """
        buckets = self._buckets
        e_contrib = self._e_contrib
        for t2, ptime, src_rank, seq, e, contrib in msgs:
            e_contrib[e] = contrib
            entry = (ptime, src_rank, seq, -1 - e)
            bl = buckets.get(t2)
            if bl is None:
                buckets[t2] = [entry]
                heappush(self._theap, t2)
            else:
                insort(bl, entry)

    # ------------------------------------------------------------ playout
    def run_round(self, round_end: float) -> dict[int, list]:
        """Drain every owned event strictly before ``round_end``.

        Returns the outbox: destination rank → cross-partition delivery
        messages generated this round.
        """
        theap = self._theap
        buckets = self._buckets
        idx_l = self._idx_l
        indptr_l = self._indptr_l
        data_l = self._data_l
        g_l = self._g_l
        b_l = self._b_l
        remaining = self._remaining
        parked_ready = self._parked_ready
        left_sum = self._left_sum
        x_l = self._x_l
        gather_l = self._gather_l
        solve_l = self._solve_l
        inc_l = self._inc_l
        dl_l = self._dl_l
        e_contrib = self._e_contrib
        e_delay = self._e_delay
        dstg_l = self._dstg_l
        elink_l = self._elink_l
        ewire_l = self._ewire_l
        spawn_code_l = self._spawn_code_l
        rank_of_g = self._rank_of_g
        my_rank = self.rank
        n8 = self._n8
        m8 = self._m8
        t_disp = self._t_disp
        bank = self._bank
        r_cap = bank.capacity
        r_used = bank.in_use
        r_tot = bank.total_acquisitions
        r_peak = bank.peak_in_use
        r_q = bank._queues
        bget = buckets.get
        c = self._counters
        c_dispatch = c["dispatch"]
        c_solve = c["solve"]
        c_release = c["release"]
        c_xb = c["xfer_begin"]
        c_xe = c["xfer_end"]
        seq = self._seq
        nevents = self._nevents
        now = self._last
        outbox: dict[int, list] = {}

        while theap and theap[0] < round_end:
            t = heappop(theap)
            now = t
            cur = buckets.pop(t)
            for entry in cur:
                code = entry[3]
                if code < 0:
                    # -------------------------------- update delivery
                    e = -1 - code
                    dst = idx_l[e]
                    left_sum[dst] += e_contrib[e]
                    rem = remaining[dst] - 1
                    remaining[dst] = rem
                    if rem == 0 and parked_ready[dst]:
                        parked_ready[dst] = False
                        seq += 1
                        cur.append((now, my_rank, seq, (dst << 3) | COMP_GATHER))
                    continue
                if code >= n8:
                    if code < m8:
                        # ------------------ local edge: one delay hop
                        e = code - n8
                        t2 = now + e_delay[e]
                        seq += 1
                        entry2 = (now, my_rank, seq, -1 - e)
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    # -------------------- cross-GPU transfer steps
                    cc = code - m8
                    st = cc & 3
                    e = cc >> 2
                    if st == XFER_RETIRE:
                        c_xe += 1
                        link = elink_l[e]
                        q = r_q[link]
                        if q:
                            r_tot[link] += 1
                            seq += 1
                            cur.append((now, my_rank, seq, q.popleft()))
                        else:
                            r_used[link] -= 1
                        t2 = now + e_delay[e]
                        seq += 1
                        dr = rank_of_g[dstg_l[e]]
                        if dr != my_rank:
                            msg = (t2, now, my_rank, seq, e, e_contrib[e])
                            ob = outbox.get(dr)
                            if ob is None:
                                outbox[dr] = [msg]
                            else:
                                ob.append(msg)
                            continue
                        entry2 = (now, my_rank, seq, -1 - e)
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    if st == XFER_CLAIM:
                        link = elink_l[e]
                        q = r_q[link]
                        if q or r_used[link] >= r_cap[link]:
                            q.append(code + 1)  # park; resume at WIRE
                            continue
                        u = r_used[link] + 1
                        r_used[link] = u
                        r_tot[link] += 1
                        if u > r_peak[link]:
                            r_peak[link] = u
                    # XFER_WIRE (granted inline above, or woken parked)
                    c_xb += 1
                    t2 = now + ewire_l[e]
                    seq += 1
                    entry2 = (now, my_rank, seq, code - st + XFER_RETIRE)
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [entry2]
                            heappush(theap, t2)
                        else:
                            b2.append(entry2)
                    else:
                        cur.append(entry2)
                    continue

                # ------------------------------------------ component
                i = code >> 3
                st = code & 7
                if st == COMP_GATHER:
                    if remaining[i] > 0:
                        parked_ready[i] = True
                        continue
                    gather = gather_l[i]
                    if gather > 0.0:
                        t2 = now + gather
                        seq += 1
                        entry2 = (now, my_rank, seq, (code & -8) | COMP_SOLVE)
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    st = COMP_SOLVE  # zero gather: solve in this event
                if st == COMP_SOLVE:
                    t2 = now + solve_l[i]
                    seq += 1
                    entry2 = (now, my_rank, seq, (code & -8) | COMP_POST)
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [entry2]
                            heappush(theap, t2)
                        else:
                            b2.append(entry2)
                    else:
                        cur.append(entry2)
                    continue
                if st == COMP_POST:
                    lo = indptr_l[i]
                    hi = indptr_l[i + 1]
                    xi = (b_l[i] - left_sum[i]) / data_l[lo]
                    x_l[i] = xi
                    g = g_l[i]
                    c_solve += 1
                    uc = 0.0
                    for e in range(lo + 1, hi):
                        uc += inc_l[e]
                        e_contrib[e] = data_l[e] * xi
                        e_delay[e] = uc + dl_l[e]
                    if hi > lo + 1:
                        for sc in spawn_code_l[lo + 1 : hi]:
                            seq += 1
                            cur.append((now, my_rank, seq, sc))
                    if uc > 0.0:
                        t2 = now + uc
                        seq += 1
                        entry2 = (
                            now, my_rank, seq, (code & -8) | COMP_RELEASE
                        )
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [entry2]
                                heappush(theap, t2)
                            else:
                                b2.append(entry2)
                        else:
                            cur.append(entry2)
                        continue
                    st = COMP_RELEASE  # zero update cost: retire now
                if st == COMP_RELEASE:
                    g = g_l[i]
                    c_release += 1
                    q = r_q[g]
                    if q:
                        r_tot[g] += 1
                        seq += 1
                        cur.append((now, my_rank, seq, q.popleft()))
                    else:
                        r_used[g] -= 1
                    continue
                # COMP_ACQUIRE / COMP_DISPATCH
                g = g_l[i]
                if st == COMP_ACQUIRE:
                    q = r_q[g]
                    if q or r_used[g] >= r_cap[g]:
                        q.append(code | COMP_DISPATCH)  # park; grant later
                        continue
                    u = r_used[g] + 1
                    r_used[g] = u
                    r_tot[g] += 1
                    if u > r_peak[g]:
                        r_peak[g] = u
                c_dispatch += 1
                t2 = now + t_disp
                seq += 1
                entry2 = (now, my_rank, seq, (code & -8) | COMP_GATHER)
                if t2 > now:
                    b2 = bget(t2)
                    if b2 is None:
                        buckets[t2] = [entry2]
                        heappush(theap, t2)
                    else:
                        b2.append(entry2)
                else:
                    cur.append(entry2)
            nevents += len(cur)

        c["dispatch"] = c_dispatch
        c["solve"] = c_solve
        c["release"] = c_release
        c["xfer_begin"] = c_xb
        c["xfer_end"] = c_xe
        self._seq = seq
        self._nevents = nevents
        self._last = now
        return outbox

    # ------------------------------------------------------------- results
    def finish(self) -> tuple[np.ndarray, np.ndarray, float, int, dict]:
        """Owned results: ``(own_idx, x_own, last_time, events, counters)``.

        Raises :class:`SolverError` when an owned component never
        solved — with the conservative barrier protocol that can only
        mean a lost boundary message, so fail loudly.
        """
        own = self._own_idx
        rem = self._remaining
        if any(rem[i] for i in own.tolist()):
            raise SolverError(
                f"partition {self.rank}: unsatisfied dependencies after "
                "drain (lost boundary message?)"
            )
        x = np.asarray(self._x_l, dtype=np.float64)[own]
        return own, x, self._last, self._nevents, dict(self._counters)


def _drive_rounds(engines) -> int:
    """Inline round loop over in-process partition engines."""
    lookahead = min(e.lookahead for e in engines)
    rounds = 0
    while True:
        nts = [e.next_time() for e in engines]
        live = [t for t in nts if t is not None]
        if not live:
            return rounds
        round_end = min(live) + lookahead
        rounds += 1
        outboxes = [e.run_round(round_end) for e in engines]
        for ob in outboxes:
            for r, msgs in ob.items():
                engines[r].receive(msgs)


def execute_partitioned(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design,
    *,
    dag: DependencyDag,
    costs: CommCosts,
    n_workers: int = 2,
) -> dict:
    """Single-process partitioned playout (deterministic, no IPC).

    Runs ``n_workers`` partition engines round-robin in this process —
    the exact round/barrier/outbox protocol of the multiprocess path
    without its process machinery, so tests and verification exercise
    the same ordering rules cheaply.  Returns the observable dict
    (``x``, ``total_time``, ``events``, ``counters``, ``rounds``,
    ``lookahead``, ``workers``).
    """
    engines = [
        PartitionEngine(
            lower, b, dist, machine, design,
            dag=dag, costs=costs, n_workers=n_workers, rank=r,
        )
        for r in range(n_workers)
    ]
    rounds = _drive_rounds(engines)
    n = lower.shape[0]
    x = np.zeros(n, dtype=np.float64)
    total = 0.0
    events = 0
    counters = dict(
        dispatch=0, solve=0, release=0, xfer_begin=0, xfer_end=0
    )
    for eng in engines:
        own, x_own, last, nev, cnt = eng.finish()
        x[own] = x_own
        total = max(total, last)
        events += nev
        for k, v in cnt.items():
            counters[k] += v
    return {
        "x": x,
        "total_time": total,
        "events": events,
        "counters": counters,
        "rounds": rounds,
        "lookahead": engines[0].lookahead,
        "workers": n_workers,
    }


# ---------------------------------------------------------------- processes
def _partition_worker(conn, spill_path, n_gpus, design_value, n_workers,
                      rank, seed):
    """Persistent worker: load the spilled bundle, serve round requests."""
    from numpy.random import default_rng

    from repro.exec_model.artefacts import load_artefacts
    from repro.machine.node import dgx1
    from repro.tasks.schedule import block_distribution

    try:
        lower, art = load_artefacts(spill_path)
        n = lower.shape[0]
        machine = dgx1(n_gpus)
        dist = block_distribution(n, n_gpus)
        design = Design(design_value)
        costs = art.comm_costs(machine, design)
        b = default_rng(seed).standard_normal(n)
        eng = PartitionEngine(
            lower, b, dist, machine, design,
            dag=art.dag, costs=costs, n_workers=n_workers, rank=rank,
        )
        conn.send(("ready", eng.lookahead,
                   art.build_counts.get("dag", 0) == 0))
    except BaseException as err:  # surface the failure to the parent
        conn.send(("error", repr(err), False))
        conn.close()
        return
    while True:
        req = conn.recv()
        kind = req[0]
        if kind == "round":
            if req[2]:
                eng.receive(req[2])
            outbox = eng.run_round(req[1])
            conn.send((eng.next_time(), outbox))
        elif kind == "finish":
            own, x_own, last, nev, cnt = eng.finish()
            conn.send((own.tolist(), x_own.tolist(), last, nev, cnt))
            conn.close()
            return
        else:  # "stop"
            conn.close()
            return


def run_partitioned_spill(
    spill_path: str,
    *,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    n_workers: int = 2,
    seed: int = 0,
) -> dict:
    """Multiprocess partitioned playout against a spilled bundle.

    Spawns ``n_workers`` persistent worker processes, each loading the
    workload from ``spill_path`` (no analysis is re-derived: the spill
    carries the DAG) and owning one GPU block; the parent coordinates
    rounds and routes outbox messages over pipes.  Returns the same
    observable dict as :func:`execute_partitioned` plus
    ``analysis_shared``.
    """
    ctx = mp.get_context("fork")
    pipes = []
    procs = []
    try:
        for r in range(n_workers):
            parent, child = ctx.Pipe()
            p = ctx.Process(
                target=_partition_worker,
                args=(child, spill_path, n_gpus, design.value,
                      n_workers, r, seed),
            )
            p.start()
            child.close()
            pipes.append(parent)
            procs.append(p)
        lookahead = np.inf
        analysis_shared = True
        for conn in pipes:
            tag, la, shared = conn.recv()
            if tag == "error":
                raise SolverError(f"partition worker failed: {la}")
            lookahead = min(lookahead, la)
            analysis_shared = analysis_shared and shared
        # Workers report their next pending time after every round; the
        # initial front is read with one zero-width round.
        next_ts = [None] * n_workers
        for conn in pipes:
            conn.send(("round", -np.inf, None))
        for r, conn in enumerate(pipes):
            next_ts[r], _ = conn.recv()
        # Undelivered boundary messages are held here and folded into
        # each destination's *next* round request (one barrier per
        # round, not two).  The parent sees every message's target
        # time, so pending inboxes count toward the round-start scan.
        pending: dict[int, list] = {}
        rounds = 0
        while True:
            live = [t for t in next_ts if t is not None]
            live.extend(m[0] for msgs in pending.values() for m in msgs)
            if not live:
                break
            round_end = min(live) + lookahead
            rounds += 1
            for r, conn in enumerate(pipes):
                # Determinism: per-destination messages are sorted by
                # target time then pusher key — the same order the
                # worker's insort produces, independent of arrival.
                inbound = pending.pop(r, None)
                if inbound is not None:
                    inbound.sort()
                conn.send(("round", round_end, inbound))
            for r, conn in enumerate(pipes):
                next_ts[r], outbox = conn.recv()
                for dst, msgs in outbox.items():
                    pending.setdefault(dst, []).extend(msgs)
        x = None
        total = 0.0
        events = 0
        counters = dict(
            dispatch=0, solve=0, release=0, xfer_begin=0, xfer_end=0
        )
        for conn in pipes:
            conn.send(("finish",))
        for conn in pipes:
            own, x_own, last, nev, cnt = conn.recv()
            if x is None:
                # n is recoverable from the largest owned index only in
                # aggregate; allocate lazily once any payload arrives.
                x = {}
            for i, v in zip(own, x_own):
                x[i] = v
            total = max(total, last)
            events += nev
            for k, v in cnt.items():
                counters[k] += v
        n = max(x) + 1 if x else 0
        xv = np.zeros(n, dtype=np.float64)
        for i, v in x.items():
            xv[i] = v
        return {
            "x": xv,
            "total_time": total,
            "events": events,
            "counters": counters,
            "rounds": rounds,
            "lookahead": float(lookahead),
            "workers": n_workers,
            "analysis_shared": analysis_shared,
        }
    finally:
        for conn in pipes:
            try:
                conn.close()
            except OSError:
                pass
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5)
