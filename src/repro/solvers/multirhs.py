"""SpTRSV with multiple right-hand sides (``L X = B``).

The paper builds on Liu et al.'s sync-free algorithm *for multiple
right-hand sides*: the dependency analysis and the lock-wait counters
are shared across all RHS columns, and each component's solve-update
processes a row of ``X`` instead of one scalar.  This module adds that
capability on top of any single-RHS design:

* numerically, the level-sweep kernel is vectorised over the RHS block
  (columns solve simultaneously — no extra dependency analysis);
* for timing, one simulated execution is run with the per-component
  solve cost scaled by the RHS width (the communication pattern — one
  in-degree counter and one get round per component — is unchanged; only
  ``left_sum`` traffic widens, which the fabric-bytes counter reflects).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.errors import ShapeError
from repro.exec_model.costmodel import Design, build_comm_costs
from repro.exec_model.timeline import ExecutionReport, simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import validate_system
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import round_robin_distribution

__all__ = ["multi_rhs_forward", "MultiRhsResult", "solve_multi_rhs"]


def multi_rhs_forward(lower: CscMatrix, b_block: np.ndarray) -> np.ndarray:
    """Vectorised level-sweep solve of ``L X = B`` for ``B (n, k)``."""
    b_block = np.asarray(b_block, dtype=np.float64)
    n = lower.shape[0]
    if b_block.ndim != 2 or b_block.shape[0] != n:
        raise ShapeError(
            f"B must have shape ({n}, k), got {b_block.shape}"
        )
    levels = compute_levels(lower)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    diag_ptr = indptr[:-1]
    diag = data[diag_ptr]
    x = np.zeros_like(b_block)
    left = np.zeros_like(b_block)
    for l in range(levels.n_levels):
        comps = levels.level(l)
        x[comps] = (b_block[comps] - left[comps]) / diag[comps, None]
        starts = diag_ptr[comps] + 1
        stops = indptr[comps + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            continue
        rep_starts = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        eidx = rep_starts + within
        rows = indices[eidx]
        src = np.repeat(comps, counts)
        contrib = data[eidx, None] * x[src]
        np.add.at(left, rows, contrib)
    return x


class MultiRhsResult:
    """Solution block plus the width-scaled execution report."""

    def __init__(self, x: np.ndarray, report: ExecutionReport, solver: str):
        self.x = x
        self.report = report
        self.solver = solver

    @property
    def n_rhs(self) -> int:
        return self.x.shape[1]


def solve_multi_rhs(
    lower: CscMatrix,
    b_block: np.ndarray,
    machine: MachineConfig | None = None,
    tasks_per_gpu: int = 8,
    design: Design | str = Design.SHMEM_READONLY,
) -> MultiRhsResult:
    """Solve ``L X = B`` on the simulated multi-GPU machine.

    Timing scales the per-component arithmetic by the RHS width ``k``
    while keeping the dependency/communication structure fixed — the
    reason multi-RHS solves amortise the synchronisation cost so well in
    Liu et al.'s formulation (and why the report's time grows far slower
    than ``k``).
    """
    validate_system(lower, np.asarray(b_block, dtype=np.float64)[:, 0])
    if machine is None:
        machine = dgx1(4)
    x = multi_rhs_forward(lower, b_block)
    k = x.shape[1]
    # Scale the arithmetic term: a k-wide solve touches k values per nnz.
    scaled = machine.with_gpu(t_per_nnz=machine.gpu.t_per_nnz * k)
    dist = round_robin_distribution(lower.shape[0], machine.n_gpus, tasks_per_gpu)
    dag = build_dag(lower)
    costs = build_comm_costs(scaled, Design(design))
    report = simulate_execution(
        lower, dist, scaled, Design(design), dag=dag, costs=costs
    )
    # left_sum traffic widens by k (8 bytes -> 8k per remote contribution).
    report = replace(report, fabric_bytes=report.fabric_bytes * (1 + k) / 2)
    return MultiRhsResult(x=x, report=report, solver=f"multi-rhs[{k}]")
