"""Block (supernodal) SpTRSV — the paper's reference [34] as a baseline.

Lu, Niu and Liu ("Efficient block algorithms for parallel sparse
triangular solve", ICPP 2020) exploit *supernodes*: runs of consecutive
columns whose sub-diagonal pattern is (nearly) identical, as produced by
fill-in during factorisation.  Grouping them turns many scalar
column-updates into one dense triangular solve + one dense
matrix-vector update per block, trading scheduling overhead for
arithmetic intensity.

This module implements the whole pipeline from scratch:

* :func:`detect_supernodes` — greedy supernode partition of a
  lower-triangular CSC matrix (consecutive columns merge while their
  strictly-lower row patterns match within a relaxation tolerance);
* :class:`BlockedLower` — the blocked storage: per-block dense diagonal
  triangle + packed sub-diagonal rows;
* :func:`blocked_forward` — the numeric block solve (dense-kernel
  inner loops via NumPy);
* :class:`BlockedSolver` — solver front-end with a timing model that
  charges per-block kernel costs instead of per-component ones, so the
  block-vs-scalar trade-off is measurable against the paper's designs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.errors import SolverError
from repro.exec_model.timeline import ExecutionReport
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.sparse.csc import CscMatrix

__all__ = [
    "detect_supernodes",
    "BlockedLower",
    "blocked_forward",
    "BlockedSolver",
]


def detect_supernodes(
    lower: CscMatrix,
    max_block: int = 32,
    relax: float = 0.0,
) -> np.ndarray:
    """Greedy supernode partition of a lower-triangular matrix.

    Columns ``j`` and ``j+1`` merge when (a) the block stays within
    ``max_block`` columns, (b) column ``j+1``'s strictly-lower pattern
    *outside the block* is a subset match of column ``j``'s with at most
    ``relax`` fraction of mismatches (relaxed supernodes), and (c) the
    diagonal block region is fully coupled (column ``j`` has an entry in
    row ``j+1`` — without it a dense triangle would fabricate coupling).

    Returns ``block_ptr`` with blocks ``block_ptr[b]:block_ptr[b+1]``.
    """
    n = lower.shape[0]
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    if max_block < 1:
        raise SolverError(f"max_block must be >= 1, got {max_block}")
    indptr, indices = lower.indptr, lower.indices

    def pattern_below(j: int, first: int) -> np.ndarray:
        """Strictly-lower row indices of column j at/after row `first`."""
        sl = indices[indptr[j] : indptr[j + 1]]
        return sl[sl >= first]

    boundaries = [0]
    start = 0
    for j in range(1, n):
        width = j - start
        merge = width < max_block
        if merge:
            # Coupling: previous column reaches row j.
            prev = indices[indptr[j - 1] : indptr[j]]
            merge = bool(np.any(prev == j))
        if merge:
            # Pattern match below the candidate block.
            below_prev = pattern_below(start, j + 1)
            below_this = pattern_below(j, j + 1)
            union = np.union1d(below_prev, below_this)
            if len(union):
                inter = np.intersect1d(
                    below_prev, below_this, assume_unique=True
                )
                mismatch = 1.0 - len(inter) / len(union)
                merge = mismatch <= relax
        if not merge:
            boundaries.append(j)
            start = j
    boundaries.append(n)
    return np.asarray(boundaries, dtype=np.int64)


@dataclass(frozen=True)
class BlockedLower:
    """Blocked storage of a lower-triangular matrix.

    Attributes
    ----------
    block_ptr:
        Supernode boundaries over columns.
    diag_blocks:
        Per-block dense lower-triangular diagonal block (list of
        ``(w, w)`` arrays).
    sub_rows, sub_vals:
        Per-block packed sub-diagonal part: ``sub_rows[b]`` are the
        distinct row indices below the block, ``sub_vals[b]`` is the
        dense ``(len(sub_rows[b]), w)`` coefficient panel.
    """

    n: int
    block_ptr: np.ndarray
    diag_blocks: list
    sub_rows: list
    sub_vals: list

    @property
    def n_blocks(self) -> int:
        return len(self.block_ptr) - 1

    @property
    def dense_values(self) -> int:
        """Values the blocked layout stores (incl. explicit zeros).

        Lower triangles of the diagonal blocks plus the packed panels;
        comparing against the scalar nnz quantifies the fill overhead
        that relaxed supernodes trade for fewer, denser kernels.
        """
        tri = sum(b.shape[0] * (b.shape[0] + 1) // 2 for b in self.diag_blocks)
        return tri + sum(v.size for v in self.sub_vals)

    @classmethod
    def from_csc(
        cls, lower: CscMatrix, block_ptr: np.ndarray
    ) -> "BlockedLower":
        n = lower.shape[0]
        indptr, indices, data = lower.indptr, lower.indices, lower.data
        diag_blocks, sub_rows, sub_vals = [], [], []
        for b in range(len(block_ptr) - 1):
            lo, hi = int(block_ptr[b]), int(block_ptr[b + 1])
            w = hi - lo
            tri = np.zeros((w, w))
            below: dict[int, int] = {}
            cols_below: list[list[tuple[int, float]]] = [[] for _ in range(w)]
            for jj in range(lo, hi):
                for e in range(int(indptr[jj]), int(indptr[jj + 1])):
                    r = int(indices[e])
                    if r < hi:
                        tri[r - lo, jj - lo] = data[e]
                    else:
                        below.setdefault(r, len(below))
                        cols_below[jj - lo].append((r, float(data[e])))
            rows_arr = np.fromiter(below.keys(), dtype=np.int64, count=len(below))
            panel = np.zeros((len(below), w))
            for cj, entries in enumerate(cols_below):
                for r, v in entries:
                    panel[below[r], cj] = v
            diag_blocks.append(tri)
            sub_rows.append(rows_arr)
            sub_vals.append(panel)
        return cls(
            n=n,
            block_ptr=np.asarray(block_ptr, dtype=np.int64),
            diag_blocks=diag_blocks,
            sub_rows=sub_rows,
            sub_vals=sub_vals,
        )


def blocked_forward(blocked: BlockedLower, b: np.ndarray) -> np.ndarray:
    """Solve ``Lx = b`` block by block (dense kernels per block)."""
    x = np.zeros(blocked.n)
    left = np.zeros(blocked.n)
    bp = blocked.block_ptr
    for k in range(blocked.n_blocks):
        lo, hi = int(bp[k]), int(bp[k + 1])
        rhs = b[lo:hi] - left[lo:hi]
        tri = blocked.diag_blocks[k]
        # Dense forward substitution on the (small) diagonal triangle.
        xb = np.empty(hi - lo)
        for i in range(hi - lo):
            xb[i] = (rhs[i] - tri[i, :i] @ xb[:i]) / tri[i, i]
        x[lo:hi] = xb
        rows = blocked.sub_rows[k]
        if len(rows):
            left[rows] += blocked.sub_vals[k] @ xb
    return x


class BlockedSolver(TriangularSolver):
    """Supernodal block SpTRSV baseline (single GPU).

    The timing model charges, per block: one kernel-ish dispatch, a
    dense triangular solve of width ``w`` (``w^2/2`` MACs at the dense
    rate, 4x faster per value than the scattered gather), and one dense
    panel GEMV — then schedules *blocks* through the same level-ordered
    pipeline as components, with per-level barriers as in [34]'s
    level-blocked variant.
    """

    name = "blocked-supernodal"

    #: Dense-kernel advantage over scattered per-nnz access.
    DENSE_SPEEDUP = 4.0

    def __init__(
        self,
        machine: MachineConfig | None = None,
        max_block: int = 32,
        relax: float = 0.0,
    ):
        self.machine = machine if machine is not None else dgx1(1)
        self.max_block = max_block
        self.relax = relax

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        block_ptr = detect_supernodes(lower, self.max_block, self.relax)
        blocked = BlockedLower.from_csc(lower, block_ptr)
        x = blocked_forward(blocked, b)
        report = self._price(lower, blocked)
        return SolveResult(x=x, report=report, solver=self.name)

    # ------------------------------------------------------------------
    def _price(self, lower: CscMatrix, blocked: BlockedLower) -> ExecutionReport:
        gpu = self.machine.gpu
        bp = blocked.block_ptr
        widths = np.diff(bp)
        # Block-level dependency levels: a block's level is the max level
        # of its columns.
        levels = compute_levels(lower)
        block_level = np.array(
            [
                int(levels.level_of[bp[k] : bp[k + 1]].max())
                for k in range(blocked.n_blocks)
            ]
        )
        dense_rate = gpu.t_per_nnz / self.DENSE_SPEEDUP
        block_cost = np.array(
            [
                gpu.t_warp_dispatch
                + dense_rate * (widths[k] ** 2 / 2.0)
                + dense_rate * blocked.sub_vals[k].size
                for k in range(blocked.n_blocks)
            ]
        )
        solve_time = 0.0
        busy = float(block_cost.sum())
        for l in range(int(block_level.max(initial=0)) + 1):
            members = np.nonzero(block_level == l)[0]
            if len(members) == 0:
                continue
            waves = int(np.ceil(len(members) / gpu.warp_slots))
            solve_time += (
                gpu.t_kernel_launch
                + waves * float(block_cost[members].max())
                + gpu.t_kernel_launch  # inter-level barrier
            )
        analysis = (
            lower.nnz * gpu.t_atomic_device / max(gpu.analysis_parallelism, 1)
            + blocked.n_blocks * gpu.t_warp_dispatch  # supernode detection
        )
        return ExecutionReport(
            design="blocked",
            machine=self.machine.topology.name,
            n_gpus=1,
            n_tasks=blocked.n_blocks,
            analysis_time=analysis,
            solve_time=solve_time,
            gpu_busy=np.array([busy]),
            gpu_spin=np.array([max(solve_time - busy, 0.0)]),
            gpu_comm=np.array([0.0]),
            gpu_finish=np.array([solve_time]),
            local_updates=lower.nnz - lower.shape[0],
            remote_updates=0,
            page_faults=0.0,
            migrated_bytes=0.0,
            fabric_bytes=0.0,
        )
