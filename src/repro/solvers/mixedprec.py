"""Mixed-precision SpTRSV with iterative refinement (extension).

A standard acceleration in the SpTRSV literature the paper's future work
points toward: run the solve in float32 — halving both the arithmetic
word size and, more importantly for this paper's bottleneck, the *bytes
every remote get and left-sum update moves* — then recover float64
accuracy with residual-based iterative refinement:

    x_0 = solve_32(L, b);   r_k = b - L x_k;   x_{k+1} = x_k + solve_32(L, r_k)

Refinement on a triangular system converges extremely fast (the solve is
exact up to rounding), so 1-2 sweeps typically reach ~1e-12 relative
error while every simulated solve enjoys fp32 traffic.

Numerics here are *real*: the low-precision sweeps actually compute in
``np.float32`` (you can watch the rounding error appear and then get
refined away), and the report prices fp32 data movement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.levels import compute_levels
from repro.errors import SolverError
from repro.exec_model.costmodel import Design, build_comm_costs
from repro.exec_model.timeline import ExecutionReport, simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import round_robin_distribution

__all__ = ["float32_forward", "MixedPrecisionSolver"]


def float32_forward(lower: CscMatrix, b: np.ndarray) -> np.ndarray:
    """Level-sweep forward solve computed entirely in float32.

    Returns a float64 array holding the float32-accurate solution (the
    rounding error is the point — refinement removes it).
    """
    levels = compute_levels(lower)
    n = lower.shape[0]
    indptr = lower.indptr
    indices = lower.indices
    data32 = lower.data.astype(np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    diag_ptr = indptr[:-1]
    diag = data32[diag_ptr]
    x = np.zeros(n, dtype=np.float32)
    left = np.zeros(n, dtype=np.float32)
    for l in range(levels.n_levels):
        comps = levels.level(l)
        x[comps] = (b32[comps] - left[comps]) / diag[comps]
        starts = diag_ptr[comps] + 1
        stops = indptr[comps + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            continue
        rep_starts = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        eidx = rep_starts + within
        rows = indices[eidx]
        src = np.repeat(comps, counts)
        np.add.at(left, rows, data32[eidx] * x[src])
    return x.astype(np.float64)


@dataclass(frozen=True)
class _RefinementStats:
    sweeps: int
    final_residual: float
    residual_history: tuple


class MixedPrecisionSolver(TriangularSolver):
    """fp32 multi-GPU solve + fp64 iterative refinement.

    Parameters
    ----------
    machine, tasks_per_gpu:
        The zero-copy configuration each fp32 sweep is priced on.
    tol:
        Componentwise relative residual target (float64).
    max_sweeps:
        Refinement bound; exceeding it raises :class:`SolverError`
        (triangular refinement diverging means the system is pathological).
    """

    name = "mixed-precision-zerocopy"

    def __init__(
        self,
        machine: MachineConfig | None = None,
        tasks_per_gpu: int = 8,
        tol: float = 1e-12,
        max_sweeps: int = 4,
    ):
        self.machine = machine if machine is not None else dgx1(4)
        self.tasks_per_gpu = tasks_per_gpu
        self.tol = tol
        self.max_sweeps = max_sweeps
        self.last_refinement: _RefinementStats | None = None

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        scale = np.maximum(np.abs(b), 1.0)

        x = float32_forward(lower, b)
        history = []
        sweeps = 1
        while True:
            r = b - lower.matvec(x)
            res = float(np.max(np.abs(r) / scale))
            history.append(res)
            if res <= self.tol:
                break
            if sweeps >= self.max_sweeps:
                raise SolverError(
                    f"iterative refinement did not reach {self.tol:g} in "
                    f"{self.max_sweeps} sweeps (residual {res:g})"
                )
            x = x + float32_forward(lower, r)
            sweeps += 1
        self.last_refinement = _RefinementStats(
            sweeps=sweeps,
            final_residual=history[-1],
            residual_history=tuple(history),
        )

        report = self._price(lower, sweeps)
        return SolveResult(x=x, report=report, solver=self.name)

    # ------------------------------------------------------------------
    def _price(self, lower: CscMatrix, sweeps: int) -> ExecutionReport:
        """fp32 sweeps: half-width values halve the arithmetic streaming
        term and the fabric payloads; counters/indices stay 8/4 bytes."""
        m32 = self.machine.with_gpu(
            t_per_nnz=self.machine.gpu.t_per_nnz * 0.5
        )
        dist = round_robin_distribution(
            lower.shape[0], m32.n_gpus, self.tasks_per_gpu
        )
        costs = build_comm_costs(m32, Design.SHMEM_READONLY)
        one = simulate_execution(
            lower, dist, m32, Design.SHMEM_READONLY, costs=costs
        )
        # Residual computation between sweeps: one SpMV-like pass, fully
        # parallel — charge a streaming term per sweep beyond the first.
        residual_pass = (
            lower.nnz
            * self.machine.gpu.t_per_nnz
            / max(self.machine.gpu.analysis_parallelism, 1)
        )
        return replace(
            one,
            design="mixed_precision",
            solve_time=one.solve_time * sweeps
            + residual_pass * max(sweeps - 1, 0),
            fabric_bytes=one.fabric_bytes * 0.75 * sweeps,  # fp32 payloads
            local_updates=one.local_updates * sweeps,
            remote_updates=one.remote_updates * sweeps,
        )
