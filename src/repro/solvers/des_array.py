"""Array-based DES fast path: the event-granular playout without generators.

This module re-implements :func:`repro.solvers.des_solver.des_execute`'s
simulation — the same components, notifiers, warp slots, link channels,
and unified-memory page table — as a flat state machine instead of one
Python generator per process:

* **exact-time event calendar** — pending events live in FIFO buckets
  keyed by timestamp (the inline form of
  :class:`repro.engine.calendar.CalendarQueue`'s ``"fifo"`` mode): a
  dict maps each distinct time to a list of integer tokens and a small
  heap orders the distinct times.  The initial dispatch front (one
  spawn per component, launch times known upfront) is bucketed with one
  vectorised stable argsort, and every zero-delay event — waiter
  hand-overs, readiness wakes, notifier spawns — is a plain
  ``list.append`` into the bucket being drained;
* **warp-batch state machines** — events are integer tokens, classed by
  range so the hottest kinds decode cheapest: ``-1 - e`` is edge ``e``'s
  *update* delivery, ``(i << 3) | state`` a component step,
  ``n*8 + e`` a local edge's start hop, and ``n*8 + nnz + (e << 2 |
  state)`` a cross-GPU transfer step.  All per-warp and per-edge costs
  (gather, solve, update increments, notify latencies, link rows, wire
  times) are precomputed in vectorised NumPy passes and indexed straight
  off the token, so one engine tick is an integer compare plus a handful
  of float adds;
* **pooled resources** — every warp-slot pool and link channel is a row
  in one :class:`~repro.engine.resources.ResourceBank`; the hot loop
  hoists the bank's parallel lists into locals and runs the
  grant/hand-over protocol inline.

Bit-equality contract
---------------------
The array engine must be *indistinguishable* from the reference engine:
identical trace streams (``dispatch``/``solve``/``release``/``fault``/
``xfer_begin``/``xfer_end`` records, bit-equal times, same order),
identical solution vectors, identical total time, page-fault and event
counts.  Two invariants carry the proof:

1. *FIFO-bucket order is ``(time, seq)`` order.*  The reference engine
   breaks timestamp ties with a monotone sequence number assigned at
   schedule time, and every schedule lands at ``time >= now``.  A token
   appended to a bucket therefore always carries a larger sequence
   number than every token already in it — insertion order within an
   exact timestamp reproduces the reference heap's pop order without
   materialising sequence numbers.
2. *Identical IEEE-754 operation chains.*  Every event time and value
   is produced by the same sequence of binary64 operations the
   reference generators execute (NumPy float64 and Python floats share
   binary64 semantics), so times collide exactly where the reference
   ties and differ exactly where it doesn't.

``tests/test_des_array.py`` enforces the contract over every workload
generator; the causality checker replays the traces against machine
physics.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.resources import ResourceBank
from repro.engine.trace import Trace
from repro.errors import (
    DeadlockError,
    RecoveryExhaustedError,
    SimulationError,
    SolverError,
)
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig
from repro.machine.unified import UnifiedMemory
from repro.resilience.faults import (
    FATE_CORRUPT,
    FATE_DELAY,
    flip_mantissa_bit,
)
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution, remap_failed_components

__all__ = ["execute_array", "ARRAY_MIN_COMPONENTS"]

#: Below this size ``engine="auto"`` keeps the reference engine: the
#: vectorised precompute passes cost more than the generator overhead
#: they remove.
ARRAY_MIN_COMPONENTS = 64

# Component resume states (token = (component << 3) | state).
_S_ACQUIRE = 0  # initial: claim a warp slot
_S_DISPATCH = 1  # slot granted: emit dispatch, pay warp-dispatch cost
_S_GATHER = 2  # dependencies satisfied: pay the gather cost
_S_SOLVE = 3  # gather done: pay the solve cost
_S_POST = 4  # value ready: update dependants
_S_RELEASE = 5  # updates issued: retire the slot

# Tombstone state: a cancelled component step (its GPU failed).  The
# token keeps its exact (time, insertion) slot in the calendar and burns
# one event when drained — mirroring the reference engine, where the
# stale generator resumes once, sees its epoch mismatch, and exits.
_S_DEAD = 6

# Cross-GPU transfer states (token = n*8 + nnz + ((edge << 2) | state)).
_R_START = 0  # claim a link channel
_R_XFER = 1  # channel granted: message on the wire
_R_XFEREND = 2  # wire time paid: retire the channel, deliver


def execute_array(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design,
    *,
    dag: DependencyDag,
    costs: CommCosts,
    trace_enabled: bool = True,
    max_events: int = 50_000_000,
    injector=None,
    recovery=None,
    watchdog=None,
) -> tuple[np.ndarray, float, Trace, int, int]:
    """Play out one event-granular SpTRSV on the array engine.

    Returns ``(x, total_time, trace, page_faults, events)`` — the exact
    fields of :class:`~repro.solvers.des_solver.DesExecution`, produced
    bit-identically to the reference engine.

    ``injector``/``recovery``/``watchdog`` mirror the reference engine's
    resilience hooks (see :func:`repro.solvers.des_solver.des_execute`);
    with a null/absent plan every instrumented branch is dead and the
    playout is bit-identical to the un-instrumented engine.
    """
    from repro.solvers.des_solver import MESSAGES_IN_FLIGHT_PER_LINK

    n = lower.shape[0]
    n_gpus = machine.n_gpus
    gpu_spec = machine.gpu
    unified = design is Design.UNIFIED
    topo = machine.topology
    phys = machine.active_gpus

    faulty = injector is not None and injector.active
    link_faulty = faulty and injector.has_link_faults
    delivery_faulty = faulty and injector.has_delivery_faults
    straggler_faulty = faulty and injector.has_stragglers
    failure_mode = faulty and injector.has_gpu_failures

    # ----------------------------------------------------------------
    # Vectorised precompute: per-warp and per-edge cost tables.
    # ----------------------------------------------------------------
    indptr = lower.indptr
    gpu_of = dist.gpu_of
    in_counts = np.diff(dag.in_ptr)
    col_nnz = np.diff(indptr)
    nnz = int(indptr[-1])

    # The reference engine discovers a missing diagonal when the solve
    # front reaches the column; with the whole structure in hand the
    # array engine can reject it upfront.
    if np.any(col_nnz == 0):
        bad = int(np.nonzero(col_nnz == 0)[0][0])
        raise SolverError(f"missing diagonal at column {bad}")
    diag_bad = lower.indices[indptr[:-1]] != np.arange(n)
    if np.any(diag_bad):
        raise SolverError(
            f"missing diagonal at column {int(np.nonzero(diag_bad)[0][0])}"
        )

    indptr_l = indptr.tolist()
    idx_l = lower.indices.tolist()
    data_l = lower.data.tolist()
    g_l = gpu_of.tolist()
    b_l = np.asarray(b, dtype=np.float64).tolist()
    remaining = dag.in_degree.tolist()
    in_counts_l = in_counts.tolist()
    gather_l = np.where(in_counts > 0, costs.gather, 0.0).tolist()
    solve_l = (
        gpu_spec.t_per_nnz * (np.maximum(col_nnz, 1) + in_counts)
    ).tolist()

    # Per-entry edge tables, aligned with ``indices``/``data`` (the
    # diagonal slots carry unused values; the update loop starts past
    # them).
    col_of = np.repeat(np.arange(n, dtype=np.int64), col_nnz)
    src_g_e = gpu_of[col_of]
    dst_g_e = gpu_of[lower.indices]
    local_e = src_g_e == dst_g_e
    srcg_l = src_g_e.tolist()
    dstg_l = dst_g_e.tolist()
    if not unified:
        inc_l = np.where(
            local_e, costs.update_local, costs.update_remote[src_g_e, dst_g_e]
        ).tolist()
        dl_l = np.where(local_e, 0.0, costs.notify[src_g_e, dst_g_e]).tolist()
    else:
        inc_l = dl_l = None
    notify_l = costs.notify.tolist()
    update_local = costs.update_local

    # One notifier per matrix entry, its runtime fields (contribution
    # value, post-transfer delay) written at solve time.  The spawn
    # token already encodes the edge's class — local hop or cross-GPU
    # transfer — so a component's whole update fan-out is ingested with
    # a single slice-extend.
    n8 = n << 3
    m8 = n8 + nnz
    eids = np.arange(nnz, dtype=np.int64)
    spawn_code_l = np.where(local_e, n8 + eids, m8 + (eids << 2)).tolist()
    e_contrib = [0.0] * nnz
    e_delay = [0.0] * nnz

    # Resilience state.  ``e_attempt`` counts delivery attempts per edge
    # (the injector's fate tables and the retry backoff are keyed on it);
    # ``done_l`` marks solved components (a GPU failure only cancels
    # unsolved ones); ``gpu_np`` is a mutable ownership mirror (remap
    # must never touch the caller's Distribution).  Failure tokens are
    # ``f8 + k`` for the k-th entry of ``injector.gpu_failures``.
    e_attempt = [0] * nnz if (delivery_faulty or link_faulty) else None
    done_l = [False] * n
    dead: set = set()
    f8 = m8 + (nnz << 2)
    gpu_np = gpu_of.copy() if failure_mode else gpu_of
    fail_gpu = [g for _t, g in injector.gpu_failures] if failure_mode else []

    # Pooled resources: warp-slot rows first (rid == PE rank), then one
    # link row per directed PE pair that carries at least one edge.
    bank = ResourceBank()
    for g in range(n_gpus):
        bank.add(f"gpu{g}.warps", gpu_spec.warp_slots)
    pair_rid = np.full(n_gpus * n_gpus, -1, dtype=np.int64)
    pair_wire = np.zeros(n_gpus * n_gpus)
    cross_pairs = np.unique(src_g_e[~local_e] * n_gpus + dst_g_e[~local_e])
    for p in cross_pairs.tolist():
        src_pe, dst_pe = p // n_gpus, p % n_gpus
        ga, gb = int(phys[src_pe]), int(phys[dst_pe])
        capacity = max(int(topo.link_count[ga, gb]), 1) * (
            MESSAGES_IN_FLIGHT_PER_LINK
        )
        pair_rid[p] = bank.add(f"link{src_pe}->{dst_pe}", capacity)
        pair_wire[p] = 8.0 / topo.peer_bandwidth(ga, gb)
    elink_l = np.where(
        local_e, -1, pair_rid[src_g_e * n_gpus + dst_g_e]
    ).tolist()
    ewire_l = np.where(
        local_e, 0.0, pair_wire[src_g_e * n_gpus + dst_g_e]
    ).tolist()

    um: UnifiedMemory | None = None
    s_left = s_indeg = None
    um_access = None
    phys_l = None
    if unified:
        um = UnifiedMemory(machine.um, machine.topology)
        s_left = um.malloc_managed("s.left_sum", n)
        s_indeg = um.malloc_managed("s.in_degree", n, dtype=np.int64)
        um_access = um.access
        phys_l = [int(p) for p in phys]

    # ----------------------------------------------------------------
    # Inline FIFO calendar: ingest the initial dispatch front.
    # ----------------------------------------------------------------
    task_of = dist.task_of()
    launch = (
        np.arange(dist.n_tasks, dtype=np.float64) * gpu_spec.t_kernel_launch
    )
    spawn_times = launch[task_of]
    order = np.argsort(spawn_times, kind="stable")
    codes_sorted = (order.astype(np.int64) << 3).tolist()  # state _S_ACQUIRE
    uniq, starts = np.unique(spawn_times[order], return_index=True)
    theap = uniq.tolist()  # ascending ⇒ already a valid heap
    bounds = starts.tolist()
    bounds.append(n)
    buckets = {
        t: codes_sorted[bounds[j] : bounds[j + 1]]
        for j, t in enumerate(theap)
    }
    if failure_mode:
        # Failure tokens join the calendar *after* the dispatch front but
        # before any runtime append, matching the reference engine's
        # spawn order (components first, then failure processes) so
        # timestamp ties resolve identically.
        for k, (t_fail, _g) in enumerate(injector.gpu_failures):
            tf = float(t_fail)
            bl = buckets.get(tf)
            if bl is None:
                buckets[tf] = [f8 + k]
                heappush(theap, tf)
            else:
                bl.append(f8 + k)

    # ----------------------------------------------------------------
    # Flat process state.
    # ----------------------------------------------------------------
    parked_ready = [False] * n
    x_l = [0.0] * n
    left_sum = [0.0] * n

    trace = Trace(enabled=trace_enabled)
    emit = trace.emit if trace_enabled else None
    c_dispatch = c_solve = c_release = c_fault = c_xb = c_xe = 0
    c_inject = c_retry = c_recov = c_lost = c_gfail = c_remap = 0

    nevents = 0
    now = 0.0
    t_disp = gpu_spec.t_warp_dispatch

    # Hot-loop locals: the resource bank's parallel lists are hoisted so
    # grant/hand-over run as plain list ops (stats included, matching
    # ResourceBank.try_acquire/release).
    r_cap = bank.capacity
    r_used = bank.in_use
    r_tot = bank.total_acquisitions
    r_peak = bank.peak_in_use
    r_q = bank._queues
    bget = buckets.get

    # The playout only appends into long-lived lists; cyclic-GC passes
    # over the calendar buckets are pure overhead, so the collector is
    # paused for the drain (restored even when the run raises).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while theap:
            t = heappop(theap)
            if nevents >= max_events and t > now:
                raise SimulationError(
                    f"event budget {max_events} exhausted (livelock?)"
                )
            if watchdog is not None and t > now:
                watchdog.check(t)
            now = t
            cur = buckets.pop(t)
            # Appends during iteration are visited: a list iterator
            # re-checks the length every step, so same-time events
            # pushed while draining still run within this bucket.
            for code in cur:
                if code < 0:
                    # -------------------- update delivery (hottest)
                    e = -1 - code
                    contrib = e_contrib[e]
                    if delivery_faulty:
                        att = e_attempt[e]
                        fate = injector.delivery_fate(e, att)
                        if fate is not None:
                            kind = fate[0]
                            if emit is not None:
                                emit(
                                    now, "inject", gpu=dstg_l[e],
                                    detail=(kind, e, att),
                                )
                            else:
                                c_inject += 1
                            if kind == FATE_DELAY:
                                e_attempt[e] = att + 1
                                t2 = now + fate[1]
                                if t2 > now:
                                    b2 = bget(t2)
                                    if b2 is None:
                                        buckets[t2] = [code]
                                        heappush(theap, t2)
                                    else:
                                        b2.append(code)
                                else:
                                    cur.append(code)
                                continue
                            if kind == FATE_CORRUPT and (
                                recovery is None
                                or not recovery.detect_corruption
                            ):
                                # No checksum: flipped value lands below.
                                contrib = flip_mantissa_bit(contrib, fate[1])
                                e_attempt[e] = att + 1
                            else:
                                # Detected loss: drop, or checksummed
                                # corruption — re-send or starve loudly.
                                dst = idx_l[e]
                                if recovery is None or not recovery.retry:
                                    if emit is not None:
                                        emit(
                                            now, "msg_lost", gpu=dstg_l[e],
                                            detail=(e, dst),
                                        )
                                    else:
                                        c_lost += 1
                                    continue
                                if att >= recovery.max_retries:
                                    raise RecoveryExhaustedError(
                                        f"delivery on edge {e} to component "
                                        f"{dst} still failing after "
                                        f"{att + 1} attempts",
                                        context={
                                            "edge": int(e),
                                            "dst": int(dst),
                                            "attempts": att + 1,
                                        },
                                    )
                                backoff = recovery.retry_delay(att)
                                if emit is not None:
                                    emit(
                                        now, "retry", gpu=srcg_l[e],
                                        detail=(e, att, backoff),
                                    )
                                else:
                                    c_retry += 1
                                e_attempt[e] = att + 1
                                # Re-send: the spawn-class token re-pays
                                # the link + wire (cross) or the local
                                # hop, exactly like the reference
                                # notifier's outer loop.
                                ncode = spawn_code_l[e]
                                t2 = now + backoff
                                if t2 > now:
                                    b2 = bget(t2)
                                    if b2 is None:
                                        buckets[t2] = [ncode]
                                        heappush(theap, t2)
                                    else:
                                        b2.append(ncode)
                                else:
                                    cur.append(ncode)
                                continue
                        elif att:
                            if emit is not None:
                                emit(
                                    now, "recovered", gpu=dstg_l[e],
                                    detail=(e, att),
                                )
                            else:
                                c_recov += 1
                    dst = idx_l[e]
                    left_sum[dst] += contrib
                    rem = remaining[dst] - 1
                    remaining[dst] = rem
                    if rem == 0 and parked_ready[dst]:
                        parked_ready[dst] = False
                        cur.append((dst << 3) | 2)  # resume at GATHER
                    continue
                if code >= n8:
                    if code < m8:
                        # ---------------- local edge: one delay hop
                        e = code - n8
                        t2 = now + e_delay[e]
                        ncode = -1 - e
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    if code >= f8:
                        # ------------------------ GPU fail-stop event
                        g = fail_gpu[code - f8]
                        dead.add(g)
                        if emit is not None:
                            emit(now, "gpu_fail", gpu=g, detail=g)
                        else:
                            c_gfail += 1
                        victims = [
                            i
                            for i in range(n)
                            if g_l[i] == g and not done_l[i]
                        ]
                        # Wake-and-kill everything parked, in the
                        # reference engine's order: ready-channel waiters
                        # (ascending victim), then the warp-slot queue
                        # (FIFO).  Each wake is one tombstone event.
                        for i in victims:
                            if parked_ready[i]:
                                parked_ready[i] = False
                                cur.append((i << 3) | _S_DEAD)
                        q = r_q[g]
                        while q:
                            cur.append((q.popleft() & -8) | _S_DEAD)
                        if not victims:
                            continue
                        # Cancel pending component steps in place: the
                        # tombstone keeps the original (time, seq) slot,
                        # so the stale wake costs one event at the same
                        # timestamp as the reference generator's exit.
                        vic = set(victims)
                        for blist in buckets.values():
                            for j, c0 in enumerate(blist):
                                if 0 <= c0 < n8 and (c0 >> 3) in vic:
                                    blist[j] = (c0 & -8) | _S_DEAD
                        for j, c0 in enumerate(cur):
                            if 0 <= c0 < n8 and (c0 >> 3) in vic:
                                cur[j] = (c0 & -8) | _S_DEAD
                        if recovery is not None and recovery.remap_on_failure:
                            targets = remap_failed_components(
                                gpu_np, victims, g, n_gpus, dead
                            )
                            t_klaunch = gpu_spec.t_kernel_launch
                            for kk, i in enumerate(victims):
                                ng = int(targets[kk])
                                g_l[i] = ng
                                gpu_np[i] = ng
                                if emit is not None:
                                    emit(now, "remap", gpu=ng, detail=(i, g))
                                else:
                                    c_remap += 1
                                t2 = now + (
                                    recovery.detect_latency + kk * t_klaunch
                                )
                                ncode = i << 3  # fresh _S_ACQUIRE
                                if t2 > now:
                                    b2 = bget(t2)
                                    if b2 is None:
                                        buckets[t2] = [ncode]
                                        heappush(theap, t2)
                                    else:
                                        b2.append(ncode)
                                else:
                                    cur.append(ncode)
                            # Refresh per-edge routing for every edge
                            # whose source has not solved yet (its
                            # fan-out has not spawned, so the reference
                            # engine will read the remapped ownership).
                            # In-flight edges keep their frozen tables —
                            # matching the reference notifier's
                            # spawn-time endpoint capture.
                            done_np = np.fromiter(
                                done_l, dtype=bool, count=n
                            )
                            upd = np.nonzero(~done_np[col_of])[0]
                            if len(upd):
                                se = gpu_np[col_of[upd]]
                                de = gpu_np[lower.indices[upd]]
                                loc = se == de
                                new_pairs = np.unique(
                                    se[~loc] * n_gpus + de[~loc]
                                )
                                for p in new_pairs.tolist():
                                    if pair_rid[p] < 0:
                                        sp, dp = p // n_gpus, p % n_gpus
                                        ga = int(phys[sp])
                                        gb = int(phys[dp])
                                        cap = max(
                                            int(topo.link_count[ga, gb]), 1
                                        ) * MESSAGES_IN_FLIGHT_PER_LINK
                                        pair_rid[p] = bank.add(
                                            f"link{sp}->{dp}", cap
                                        )
                                        pair_wire[p] = (
                                            8.0 / topo.peer_bandwidth(ga, gb)
                                        )
                                eu = upd.tolist()
                                se_t = se.tolist()
                                de_t = de.tolist()
                                loc_t = loc.tolist()
                                for jj, ee in enumerate(eu):
                                    sg = se_t[jj]
                                    dg = de_t[jj]
                                    srcg_l[ee] = sg
                                    dstg_l[ee] = dg
                                    if loc_t[jj]:
                                        elink_l[ee] = -1
                                        ewire_l[ee] = 0.0
                                        spawn_code_l[ee] = n8 + ee
                                        if inc_l is not None:
                                            inc_l[ee] = update_local
                                            dl_l[ee] = 0.0
                                    else:
                                        pp = sg * n_gpus + dg
                                        elink_l[ee] = int(pair_rid[pp])
                                        ewire_l[ee] = float(pair_wire[pp])
                                        spawn_code_l[ee] = m8 + (ee << 2)
                                        if inc_l is not None:
                                            inc_l[ee] = float(
                                                costs.update_remote[sg, dg]
                                            )
                                            dl_l[ee] = notify_l[sg][dg]
                        continue
                    # -------------------- cross-GPU transfer steps
                    c = code - m8
                    st = c & 3
                    e = c >> 2
                    if st == _R_XFEREND:
                        if emit is not None:
                            emit(
                                now,
                                "xfer_end",
                                gpu=srcg_l[e],
                                detail=(srcg_l[e], dstg_l[e], idx_l[e]),
                            )
                        else:
                            c_xe += 1
                        link = elink_l[e]
                        q = r_q[link]
                        if q:
                            r_tot[link] += 1
                            cur.append(q.popleft())
                        else:
                            r_used[link] -= 1
                        t2 = now + e_delay[e]
                        ncode = -1 - e
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    if st == _R_START:
                        link = elink_l[e]
                        q = r_q[link]
                        if q or r_used[link] >= r_cap[link]:
                            q.append(code + 1)  # park; resume at XFER
                            continue
                        u = r_used[link] + 1
                        r_used[link] = u
                        r_tot[link] += 1
                        if u > r_peak[link]:
                            r_peak[link] = u
                    # _R_XFER (granted inline above, or woken parked)
                    if emit is not None:
                        emit(
                            now,
                            "xfer_begin",
                            gpu=srcg_l[e],
                            detail=(srcg_l[e], dstg_l[e], idx_l[e]),
                        )
                    else:
                        c_xb += 1
                    wire = ewire_l[e]
                    if link_faulty:
                        wire, wtag = injector.wire_time(
                            srcg_l[e], dstg_l[e], now, wire
                        )
                        if wtag is not None:
                            if emit is not None:
                                emit(
                                    now, "inject", gpu=srcg_l[e],
                                    detail=(wtag, e, e_attempt[e]),
                                )
                            else:
                                c_inject += 1
                    t2 = now + wire
                    ncode = code - st + _R_XFEREND
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [ncode]
                            heappush(theap, t2)
                        else:
                            b2.append(ncode)
                    else:
                        cur.append(ncode)
                    continue

                # ---------------------------------------- component
                i = code >> 3
                st = code & 7
                if st == _S_GATHER:
                    if remaining[i] > 0:
                        # Unsatisfied dependencies at the post-dispatch
                        # check: park on the readiness flag; the closing
                        # update delivery re-schedules this same state.
                        parked_ready[i] = True
                        continue
                    gather = gather_l[i]
                    if unified and in_counts_l[i]:
                        cost, _ = um_access(
                            phys_l[g_l[i]], s_indeg, i, sharers=n_gpus
                        )
                        gather += cost
                    if gather > 0.0:
                        t2 = now + gather
                        ncode = (code & -8) | _S_SOLVE
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    st = _S_SOLVE  # zero gather: solve in this event
                if st == _S_SOLVE:
                    s_cost = solve_l[i]
                    if straggler_faulty:
                        s_cost = injector.solve_scale(g_l[i], now, s_cost)
                    t2 = now + s_cost
                    ncode = (code & -8) | _S_POST
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [ncode]
                            heappush(theap, t2)
                        else:
                            b2.append(ncode)
                    else:
                        cur.append(ncode)
                    continue
                if st == _S_POST:
                    lo = indptr_l[i]
                    hi = indptr_l[i + 1]
                    xi = (b_l[i] - left_sum[i]) / data_l[lo]
                    x_l[i] = xi
                    done_l[i] = True
                    g = g_l[i]
                    if emit is not None:
                        emit(now, "solve", gpu=g, detail=i)
                    else:
                        c_solve += 1
                    if watchdog is not None:
                        watchdog.progress(now, i)
                    uc = 0.0
                    if not unified:
                        for e in range(lo + 1, hi):
                            uc += inc_l[e]
                            e_contrib[e] = data_l[e] * xi
                            e_delay[e] = uc + dl_l[e]
                    else:
                        for e in range(lo + 1, hi):
                            dg = dstg_l[e]
                            if dg == g:
                                uc += update_local
                                e_delay[e] = uc
                            else:
                                cost, faulted = um_access(
                                    phys_l[g], s_left, idx_l[e],
                                    sharers=n_gpus,
                                )
                                uc += cost
                                if faulted:
                                    if emit is not None:
                                        emit(
                                            now, "fault",
                                            gpu=g, detail=idx_l[e],
                                        )
                                    else:
                                        c_fault += 1
                                e_delay[e] = uc + notify_l[g][dg]
                            e_contrib[e] = data_l[e] * xi
                    if hi > lo + 1:
                        # Spawn the whole fan-out at once: the start
                        # hops all land at ``now`` in edge order (the
                        # reference spawns them in the same order
                        # within this same event).
                        cur.extend(spawn_code_l[lo + 1 : hi])
                    if uc > 0.0:
                        t2 = now + uc
                        ncode = (code & -8) | _S_RELEASE
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    st = _S_RELEASE  # zero update cost: retire now
                if st == _S_RELEASE:
                    g = g_l[i]
                    if emit is not None:
                        emit(now, "release", gpu=g, detail=i)
                    else:
                        c_release += 1
                    q = r_q[g]
                    if q:
                        r_tot[g] += 1
                        cur.append(q.popleft())
                    else:
                        r_used[g] -= 1
                    continue
                if st == _S_DEAD:
                    # Tombstone: a cancelled step burning its one event.
                    continue
                # _S_ACQUIRE / _S_DISPATCH
                g = g_l[i]
                if st == _S_ACQUIRE:
                    q = r_q[g]
                    if q or r_used[g] >= r_cap[g]:
                        q.append(code | _S_DISPATCH)  # park; grant later
                        continue
                    u = r_used[g] + 1
                    r_used[g] = u
                    r_tot[g] += 1
                    if u > r_peak[g]:
                        r_peak[g] = u
                if emit is not None:
                    emit(now, "dispatch", gpu=g, detail=i)
                else:
                    c_dispatch += 1
                t2 = now + t_disp
                ncode = (code & -8) | _S_GATHER
                if t2 > now:
                    b2 = bget(t2)
                    if b2 is None:
                        buckets[t2] = [ncode]
                        heappush(theap, t2)
                    else:
                        b2.append(ncode)
                else:
                    cur.append(ncode)
            nevents += len(cur)
    finally:
        if gc_was_enabled:
            gc.enable()

    if any(remaining):
        stuck: dict = {
            repr(("ready", i)): 1 for i in range(n) if parked_ready[i]
        }
        for rid, q in enumerate(r_q):
            if q:
                stuck[bank.names[rid]] = len(q)
        if stuck:
            raise DeadlockError(
                f"deadlock: {sum(stuck.values())} waiters with empty "
                f"event calendar; waiters per channel: {stuck}",
                blocked=stuck,
                diagnostics={
                    "now": now,
                    "events_processed": nevents,
                    "unsatisfied": sum(1 for r in remaining if r),
                },
            )
        raise SolverError("DES run finished with unsatisfied dependencies")
    if emit is None:
        trace.bulk_count("dispatch", c_dispatch)
        trace.bulk_count("solve", c_solve)
        trace.bulk_count("release", c_release)
        trace.bulk_count("fault", c_fault)
        trace.bulk_count("xfer_begin", c_xb)
        trace.bulk_count("xfer_end", c_xe)
        trace.bulk_count("inject", c_inject)
        trace.bulk_count("retry", c_retry)
        trace.bulk_count("recovered", c_recov)
        trace.bulk_count("msg_lost", c_lost)
        trace.bulk_count("gpu_fail", c_gfail)
        trace.bulk_count("remap", c_remap)

    x = np.asarray(x_l, dtype=np.float64)
    return (
        x,
        now,
        trace,
        um.fault_count if um is not None else 0,
        nevents,
    )
