"""Array-based DES fast path: the event-granular playout without generators.

This module is the *compiling interpreter* of the shared execution
protocol in :mod:`repro.engine.protocol`: at build time it compiles the
protocol's lifecycle tables, token layout, and timing rules into flat
integer/float arrays, then drains them with a branchy hot loop — the
same components, notifiers, warp slots, link channels, and
unified-memory page table as the reference engine
(:func:`repro.solvers.des_solver.des_execute`, which *walks* the same
tables with generator objects), as a flat state machine instead of one
Python generator per process:

* **exact-time event calendar** — pending events live in FIFO buckets
  keyed by timestamp (the inline form of
  :class:`repro.engine.calendar.CalendarQueue`'s ``"fifo"`` mode): a
  dict maps each distinct time to a list of integer tokens and a small
  heap orders the distinct times.  The initial dispatch front (one
  spawn per component, launch times known upfront) is bucketed with one
  vectorised stable argsort, and every zero-delay event — waiter
  hand-overs, readiness wakes, notifier spawns — is a plain
  ``list.append`` into the bucket being drained;
* **warp-batch state machines** — events are integer tokens, classed by
  range so the hottest kinds decode cheapest: ``-1 - e`` is edge ``e``'s
  *update* delivery, ``(i << 3) | state`` a component step,
  ``n*8 + e`` a local edge's start hop, and ``n*8 + nnz + (e << 2 |
  state)`` a cross-GPU transfer step.  All per-warp and per-edge costs
  (gather, solve, update increments, notify latencies, link rows, wire
  times) are precomputed in vectorised NumPy passes and indexed straight
  off the token, so one engine tick is an integer compare plus a handful
  of float adds;
* **pooled resources** — every warp-slot pool and link channel is a row
  in one :class:`~repro.engine.resources.ResourceBank`; the hot loop
  hoists the bank's parallel lists into locals and runs the
  grant/hand-over protocol inline.

Bit-equality contract
---------------------
The array engine must be *indistinguishable* from the reference engine:
identical trace streams (``dispatch``/``solve``/``release``/``fault``/
``xfer_begin``/``xfer_end`` records, bit-equal times, same order),
identical solution vectors, identical total time, page-fault and event
counts.  Two invariants carry the proof:

1. *FIFO-bucket order is ``(time, seq)`` order.*  The reference engine
   breaks timestamp ties with a monotone sequence number assigned at
   schedule time, and every schedule lands at ``time >= now``.  A token
   appended to a bucket therefore always carries a larger sequence
   number than every token already in it — insertion order within an
   exact timestamp reproduces the reference heap's pop order without
   materialising sequence numbers.
2. *Identical IEEE-754 operation chains.*  Every event time and value
   is produced by the same sequence of binary64 operations the
   reference generators execute (NumPy float64 and Python floats share
   binary64 semantics), so times collide exactly where the reference
   ties and differ exactly where it doesn't.

``tests/test_des_array.py`` enforces the contract over every workload
generator; the causality checker replays the traces against machine
physics.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.protocol import (
    ACT_CORRUPT,
    ACT_DELAY,
    ACT_EXHAUSTED,
    ACT_STARVE,
    COMP_ACQUIRE,
    COMP_DEAD,
    COMP_DISPATCH,
    COMP_GATHER,
    COMP_POST,
    COMP_RELEASE,
    COMP_SHIFT,
    COMP_SOLVE,
    TRACE_DISPATCH,
    TRACE_FAULT,
    TRACE_GPU_FAIL,
    TRACE_INJECT,
    TRACE_MSG_LOST,
    TRACE_RECOVERED,
    TRACE_RELEASE,
    TRACE_REMAP,
    TRACE_RETRY,
    TRACE_SOLVE,
    TRACE_STALE_LAUNCH,
    TRACE_XFER_BEGIN,
    TRACE_XFER_END,
    XFER_CLAIM,
    XFER_RETIRE,
    XFER_SHIFT,
    TokenLayout,
    delivery_action,
    design_hooks,
    edge_cost_tables,
    exhausted_delivery,
    failure_victims,
    frontier_diagnostics,
    gather_cost_table,
    launch_times,
    link_capacity,
    remap_plan,
    solve_cost_table,
    validate_diagonals,
    wake_threshold,
    wire_time,
)
from repro.engine.resources import ResourceBank
from repro.engine.trace import Trace
from repro.errors import DeadlockError, SimulationError, SolverError
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig
from repro.machine.unified import UnifiedMemory
from repro.resilience.faults import flip_mantissa_bit
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = ["execute_array", "ARRAY_MIN_COMPONENTS"]

#: Below this size ``engine="auto"`` keeps the reference engine: the
#: vectorised precompute passes cost more than the generator overhead
#: they remove.
ARRAY_MIN_COMPONENTS = 64


def execute_array(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design,
    *,
    dag: DependencyDag,
    costs: CommCosts,
    trace_enabled: bool = True,
    max_events: int = 50_000_000,
    injector=None,
    recovery=None,
    watchdog=None,
    stale=None,
) -> tuple[np.ndarray, float, Trace, int, int]:
    """Play out one event-granular SpTRSV on the array engine.

    Returns ``(x, total_time, trace, page_faults, events)`` — the exact
    fields of :class:`~repro.solvers.des_solver.DesExecution`, produced
    bit-identically to the reference engine.

    ``injector``/``recovery``/``watchdog`` mirror the reference engine's
    resilience hooks (see :func:`repro.solvers.des_solver.des_execute`);
    with a null/absent plan every instrumented branch is dead and the
    playout is bit-identical to the un-instrumented engine.
    """
    from repro.solvers.des_solver import MESSAGES_IN_FLIGHT_PER_LINK

    n = lower.shape[0]
    n_gpus = machine.n_gpus
    gpu_spec = machine.gpu
    unified = design_hooks(design).page_table
    # Stale-sync: the ready park releases once at most ``wake_at``
    # contributions are missing (0 = fully synchronous); the caller
    # (``des_execute``) owns the post-hoc validation pass.
    wake_at = wake_threshold(stale)
    topo = machine.topology
    phys = machine.active_gpus

    faulty = injector is not None and injector.active
    link_faulty = faulty and injector.has_link_faults
    delivery_faulty = faulty and injector.has_delivery_faults
    straggler_faulty = faulty and injector.has_stragglers
    failure_mode = faulty and injector.has_gpu_failures

    # ----------------------------------------------------------------
    # Vectorised precompute: per-warp and per-edge cost tables.
    # ----------------------------------------------------------------
    indptr = lower.indptr
    gpu_of = dist.gpu_of
    in_counts = np.diff(dag.in_ptr)
    col_nnz = np.diff(indptr)
    nnz = int(indptr[-1])

    # The reference engine discovers a missing diagonal when the solve
    # front reaches the column; with the whole structure in hand the
    # array engine can reject it upfront (identical error either way).
    validate_diagonals(indptr, lower.indices, n)

    indptr_l = indptr.tolist()
    idx_l = lower.indices.tolist()
    data_l = lower.data.tolist()
    g_l = gpu_of.tolist()
    b_l = np.asarray(b, dtype=np.float64).tolist()
    remaining = dag.in_degree.tolist()
    in_counts_l = in_counts.tolist()
    gather_l = gather_cost_table(costs.gather, in_counts).tolist()
    solve_l = solve_cost_table(gpu_spec.t_per_nnz, col_nnz, in_counts).tolist()

    # Per-entry edge tables, aligned with ``indices``/``data`` (the
    # diagonal slots carry unused values; the update loop starts past
    # them).
    col_of = np.repeat(np.arange(n, dtype=np.int64), col_nnz)
    src_g_e = gpu_of[col_of]
    dst_g_e = gpu_of[lower.indices]
    local_e = src_g_e == dst_g_e
    srcg_l = src_g_e.tolist()
    dstg_l = dst_g_e.tolist()
    if not unified:
        inc_e, dl_e = edge_cost_tables(costs, src_g_e, dst_g_e, local_e)
        inc_l = inc_e.tolist()
        dl_l = dl_e.tolist()
    else:
        inc_l = dl_l = None
    notify_l = costs.notify.tolist()
    update_local = costs.update_local

    # One notifier per matrix entry, its runtime fields (contribution
    # value, post-transfer delay) written at solve time.  The spawn
    # token already encodes the edge's class — local hop or cross-GPU
    # transfer — so a component's whole update fan-out is ingested with
    # a single slice-extend.  The protocol's TokenLayout fixes the
    # ranges; its bases and shifts are hoisted into locals for the hot
    # loop (the literal shift/mask constants below are the compiled form
    # of COMP_SHIFT=3 / XFER_SHIFT=2, pinned by tests/test_protocol_parity).
    layout = TokenLayout.for_system(n, nnz)
    n8 = layout.local_base
    m8 = layout.xfer_base
    spawn_code_l = layout.spawn_codes(local_e).tolist()
    e_contrib = [0.0] * nnz
    e_delay = [0.0] * nnz

    # Resilience state.  ``e_attempt`` counts delivery attempts per edge
    # (the injector's fate tables and the retry backoff are keyed on it);
    # ``done_l`` marks solved components (a GPU failure only cancels
    # unsolved ones); ``gpu_np`` is a mutable ownership mirror (remap
    # must never touch the caller's Distribution).  Failure tokens are
    # ``f8 + k`` for the k-th entry of ``injector.gpu_failures``.
    e_attempt = [0] * nnz if (delivery_faulty or link_faulty) else None
    done_l = [False] * n
    dead: set = set()
    f8 = layout.failure_base
    gpu_np = gpu_of.copy() if failure_mode else gpu_of
    fail_gpu = [g for _t, g in injector.gpu_failures] if failure_mode else []

    # Pooled resources: warp-slot rows first (rid == PE rank), then one
    # link row per directed PE pair that carries at least one edge.
    bank = ResourceBank()
    for g in range(n_gpus):
        bank.add(f"gpu{g}.warps", gpu_spec.warp_slots)
    pair_rid = np.full(n_gpus * n_gpus, -1, dtype=np.int64)
    pair_wire = np.zeros(n_gpus * n_gpus)
    cross_pairs = np.unique(src_g_e[~local_e] * n_gpus + dst_g_e[~local_e])
    for p in cross_pairs.tolist():
        src_pe, dst_pe = p // n_gpus, p % n_gpus
        ga, gb = int(phys[src_pe]), int(phys[dst_pe])
        capacity = link_capacity(topo, ga, gb, MESSAGES_IN_FLIGHT_PER_LINK)
        pair_rid[p] = bank.add(f"link{src_pe}->{dst_pe}", capacity)
        pair_wire[p] = wire_time(topo, ga, gb)
    elink_l = np.where(
        local_e, -1, pair_rid[src_g_e * n_gpus + dst_g_e]
    ).tolist()
    ewire_l = np.where(
        local_e, 0.0, pair_wire[src_g_e * n_gpus + dst_g_e]
    ).tolist()

    um: UnifiedMemory | None = None
    s_left = s_indeg = None
    um_access = None
    phys_l = None
    if unified:
        um = UnifiedMemory(machine.um, machine.topology)
        s_left = um.malloc_managed("s.left_sum", n)
        s_indeg = um.malloc_managed("s.in_degree", n, dtype=np.int64)
        um_access = um.access
        phys_l = [int(p) for p in phys]

    # ----------------------------------------------------------------
    # Inline FIFO calendar: ingest the initial dispatch front.
    # ----------------------------------------------------------------
    task_of = dist.task_of()
    launch = launch_times(dist.n_tasks, gpu_spec.t_kernel_launch)
    spawn_times = launch[task_of]
    order = np.argsort(spawn_times, kind="stable")
    # State COMP_ACQUIRE (= 0): the shift alone encodes the token.
    codes_sorted = (order.astype(np.int64) << COMP_SHIFT).tolist()
    uniq, starts = np.unique(spawn_times[order], return_index=True)
    theap = uniq.tolist()  # ascending ⇒ already a valid heap
    bounds = starts.tolist()
    bounds.append(n)
    buckets = {
        t: codes_sorted[bounds[j] : bounds[j + 1]]
        for j, t in enumerate(theap)
    }
    if failure_mode:
        # Failure tokens join the calendar *after* the dispatch front but
        # before any runtime append, matching the reference engine's
        # spawn order (components first, then failure processes) so
        # timestamp ties resolve identically.
        for k, (t_fail, _g) in enumerate(injector.gpu_failures):
            tf = float(t_fail)
            bl = buckets.get(tf)
            if bl is None:
                buckets[tf] = [f8 + k]
                heappush(theap, tf)
            else:
                bl.append(f8 + k)

    # ----------------------------------------------------------------
    # Flat process state.
    # ----------------------------------------------------------------
    parked_ready = [False] * n
    x_l = [0.0] * n
    left_sum = [0.0] * n

    trace = Trace(enabled=trace_enabled)
    emit = trace.emit if trace_enabled else None
    c_dispatch = c_solve = c_release = c_fault = c_xb = c_xe = 0
    c_inject = c_retry = c_recov = c_lost = c_gfail = c_remap = 0
    c_stale = 0

    nevents = 0
    now = 0.0
    t_disp = gpu_spec.t_warp_dispatch

    # Hot-loop locals: the resource bank's parallel lists are hoisted so
    # grant/hand-over run as plain list ops (stats included, matching
    # ResourceBank.try_acquire/release).
    r_cap = bank.capacity
    r_used = bank.in_use
    r_tot = bank.total_acquisitions
    r_peak = bank.peak_in_use
    r_q = bank._queues
    bget = buckets.get

    # The playout only appends into long-lived lists; cyclic-GC passes
    # over the calendar buckets are pure overhead, so the collector is
    # paused for the drain (restored even when the run raises).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while theap:
            t = heappop(theap)
            if nevents >= max_events and t > now:
                raise SimulationError(
                    f"event budget {max_events} exhausted (livelock?)"
                )
            if watchdog is not None and t > now:
                watchdog.check(t)
            now = t
            cur = buckets.pop(t)
            # Appends during iteration are visited: a list iterator
            # re-checks the length every step, so same-time events
            # pushed while draining still run within this bucket.
            for code in cur:
                if code < 0:
                    # -------------------- update delivery (hottest)
                    e = -1 - code
                    contrib = e_contrib[e]
                    if delivery_faulty:
                        att = e_attempt[e]
                        fate = injector.delivery_fate(e, att)
                        if fate is not None:
                            # The protocol's decision tree resolves the
                            # fate; this block only carries out the
                            # verdict with token bookkeeping.
                            verdict, arg = delivery_action(
                                fate, att, recovery
                            )
                            if emit is not None:
                                emit(
                                    now, TRACE_INJECT, gpu=dstg_l[e],
                                    detail=(fate[0], e, att),
                                )
                            else:
                                c_inject += 1
                            if verdict == ACT_DELAY:
                                e_attempt[e] = att + 1
                                t2 = now + arg
                                if t2 > now:
                                    b2 = bget(t2)
                                    if b2 is None:
                                        buckets[t2] = [code]
                                        heappush(theap, t2)
                                    else:
                                        b2.append(code)
                                else:
                                    cur.append(code)
                                continue
                            if verdict == ACT_CORRUPT:
                                # No checksum: flipped value lands below.
                                contrib = flip_mantissa_bit(contrib, arg)
                                e_attempt[e] = att + 1
                            elif verdict == ACT_STARVE:
                                if emit is not None:
                                    emit(
                                        now, TRACE_MSG_LOST, gpu=dstg_l[e],
                                        detail=(e, idx_l[e]),
                                    )
                                else:
                                    c_lost += 1
                                continue
                            elif verdict == ACT_EXHAUSTED:
                                raise exhausted_delivery(
                                    e, idx_l[e], att + 1
                                )
                            else:  # ACT_RETRY
                                if emit is not None:
                                    emit(
                                        now, TRACE_RETRY, gpu=srcg_l[e],
                                        detail=(e, att, arg),
                                    )
                                else:
                                    c_retry += 1
                                e_attempt[e] = att + 1
                                # Re-send: the spawn-class token re-pays
                                # the link + wire (cross) or the local
                                # hop, exactly like the reference
                                # notifier's outer loop.
                                ncode = spawn_code_l[e]
                                t2 = now + arg
                                if t2 > now:
                                    b2 = bget(t2)
                                    if b2 is None:
                                        buckets[t2] = [ncode]
                                        heappush(theap, t2)
                                    else:
                                        b2.append(ncode)
                                else:
                                    cur.append(ncode)
                                continue
                        elif att:
                            if emit is not None:
                                emit(
                                    now, TRACE_RECOVERED, gpu=dstg_l[e],
                                    detail=(e, att),
                                )
                            else:
                                c_recov += 1
                    dst = idx_l[e]
                    left_sum[dst] += contrib
                    rem = remaining[dst] - 1
                    remaining[dst] = rem
                    # The countdown crosses the wake threshold (0, or
                    # ``stale.k`` under stale-sync) exactly once.
                    if rem == wake_at and parked_ready[dst]:
                        parked_ready[dst] = False
                        # Resume the parked component at COMP_GATHER.
                        cur.append((dst << 3) | COMP_GATHER)
                    continue
                if code >= n8:
                    if code < m8:
                        # ---------------- local edge: one delay hop
                        e = code - n8
                        t2 = now + e_delay[e]
                        ncode = -1 - e
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    if code >= f8:
                        # ------------------------ GPU fail-stop event
                        g = fail_gpu[code - f8]
                        dead.add(g)
                        if emit is not None:
                            emit(now, TRACE_GPU_FAIL, gpu=g, detail=g)
                        else:
                            c_gfail += 1
                        victims = failure_victims(g_l, done_l, g, n)
                        # Wake-and-kill everything parked, in the
                        # reference engine's order: ready-channel waiters
                        # (ascending victim), then the warp-slot queue
                        # (FIFO).  Each wake is one tombstone event.
                        for i in victims:
                            if parked_ready[i]:
                                parked_ready[i] = False
                                cur.append((i << 3) | COMP_DEAD)
                        q = r_q[g]
                        while q:
                            cur.append((q.popleft() & -8) | COMP_DEAD)
                        if not victims:
                            continue
                        # Cancel pending component steps in place: the
                        # tombstone keeps the original (time, seq) slot,
                        # so the stale wake costs one event at the same
                        # timestamp as the reference generator's exit.
                        vic = set(victims)
                        for blist in buckets.values():
                            for j, c0 in enumerate(blist):
                                if 0 <= c0 < n8 and (c0 >> 3) in vic:
                                    blist[j] = (c0 & -8) | COMP_DEAD
                        for j, c0 in enumerate(cur):
                            if 0 <= c0 < n8 and (c0 >> 3) in vic:
                                cur[j] = (c0 & -8) | COMP_DEAD
                        if recovery is not None and recovery.remap_on_failure:
                            plan = remap_plan(
                                gpu_np, victims, g, n_gpus, dead,
                                recovery, gpu_spec.t_kernel_launch,
                            )
                            for i, ng, relaunch in plan:
                                g_l[i] = ng
                                gpu_np[i] = ng
                                if emit is not None:
                                    emit(
                                        now, TRACE_REMAP, gpu=ng,
                                        detail=(i, g),
                                    )
                                else:
                                    c_remap += 1
                                t2 = now + relaunch
                                ncode = i << 3  # fresh COMP_ACQUIRE
                                if t2 > now:
                                    b2 = bget(t2)
                                    if b2 is None:
                                        buckets[t2] = [ncode]
                                        heappush(theap, t2)
                                    else:
                                        b2.append(ncode)
                                else:
                                    cur.append(ncode)
                            # Refresh per-edge routing for every edge
                            # whose source has not solved yet (its
                            # fan-out has not spawned, so the reference
                            # engine will read the remapped ownership).
                            # In-flight edges keep their frozen tables —
                            # matching the reference notifier's
                            # spawn-time endpoint capture.
                            done_np = np.fromiter(
                                done_l, dtype=bool, count=n
                            )
                            upd = np.nonzero(~done_np[col_of])[0]
                            if len(upd):
                                se = gpu_np[col_of[upd]]
                                de = gpu_np[lower.indices[upd]]
                                loc = se == de
                                new_pairs = np.unique(
                                    se[~loc] * n_gpus + de[~loc]
                                )
                                for p in new_pairs.tolist():
                                    if pair_rid[p] < 0:
                                        sp, dp = p // n_gpus, p % n_gpus
                                        ga = int(phys[sp])
                                        gb = int(phys[dp])
                                        cap = link_capacity(
                                            topo, ga, gb,
                                            MESSAGES_IN_FLIGHT_PER_LINK,
                                        )
                                        pair_rid[p] = bank.add(
                                            f"link{sp}->{dp}", cap
                                        )
                                        pair_wire[p] = wire_time(topo, ga, gb)
                                eu = upd.tolist()
                                se_t = se.tolist()
                                de_t = de.tolist()
                                loc_t = loc.tolist()
                                for jj, ee in enumerate(eu):
                                    sg = se_t[jj]
                                    dg = de_t[jj]
                                    srcg_l[ee] = sg
                                    dstg_l[ee] = dg
                                    if loc_t[jj]:
                                        elink_l[ee] = -1
                                        ewire_l[ee] = 0.0
                                        spawn_code_l[ee] = n8 + ee
                                        if inc_l is not None:
                                            inc_l[ee] = update_local
                                            dl_l[ee] = 0.0
                                    else:
                                        pp = sg * n_gpus + dg
                                        elink_l[ee] = int(pair_rid[pp])
                                        ewire_l[ee] = float(pair_wire[pp])
                                        spawn_code_l[ee] = m8 + (ee << 2)
                                        if inc_l is not None:
                                            inc_l[ee] = float(
                                                costs.update_remote[sg, dg]
                                            )
                                            dl_l[ee] = notify_l[sg][dg]
                        continue
                    # -------------------- cross-GPU transfer steps
                    c = code - m8
                    st = c & 3
                    e = c >> 2
                    if st == XFER_RETIRE:
                        if emit is not None:
                            emit(
                                now,
                                TRACE_XFER_END,
                                gpu=srcg_l[e],
                                detail=(srcg_l[e], dstg_l[e], idx_l[e]),
                            )
                        else:
                            c_xe += 1
                        link = elink_l[e]
                        q = r_q[link]
                        if q:
                            r_tot[link] += 1
                            cur.append(q.popleft())
                        else:
                            r_used[link] -= 1
                        t2 = now + e_delay[e]
                        ncode = -1 - e
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    if st == XFER_CLAIM:
                        link = elink_l[e]
                        q = r_q[link]
                        if q or r_used[link] >= r_cap[link]:
                            q.append(code + 1)  # park; resume at WIRE
                            continue
                        u = r_used[link] + 1
                        r_used[link] = u
                        r_tot[link] += 1
                        if u > r_peak[link]:
                            r_peak[link] = u
                    # XFER_WIRE (granted inline above, or woken parked)
                    if emit is not None:
                        emit(
                            now,
                            TRACE_XFER_BEGIN,
                            gpu=srcg_l[e],
                            detail=(srcg_l[e], dstg_l[e], idx_l[e]),
                        )
                    else:
                        c_xb += 1
                    wire = ewire_l[e]
                    if link_faulty:
                        wire, wtag = injector.wire_time(
                            srcg_l[e], dstg_l[e], now, wire
                        )
                        if wtag is not None:
                            if emit is not None:
                                emit(
                                    now, TRACE_INJECT, gpu=srcg_l[e],
                                    detail=(wtag, e, e_attempt[e]),
                                )
                            else:
                                c_inject += 1
                    t2 = now + wire
                    ncode = code - st + XFER_RETIRE
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [ncode]
                            heappush(theap, t2)
                        else:
                            b2.append(ncode)
                    else:
                        cur.append(ncode)
                    continue

                # ---------------------------------------- component
                i = code >> 3
                st = code & 7
                if st == COMP_GATHER:
                    if remaining[i] > wake_at:
                        # Unsatisfied dependencies at the post-dispatch
                        # check: park on the readiness flag; the closing
                        # update delivery re-schedules this same state.
                        parked_ready[i] = True
                        continue
                    if wake_at and remaining[i] > 0:
                        # Bounded-stale launch: ``remaining`` re-read at
                        # the GATHER event (same (time, seq) slot as the
                        # reference engine's post-wake re-read), so the
                        # recorded missing count is bit-identical.
                        if emit is not None:
                            emit(
                                now, TRACE_STALE_LAUNCH, gpu=g_l[i],
                                detail=(i, remaining[i]),
                            )
                        else:
                            c_stale += 1
                    gather = gather_l[i]
                    if unified and in_counts_l[i]:
                        cost, _ = um_access(
                            phys_l[g_l[i]], s_indeg, i, sharers=n_gpus
                        )
                        gather += cost
                    if gather > 0.0:
                        t2 = now + gather
                        ncode = (code & -8) | COMP_SOLVE
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    st = COMP_SOLVE  # zero gather: solve in this event
                if st == COMP_SOLVE:
                    s_cost = solve_l[i]
                    if straggler_faulty:
                        s_cost = injector.solve_scale(g_l[i], now, s_cost)
                    t2 = now + s_cost
                    ncode = (code & -8) | COMP_POST
                    if t2 > now:
                        b2 = bget(t2)
                        if b2 is None:
                            buckets[t2] = [ncode]
                            heappush(theap, t2)
                        else:
                            b2.append(ncode)
                    else:
                        cur.append(ncode)
                    continue
                if st == COMP_POST:
                    lo = indptr_l[i]
                    hi = indptr_l[i + 1]
                    xi = (b_l[i] - left_sum[i]) / data_l[lo]
                    x_l[i] = xi
                    done_l[i] = True
                    g = g_l[i]
                    if emit is not None:
                        emit(now, TRACE_SOLVE, gpu=g, detail=i)
                    else:
                        c_solve += 1
                    if watchdog is not None:
                        watchdog.progress(now, i)
                    uc = 0.0
                    if not unified:
                        for e in range(lo + 1, hi):
                            uc += inc_l[e]
                            e_contrib[e] = data_l[e] * xi
                            e_delay[e] = uc + dl_l[e]
                    else:
                        for e in range(lo + 1, hi):
                            dg = dstg_l[e]
                            if dg == g:
                                uc += update_local
                                e_delay[e] = uc
                            else:
                                cost, faulted = um_access(
                                    phys_l[g], s_left, idx_l[e],
                                    sharers=n_gpus,
                                )
                                uc += cost
                                if faulted:
                                    if emit is not None:
                                        emit(
                                            now, TRACE_FAULT,
                                            gpu=g, detail=idx_l[e],
                                        )
                                    else:
                                        c_fault += 1
                                e_delay[e] = uc + notify_l[g][dg]
                            e_contrib[e] = data_l[e] * xi
                    if hi > lo + 1:
                        # Spawn the whole fan-out at once: the start
                        # hops all land at ``now`` in edge order (the
                        # reference spawns them in the same order
                        # within this same event).
                        cur.extend(spawn_code_l[lo + 1 : hi])
                    if uc > 0.0:
                        t2 = now + uc
                        ncode = (code & -8) | COMP_RELEASE
                        if t2 > now:
                            b2 = bget(t2)
                            if b2 is None:
                                buckets[t2] = [ncode]
                                heappush(theap, t2)
                            else:
                                b2.append(ncode)
                        else:
                            cur.append(ncode)
                        continue
                    st = COMP_RELEASE  # zero update cost: retire now
                if st == COMP_RELEASE:
                    g = g_l[i]
                    if emit is not None:
                        emit(now, TRACE_RELEASE, gpu=g, detail=i)
                    else:
                        c_release += 1
                    q = r_q[g]
                    if q:
                        r_tot[g] += 1
                        cur.append(q.popleft())
                    else:
                        r_used[g] -= 1
                    continue
                if st == COMP_DEAD:
                    # Tombstone: a cancelled step burning its one event.
                    continue
                # COMP_ACQUIRE / COMP_DISPATCH
                g = g_l[i]
                if st == COMP_ACQUIRE:
                    q = r_q[g]
                    if q or r_used[g] >= r_cap[g]:
                        q.append(code | COMP_DISPATCH)  # park; grant later
                        continue
                    u = r_used[g] + 1
                    r_used[g] = u
                    r_tot[g] += 1
                    if u > r_peak[g]:
                        r_peak[g] = u
                if emit is not None:
                    emit(now, TRACE_DISPATCH, gpu=g, detail=i)
                else:
                    c_dispatch += 1
                t2 = now + t_disp
                ncode = (code & -8) | COMP_GATHER
                if t2 > now:
                    b2 = bget(t2)
                    if b2 is None:
                        buckets[t2] = [ncode]
                        heappush(theap, t2)
                    else:
                        b2.append(ncode)
                else:
                    cur.append(ncode)
            nevents += len(cur)
    finally:
        if gc_was_enabled:
            gc.enable()

    if any(remaining):
        stuck: dict = {
            repr(("ready", i)): 1 for i in range(n) if parked_ready[i]
        }
        for rid, q in enumerate(r_q):
            if q:
                stuck[bank.names[rid]] = len(q)
        if stuck:
            diagnostics = {
                "now": now,
                "events_processed": nevents,
                "unsatisfied": sum(1 for r in remaining if r),
            }
            diagnostics.update(
                frontier_diagnostics(
                    [i for i in range(n) if parked_ready[i]], gpu_np
                )
            )
            raise DeadlockError(
                f"deadlock: {sum(stuck.values())} waiters with empty "
                f"event calendar; waiters per channel: {stuck}",
                blocked=stuck,
                diagnostics=diagnostics,
            )
        raise SolverError("DES run finished with unsatisfied dependencies")
    if emit is None:
        trace.bulk_count(TRACE_DISPATCH, c_dispatch)
        trace.bulk_count(TRACE_SOLVE, c_solve)
        trace.bulk_count(TRACE_RELEASE, c_release)
        trace.bulk_count(TRACE_FAULT, c_fault)
        trace.bulk_count(TRACE_XFER_BEGIN, c_xb)
        trace.bulk_count(TRACE_XFER_END, c_xe)
        trace.bulk_count(TRACE_INJECT, c_inject)
        trace.bulk_count(TRACE_RETRY, c_retry)
        trace.bulk_count(TRACE_RECOVERED, c_recov)
        trace.bulk_count(TRACE_MSG_LOST, c_lost)
        trace.bulk_count(TRACE_GPU_FAIL, c_gfail)
        trace.bulk_count(TRACE_REMAP, c_remap)
        trace.bulk_count(TRACE_STALE_LAUNCH, c_stale)

    x = np.asarray(x_l, dtype=np.float64)
    return (
        x,
        now,
        trace,
        um.fault_count if um is not None else 0,
        nevents,
    )
