"""Serial reference solver (Algorithm 1 of the paper).

Forward substitution over CSC columns in ascending order, maintaining the
``left_sum`` partial-sum array exactly as the paper's pseudocode does.
This is the numerical oracle every parallel solver is validated against,
and its column-sweep structure is the template the parallel designs
distribute.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SingularMatrixError
from repro.sparse.csc import CscMatrix
from repro.solvers.base import SolveResult, TriangularSolver, validate_system

__all__ = ["serial_forward", "serial_backward", "SerialSolver"]


def serial_forward(lower: CscMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``Lx = b`` by forward substitution (Algorithm 1).

    The inner update ``left_sum[j] += l_ij * x_i`` over column ``i``'s
    strictly-lower entries is vectorised per column; the outer loop is the
    inherently serial component order.
    """
    n = lower.shape[0]
    x = np.zeros(n)
    left_sum = np.zeros(n)
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    for i in range(n):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if lo >= hi or indices[lo] != i:
            raise SingularMatrixError(f"missing diagonal at column {i}")
        diag = data[lo]
        xi = (b[i] - left_sum[i]) / diag
        x[i] = xi
        if hi > lo + 1:
            rows = indices[lo + 1 : hi]
            left_sum[rows] += data[lo + 1 : hi] * xi
    return x


def serial_backward(upper: CscMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``Ux = b`` by backward substitution (descending order).

    ``upper`` is CSC with row indices ascending per column, so the
    diagonal is each column's *last* stored entry.
    """
    n = upper.shape[0]
    x = np.zeros(n)
    left_sum = np.zeros(n)
    indptr, indices, data = upper.indptr, upper.indices, upper.data
    for i in range(n - 1, -1, -1):
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if hi <= lo or indices[hi - 1] != i:
            raise SingularMatrixError(f"missing diagonal at column {i}")
        diag = data[hi - 1]
        xi = (b[i] - left_sum[i]) / diag
        x[i] = xi
        if hi - 1 > lo:
            rows = indices[lo : hi - 1]
            left_sum[rows] += data[lo : hi - 1] * xi
    return x


class SerialSolver(TriangularSolver):
    """Host-side reference solver; produces no machine report."""

    name = "serial-reference"

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        return SolveResult(x=serial_forward(lower, b), report=None, solver=self.name)
