"""Level-set (level-scheduling) solver — Naumov's method (Section II-B).

The analysis phase groups components into level sets; the solve phase
executes one parallel sweep per level with a barrier in between.  The
numeric kernel is fully vectorised per level; the timing model charges a
kernel launch + barrier per level, which is precisely the cost structure
that makes level scheduling slow on matrices with many levels (and the
reason the paper's sync-free designs win).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.levels import LevelSets, compute_levels
from repro.errors import SingularMatrixError
from repro.exec_model.timeline import ExecutionReport
from repro.machine.node import MachineConfig, dgx1
from repro.sparse.csc import CscMatrix
from repro.solvers.base import SolveResult, TriangularSolver, validate_system

__all__ = ["levelset_forward", "LevelSetSolver", "level_schedule_time"]


def levelset_forward(
    lower: CscMatrix,
    b: np.ndarray,
    levels: LevelSets | None = None,
) -> np.ndarray:
    """Solve ``Lx = b`` level by level (vectorised within each level)."""
    n = lower.shape[0]
    if levels is None:
        levels = compute_levels(lower)
    x = np.zeros(n)
    left_sum = np.zeros(n)
    indptr, indices, data = lower.indptr, lower.indices, lower.data

    diag_ptr = indptr[:-1]
    if n and not np.array_equal(indices[diag_ptr], np.arange(n)):
        raise SingularMatrixError("missing diagonal entry in lower factor")
    diag = data[diag_ptr]

    for l in range(levels.n_levels):
        comps = levels.level(l)
        x[comps] = (b[comps] - left_sum[comps]) / diag[comps]
        # Scatter this level's updates: all strictly-lower entries of the
        # level's columns at once.
        starts = diag_ptr[comps] + 1
        stops = indptr[comps + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            continue
        rep_starts = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        eidx = rep_starts + within
        rows = indices[eidx]
        src = np.repeat(comps, counts)
        np.add.at(left_sum, rows, data[eidx] * x[src])
    return x


def level_schedule_time(
    lower: CscMatrix,
    levels: LevelSets,
    machine: MachineConfig,
    *,
    analysis_factor: float = 1.0,
    design: str = "levelset",
) -> ExecutionReport:
    """Timing model of a single-GPU level-scheduled solve.

    Per level: one kernel launch, enough warp waves to cover the level's
    components, and a device-wide barrier.  The analysis phase costs a
    sweep over the nonzeros (dependency counting + level assignment),
    scaled by ``analysis_factor`` (cuSPARSE's analysis is heavier than a
    plain count — see :mod:`repro.solvers.cusparse`).
    """
    gpu = machine.gpu
    col_nnz = lower.col_nnz().astype(np.float64)
    in_deg = col_nnz - 1.0  # strict-lower entries ~ update work per column

    solve_time = 0.0
    barrier = gpu.t_kernel_launch  # device-wide sync ~ launch latency
    for l in range(levels.n_levels):
        comps = levels.level(l)
        width = len(comps)
        waves = int(np.ceil(width / gpu.warp_slots))
        # Each wave's duration is bounded by its slowest component.
        per_comp = gpu.t_per_nnz * (col_nnz[comps] + np.maximum(in_deg[comps], 0.0))
        wave_time = float(per_comp.max()) if width else 0.0
        solve_time += gpu.t_kernel_launch + waves * (
            gpu.t_warp_dispatch + wave_time
        )
        solve_time += barrier

    # Analysis sweeps the nonzeros a handful of times (dependency count,
    # level assignment, workspace setup), itself running data-parallel on
    # the GPU.
    analysis = (
        analysis_factor
        * lower.nnz
        * gpu.t_per_nnz
        * 4.0
        / max(gpu.analysis_parallelism, 1)
    )
    busy = float(np.sum(gpu.t_per_nnz * (col_nnz + np.maximum(in_deg, 0.0))))
    return ExecutionReport(
        design=design,
        machine=machine.topology.name,
        n_gpus=1,
        n_tasks=levels.n_levels,
        analysis_time=analysis,
        solve_time=solve_time,
        gpu_busy=np.array([busy]),
        gpu_spin=np.array([max(solve_time - busy, 0.0)]),
        gpu_comm=np.array([0.0]),
        gpu_finish=np.array([solve_time]),
        local_updates=int(np.sum(np.maximum(in_deg, 0.0))),
        remote_updates=0,
        page_faults=0.0,
        migrated_bytes=0.0,
        fabric_bytes=0.0,
    )


class LevelSetSolver(TriangularSolver):
    """Single-GPU level-scheduled SpTRSV (the classical GPU approach)."""

    name = "levelset"

    def __init__(self, machine: MachineConfig | None = None):
        self.machine = machine if machine is not None else dgx1(1)

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        levels = compute_levels(lower)
        x = levelset_forward(lower, b, levels)
        report = level_schedule_time(lower, levels, self.machine)
        return SolveResult(x=x, report=report, solver=self.name)
