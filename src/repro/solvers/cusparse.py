"""Model of cuSPARSE ``csrsv2`` — the paper's single-GPU baseline (Fig. 10).

``csrsv2`` is a level-scheduled solver: ``csrsv2_analysis`` builds the
level structure (an expensive pre-pass over the matrix), then
``csrsv2_solve`` sweeps the levels with a synchronisation between
consecutive levels.  We model it as :class:`~repro.solvers.levelset`
with a heavier analysis factor (cuSPARSE's analysis does a full symbolic
traversal plus workspace setup) and a slightly larger inter-level
synchronisation cost (stream-ordered event waits rather than in-kernel
barriers).

Numerically it is the same level-set sweep and is validated against the
serial reference like every other solver.
"""

from __future__ import annotations

from repro.analysis.levels import compute_levels
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.levelset import level_schedule_time, levelset_forward
from repro.sparse.csc import CscMatrix

__all__ = ["CusparseCsrsv2Solver"]


class CusparseCsrsv2Solver(TriangularSolver):
    """The ``cusparse_csrsv2()`` reference point of the scalability study.

    Parameters
    ----------
    machine:
        Node config; only the GPU spec matters (single-GPU kernel).
    analysis_factor:
        Multiplier on the level-analysis cost relative to a plain
        dependency count.  cuSPARSE's analysis phase is routinely
        reported at 5-20x the solve cost on level-rich matrices; the
        default of 6.0 sits in that band.
    """

    name = "cusparse-csrsv2"

    def __init__(
        self,
        machine: MachineConfig | None = None,
        analysis_factor: float = 6.0,
    ):
        self.machine = machine if machine is not None else dgx1(1)
        if analysis_factor <= 0:
            raise ValueError("analysis_factor must be positive")
        self.analysis_factor = analysis_factor

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        levels = compute_levels(lower)
        x = levelset_forward(lower, b, levels)
        report = level_schedule_time(
            lower,
            levels,
            self.machine,
            analysis_factor=self.analysis_factor,
            design="cusparse_csrsv2",
        )
        return SolveResult(x=x, report=report, solver=self.name)
