"""Functional emulation of the multi-GPU algorithms' memory semantics.

These routines *execute* Algorithm 2 (unified memory) and Algorithm 3
(NVSHMEM read-only) on the simulated memory systems: every counter
increment/decrement, partial-sum accumulation, and remote read happens on
real arrays with the same ownership/visibility rules as on the hardware.
The solve order interleaves components of the same level across GPUs
round-robin, emulating concurrent warps deterministically.

Each component's readiness condition is *checked* (not assumed) before it
solves — the emulation would raise :class:`SolverError` if the paper's
counter protocol were wrong — so tests exercising these paths validate
the algorithms themselves, not just our timing model.

Timing is NOT modelled here; that is
:mod:`repro.exec_model.timeline`'s job.  What these functions return,
besides ``x``, are the memory-system objects whose counters (page faults,
get counts) reflect the emulated access stream.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.levels import LevelSets, compute_levels
from repro.errors import SolverError
from repro.machine.node import MachineConfig
from repro.machine.shmem import SymmetricHeap
from repro.machine.unified import UnifiedMemory
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = [
    "emulate_unified_solve",
    "emulate_shmem_solve",
    "interleaved_order",
    "random_level_order",
]


def interleaved_order(
    levels: LevelSets, dist: Distribution
) -> list[int]:
    """Deterministic concurrent-execution order.

    Within each level (components are independent), interleave across
    GPUs round-robin: GPU0's first, GPU1's first, ..., GPU0's second, ...
    This mimics simultaneous warps touching shared state from different
    GPUs, which is what provokes unified-memory page bouncing.
    """
    order: list[int] = []
    gpu_of = dist.gpu_of
    for l in range(levels.n_levels):
        comps = levels.level(l)
        per_gpu: dict[int, list[int]] = {}
        for c in comps:
            per_gpu.setdefault(int(gpu_of[c]), []).append(int(c))
        queues = [per_gpu[g] for g in sorted(per_gpu)]
        k = 0
        while queues:
            q = queues[k % len(queues)]
            order.append(q.pop(0))
            if not q:
                queues.remove(q)
            else:
                k += 1
    return order


def random_level_order(
    levels: LevelSets, seed: int
) -> list[int]:
    """A random execution order that still respects level boundaries.

    Components shuffle freely *within* each level — modelling an
    arbitrary hardware interleaving of the concurrent warps — while
    levels stay ordered.  Used by robustness tests to check the counter
    protocols are insensitive to scheduling nondeterminism.
    """
    rng = np.random.default_rng(seed)
    order: list[int] = []
    for l in range(levels.n_levels):
        comps = np.array(levels.level(l))
        rng.shuffle(comps)
        order.extend(int(c) for c in comps)
    return order


def emulate_unified_solve(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    levels: LevelSets | None = None,
    order: list[int] | None = None,
) -> tuple[np.ndarray, UnifiedMemory]:
    """Execute Algorithm 2 on the unified-memory model.

    Allocates the shared ``s.left_sum``/``s.in_degree`` managed arrays and
    per-GPU device arrays, runs the in-degree pre-pass and the two-phase
    (lock-wait / solve-update) solve, and returns ``(x, um)`` where ``um``
    carries exact fault counts for the emulated access stream.
    """
    n = lower.shape[0]
    n_gpus = machine.n_gpus
    if levels is None:
        levels = compute_levels(lower)
    um = UnifiedMemory(machine.um, machine.topology)
    s_left = um.malloc_managed("s.left_sum", n)
    s_indeg = um.malloc_managed("s.in_degree", n, dtype=np.int64)
    d_left = [np.zeros(n) for _ in range(n_gpus)]
    # d_done is Algorithm 2's d.in_degree: local updates delivered so far.
    d_done = [np.zeros(n, dtype=np.int64) for _ in range(n_gpus)]

    indptr, indices, data = lower.indptr, lower.indices, lower.data
    gpu_of = dist.gpu_of
    phys = machine.active_gpus

    # --- pre-pass: system-wide atomic increments of s.in_degree ----------
    # (Algorithm 2 lines 6-9; every nonzero of every GPU's columns.)
    for j in range(n):
        g = int(gpu_of[j])
        for e in range(int(indptr[j]), int(indptr[j + 1])):
            rid = int(indices[e])
            um.access(phys[g], s_indeg, rid, sharers=n_gpus)
            s_indeg.data[rid] += 1

    # --- solve: lock-wait + solve-update ----------------------------------
    x = np.zeros(n)
    if order is None:
        order = interleaved_order(levels, dist)
    for i in order:
        g = int(gpu_of[i])
        pg = phys[g]
        # Lock-wait check (line 17): d.in_degree[i] + 1 == s.in_degree[i].
        um.access(pg, s_indeg, i, sharers=n_gpus)
        if d_done[g][i] + 1 != int(s_indeg.data[i]):
            raise SolverError(
                f"component {i} scheduled before its dependencies were met: "
                f"local done {int(d_done[g][i])}, shared counter "
                f"{int(s_indeg.data[i])}"
            )
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if indices[lo] != i:
            raise SolverError(f"missing diagonal at column {i}")
        um.access(pg, s_left, i, sharers=n_gpus)
        xi = (b[i] - d_left[g][i] - s_left.data[i]) / data[lo]
        x[i] = xi
        # Update dependants (lines 21-28).
        for e in range(lo + 1, hi):
            rid = int(indices[e])
            contrib = data[e] * xi
            if int(gpu_of[rid]) == g:
                d_left[g][rid] += contrib
                d_done[g][rid] += 1
            else:
                um.access(pg, s_left, rid, sharers=n_gpus)
                s_left.data[rid] += contrib
                um.access(pg, s_indeg, rid, sharers=n_gpus)
                s_indeg.data[rid] -= 1
    return x, um


def emulate_shmem_solve(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    levels: LevelSets | None = None,
    use_shortcircuit: bool = True,
    order: list[int] | None = None,
) -> tuple[np.ndarray, SymmetricHeap]:
    """Execute Algorithm 3 on the NVSHMEM model (read-only communication).

    Per PE symmetric arrays accumulate *locally*; consumers gather with
    one-sided gets across all PEs and reduce.  With
    ``use_shortcircuit=True``, a PE whose remote counter already reached
    zero is skipped on subsequent polls (the Section IV-B bandwidth
    optimisation); the emulation tracks skipped gets in
    ``heap.get_count``.
    """
    n = lower.shape[0]
    n_pes = machine.n_gpus
    if levels is None:
        levels = compute_levels(lower)
    heap = SymmetricHeap(
        n_pes=n_pes,
        topology=machine.topology,
        spec=machine.shmem,
        pe_to_gpu=np.asarray(machine.active_gpus, dtype=np.int64),
    )
    s_left = heap.malloc("s.left_sum", n)
    s_indeg = heap.malloc("s.in_degree", n, dtype=np.int64)
    d_left = [np.zeros(n) for _ in range(n_pes)]
    d_done = [np.zeros(n, dtype=np.int64) for _ in range(n_pes)]
    # r.in_degree cache per PE: last remote counter snapshot (for the
    # short-circuit check).
    r_indeg = [np.full((n, n_pes), -1, dtype=np.int64) for _ in range(n_pes)]

    indptr, indices, data = lower.indptr, lower.indices, lower.data
    gpu_of = dist.gpu_of

    # --- pre-pass: PE-local in-degree accumulation (lines 13-15) ---------
    for j in range(n):
        pe = int(gpu_of[j])
        rows = indices[int(indptr[j]) : int(indptr[j + 1])]
        np.add.at(s_indeg[pe], rows, 1)

    # --- solve ------------------------------------------------------------
    x = np.zeros(n)
    if order is None:
        order = interleaved_order(levels, dist)
    for i in order:
        pe = int(gpu_of[i])
        # Lock-wait: gather remote in-degree counters (lines 19-23).
        total = 0
        for src_pe in range(n_pes):
            if (
                use_shortcircuit
                and src_pe != pe
                and r_indeg[pe][i, src_pe] == 0
            ):
                continue  # satisfied PE: skip the remote read
            val, _cost = heap.get("s.in_degree", i, src_pe, pe)
            r_indeg[pe][i, src_pe] = int(val)
            total += int(val)
        if use_shortcircuit:
            total = int(np.sum(np.maximum(r_indeg[pe][i], 0)))
        if d_done[pe][i] + 1 != total:
            raise SolverError(
                f"component {i} scheduled before its dependencies were met: "
                f"local done {int(d_done[pe][i])}, gathered counter {total}"
            )
        # Gather partial sums (lines 24-26) and solve (lines 27-28).
        sums, _cost = heap.get_row("s.left_sum", i, pe)
        remote_sum = float(sums.sum())
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if indices[lo] != i:
            raise SolverError(f"missing diagonal at column {i}")
        xi = (b[i] - d_left[pe][i] - remote_sum) / data[lo]
        x[i] = xi
        # Update dependants (lines 29-36): local -> device arrays,
        # remote -> THIS PE's own symmetric heap (read-only model).
        for e in range(lo + 1, hi):
            rid = int(indices[e])
            contrib = data[e] * xi
            if int(gpu_of[rid]) == pe:
                d_left[pe][rid] += contrib
                d_done[pe][rid] += 1
            else:
                s_left[pe][rid] += contrib
                s_indeg[pe][rid] -= 1
    return x, heap
