"""Event-granular SpTRSV simulation on the DES core.

Where the fast model (:mod:`repro.exec_model.timeline`) prices an
execution analytically, this tier *plays it out*: every component is a
simulation process that acquires a warp slot, sleeps on its dependency
channel, gathers, solves, and notifies its dependants — with the unified
design routing every shared-array touch through the exact
:class:`~repro.machine.unified.UnifiedMemory` page table (exact fault
counts, exact ownership churn).

It is O(events) in Python and therefore meant for small systems: tests
use it to validate the fast model's orderings, and the Fig. 3 bench can
cross-check its analytic fault estimates against DES-exact counts on
down-scaled inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.des import Simulator
from repro.engine.events import Acquire, Release, Signal, Timeout, Wait
from repro.engine.resources import Resource
from repro.engine.trace import Trace
from repro.errors import SolverError
from repro.exec_model.artefacts import get_artefacts
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig, dgx1
from repro.machine.unified import UnifiedMemory
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution, block_distribution

__all__ = ["DesExecution", "des_execute", "resolve_engine", "DesSolver"]

#: Fine-grained 8-byte messages a single physical link keeps in flight;
#: beyond this, notifications queue on the link channel (DES resource).
MESSAGES_IN_FLIGHT_PER_LINK = 16


def resolve_engine(engine: str, n: int) -> str:
    """Resolve an ``engine=`` argument to ``"array"`` or ``"reference"``.

    ``"auto"`` picks the array engine once the system is large enough
    (``n >= ARRAY_MIN_COMPONENTS``) for its vectorised precompute to pay
    for itself; tiny systems stay on the reference engine, whose
    per-event overhead is negligible at that scale.  Both engines
    produce bit-identical traces and results, so the choice is purely a
    throughput decision.
    """
    if engine == "auto":
        from repro.solvers.des_array import ARRAY_MIN_COMPONENTS

        return "array" if n >= ARRAY_MIN_COMPONENTS else "reference"
    if engine in ("array", "reference"):
        return engine
    raise SolverError(
        f"unknown DES engine {engine!r}; expected 'auto', 'array' or "
        "'reference'"
    )


@dataclass(frozen=True)
class DesExecution:
    """Result of one event-granular run."""

    x: np.ndarray
    total_time: float
    trace: Trace
    page_faults: int
    events: int

    def solve_order(self) -> list[int]:
        return self.trace.solve_order()


def des_execute(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design | str = Design.SHMEM_READONLY,
    *,
    dag: DependencyDag | None = None,
    costs: CommCosts | None = None,
    trace_enabled: bool = True,
    engine: str = "auto",
) -> DesExecution:
    """Play out a multi-GPU SpTRSV at event granularity.

    Components are spawned in ascending index order per GPU at their
    task's launch time (the hardware dispatch order), acquire one of the
    GPU's warp slots, block on a readiness channel until the last
    dependency's notification lands, then gather-solve-update.

    For ``Design.UNIFIED`` every remote update is charged through an
    exact :class:`UnifiedMemory` page table, so ``page_faults`` counts
    real simulated ownership changes rather than a model estimate.

    ``engine`` selects the playout implementation: ``"reference"`` (one
    generator per process), ``"array"`` (the flat state machine in
    :mod:`repro.solvers.des_array`), or ``"auto"`` (array from
    ``ARRAY_MIN_COMPONENTS`` components up — see
    :func:`resolve_engine`).  The two engines are bit-identical in every
    observable (trace, solution, times, fault/event counts).
    """
    design = Design(design)
    n = lower.shape[0]
    if dist.n != n:
        raise SolverError("distribution does not match the matrix")
    art = get_artefacts(lower, dag=dag)
    if dag is None:
        dag = art.dag
    if costs is None:
        costs = art.comm_costs(machine, design)
    if resolve_engine(engine, n) == "array":
        from repro.solvers.des_array import execute_array

        x, total_time, trace, page_faults, events = execute_array(
            lower,
            b,
            dist,
            machine,
            design,
            dag=dag,
            costs=costs,
            trace_enabled=trace_enabled,
        )
        return DesExecution(
            x=x,
            total_time=total_time,
            trace=trace,
            page_faults=page_faults,
            events=events,
        )
    n_gpus = machine.n_gpus
    gpu_spec = machine.gpu

    sim = Simulator()
    trace = Trace(enabled=trace_enabled)
    slots = [
        Resource(f"gpu{g}.warps", capacity=gpu_spec.warp_slots)
        for g in range(n_gpus)
    ]
    # Per-pair link channels: each physical link sustains a bounded number
    # of in-flight fine-grained messages; excess notifications queue.
    links: dict[tuple[int, int], Resource] = {}

    def link_of(src_pe: int, dst_pe: int) -> Resource:
        key = (src_pe, dst_pe)
        if key not in links:
            ga = machine.active_gpus[src_pe]
            gb = machine.active_gpus[dst_pe]
            n_links = int(machine.topology.link_count[ga, gb])
            capacity = max(n_links, 1) * MESSAGES_IN_FLIGHT_PER_LINK
            links[key] = Resource(f"link{src_pe}->{dst_pe}", capacity)
        return links[key]
    um: UnifiedMemory | None = None
    s_left = s_indeg = None
    if design is Design.UNIFIED:
        um = UnifiedMemory(machine.um, machine.topology)
        s_left = um.malloc_managed("s.left_sum", n)
        s_indeg = um.malloc_managed("s.in_degree", n, dtype=np.int64)

    indptr, indices, data = lower.indptr, lower.indices, lower.data
    gpu_of = dist.gpu_of
    phys = machine.active_gpus

    x = np.zeros(n)
    left_sum = np.zeros(n)
    remaining = dag.in_degree.copy()
    in_counts = np.diff(dag.in_ptr)

    def notifier(src: int, dst: int, contribution: float, delay: float):
        """Deliver one update to a dependant after its notify latency.

        Cross-GPU deliveries occupy one of the pair's link channels for
        the message's wire time, so a burst of fine-grained updates
        between the same pair queues instead of teleporting.
        """
        src_pe, dst_pe = int(gpu_of[src]), int(gpu_of[dst])
        if src_pe != dst_pe:
            link = link_of(src_pe, dst_pe)
            ga = machine.active_gpus[src_pe]
            gb = machine.active_gpus[dst_pe]
            wire = 8.0 / machine.topology.peer_bandwidth(ga, gb)
            yield Acquire(link)
            trace.emit(sim.now, "xfer_begin", gpu=src_pe, detail=(src_pe, dst_pe, dst))
            yield Timeout(wire)
            trace.emit(sim.now, "xfer_end", gpu=src_pe, detail=(src_pe, dst_pe, dst))
            yield Release(link)
        yield Timeout(delay)
        left_sum[dst] += contribution
        remaining[dst] -= 1
        if remaining[dst] == 0:
            yield Signal(("ready", dst))

    def component(i: int):
        g = int(gpu_of[i])
        yield Acquire(slots[g])
        trace.emit(sim.now, "dispatch", gpu=g, detail=i)
        yield Timeout(gpu_spec.t_warp_dispatch)
        if remaining[i] > 0:
            yield Wait(("ready", i))
        # Gather phase (remote reads / final poll fault).
        gather = costs.gather if in_counts[i] else 0.0
        if design is Design.UNIFIED and um is not None and in_counts[i]:
            cost, _ = um.access(phys[g], s_indeg, i, sharers=n_gpus)
            gather += cost
        if gather > 0.0:
            yield Timeout(gather)
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if indices[lo] != i:
            raise SolverError(f"missing diagonal at column {i}")
        solve_cost = gpu_spec.t_per_nnz * (max(hi - lo, 1) + int(in_counts[i]))
        yield Timeout(solve_cost)
        x[i] = (b[i] - left_sum[i]) / data[lo]
        trace.emit(sim.now, "solve", gpu=g, detail=i)
        # Update dependants.
        update_cost = 0.0
        for e in range(lo + 1, hi):
            rid = int(indices[e])
            contrib = data[e] * x[i]
            dst_g = int(gpu_of[rid])
            if dst_g == g:
                update_cost += costs.update_local
                delay = 0.0
            elif design is Design.UNIFIED and um is not None:
                cost, faulted = um.access(phys[g], s_left, rid, sharers=n_gpus)
                update_cost += cost
                if faulted:
                    trace.emit(sim.now, "fault", gpu=g, detail=rid)
                delay = costs.notify[g, dst_g]
            else:
                update_cost += costs.update_remote[g, dst_g]
                delay = costs.notify[g, dst_g]
            sim.spawn(notifier(i, rid, contrib, update_cost + delay))
        if update_cost > 0.0:
            yield Timeout(update_cost)
        trace.emit(sim.now, "release", gpu=g, detail=i)
        yield Release(slots[g])

    # Spawn in ascending index order at each task's launch time: FIFO slot
    # queues then preserve the deadlock-free dispatch order.  The host
    # issues kernels serially in task order (same model as the fast
    # tier), so task k launches at k * t_kernel_launch.
    task_of = dist.task_of()
    launch = (
        np.arange(dist.n_tasks, dtype=np.float64) * gpu_spec.t_kernel_launch
    )
    for i in range(n):
        sim.spawn(component(i), delay=float(launch[task_of[i]]))

    events = sim.run()
    if np.any(remaining != 0):
        raise SolverError("DES run finished with unsatisfied dependencies")
    return DesExecution(
        x=x,
        total_time=sim.now,
        trace=trace,
        page_faults=um.fault_count if um is not None else 0,
        events=events,
    )


class DesSolver(TriangularSolver):
    """Solver front-end for the event-granular tier (small systems)."""

    name = "des-event-granular"

    def __init__(
        self,
        machine: MachineConfig | None = None,
        design: Design | str = Design.SHMEM_READONLY,
        max_components: int = 20_000,
        engine: str = "auto",
    ):
        self.machine = machine if machine is not None else dgx1(4)
        self.design = Design(design)
        self.max_components = max_components
        self.engine = engine

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        n = lower.shape[0]
        if n > self.max_components:
            raise SolverError(
                f"DES tier is for small systems (n <= {self.max_components}); "
                "use the fast-model solvers for large inputs"
            )
        dist = block_distribution(n, self.machine.n_gpus)
        # One artefact bundle feeds both tiers: the DES playout and the
        # fast-model re-pricing share the DAG and cost tables instead of
        # deriving the structure twice per solve.
        art = get_artefacts(lower)
        costs = art.comm_costs(self.machine, self.design)
        ex = des_execute(
            lower,
            b,
            dist,
            self.machine,
            self.design,
            dag=art.dag,
            costs=costs,
            engine=self.engine,
        )
        # Re-price through the fast model for a comparable report, but keep
        # the DES-exact wall clock by exposing it through the trace.
        from repro.exec_model.timeline import simulate_execution

        report = simulate_execution(
            lower, dist, self.machine, self.design, artefacts=art, costs=costs
        )
        result = SolveResult(x=ex.x, report=report, solver=self.name)
        return result
