"""Event-granular SpTRSV simulation on the DES core (reference engine).

Where the fast model (:mod:`repro.exec_model.timeline`) prices an
execution analytically, this tier *plays it out*: every component is a
simulation process that acquires a warp slot, sleeps on its dependency
channel, gathers, solves, and notifies its dependants — with the unified
design routing every shared-array touch through the exact
:class:`~repro.machine.unified.UnifiedMemory` page table (exact fault
counts, exact ownership churn).

This module is the *literal interpreter* of the shared execution
protocol in :mod:`repro.engine.protocol`: it walks the lifecycle tables
with generator objects, while :mod:`repro.solvers.des_array` compiles
the same tables to integer tokens.  Every state constant, timing rule,
delivery verdict, and remap decision comes from the protocol core —
neither engine declares protocol logic of its own.

It is O(events) in Python and therefore meant for small systems: tests
use it to validate the fast model's orderings, and the Fig. 3 bench can
cross-check its analytic fault estimates against DES-exact counts on
down-scaled inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.des import Simulator
from repro.engine.events import Acquire, Release, Signal, Timeout, Wait
from repro.engine.protocol import (
    ACT_CORRUPT,
    ACT_DELAY,
    ACT_DELIVER,
    ACT_EXHAUSTED,
    ACT_STARVE,
    FATE_DELAY,
    MESSAGES_IN_FLIGHT_PER_LINK,
    TRACE_DISPATCH,
    TRACE_FAULT,
    TRACE_GPU_FAIL,
    TRACE_INJECT,
    TRACE_MSG_LOST,
    TRACE_RECOVERED,
    TRACE_RELEASE,
    TRACE_REMAP,
    TRACE_RETRY,
    TRACE_SOLVE,
    TRACE_STALE_LAUNCH,
    TRACE_VALIDATE,
    TRACE_REPLAY,
    TRACE_XFER_BEGIN,
    TRACE_XFER_END,
    VALID_ENGINES,
    StalePolicy,
    coerce_design,
    delivery_action,
    design_hooks,
    edge_notify_delay,
    edge_update_inc,
    exhausted_delivery,
    frontier_diagnostics,
    failure_victims,
    launch_times,
    link_capacity,
    missing_diagonal,
    remap_plan,
    resolve_stale_policy,
    solve_cost,
    stale_validation_times,
    validate_fabric_reach,
    wake_threshold,
    wire_time,
)
from repro.engine.resources import Resource
from repro.engine.trace import Trace
from repro.errors import ConfigurationError, FaultInjectionError, SolverError
from repro.exec_model.artefacts import get_artefacts
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig, dgx1
from repro.machine.unified import UnifiedMemory
from repro.resilience.faults import flip_mantissa_bit
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = ["DesExecution", "des_execute", "resolve_engine", "DesSolver"]


def resolve_engine(engine: str, n: int) -> str:
    """Resolve an ``engine=`` argument to a concrete engine name.

    ``"auto"`` picks the array engine once the system is large enough
    (``n >= ARRAY_MIN_COMPONENTS``) for its vectorised precompute to pay
    for itself; tiny systems stay on the reference engine, whose
    per-event overhead is negligible at that scale.  ``"vector"`` selects
    the windowed batch engine (:mod:`repro.solvers.des_vector`).  All
    engines produce bit-identical traces and results, so the choice is
    purely a throughput decision.
    """
    if engine == "auto":
        from repro.solvers.des_array import ARRAY_MIN_COMPONENTS

        return "array" if n >= ARRAY_MIN_COMPONENTS else "reference"
    if engine in ("array", "vector", "reference"):
        return engine
    raise ConfigurationError(
        f"unknown DES engine {engine!r}; valid choices: "
        + ", ".join(VALID_ENGINES),
        parameter="engine",
        value=engine,
        choices=VALID_ENGINES,
    )


@dataclass(frozen=True)
class DesExecution:
    """Result of one event-granular run."""

    x: np.ndarray
    total_time: float
    trace: Trace
    page_faults: int
    events: int

    def solve_order(self) -> list[int]:
        return self.trace.solve_order()


def des_execute(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design | str = Design.SHMEM_READONLY,
    *,
    dag: DependencyDag | None = None,
    costs: CommCosts | None = None,
    trace_enabled: bool = True,
    engine: str = "auto",
    injector=None,
    recovery=None,
    watchdog=None,
    stale: StalePolicy | None = None,
    epoch_lookahead: float | None = None,
) -> DesExecution:
    """Play out a multi-GPU SpTRSV at event granularity.

    Components are spawned in ascending index order per GPU at their
    task's launch time (the hardware dispatch order), acquire one of the
    GPU's warp slots, block on a readiness channel until the last
    dependency's notification lands, then gather-solve-update.

    For ``Design.UNIFIED`` every remote update is charged through an
    exact :class:`UnifiedMemory` page table, so ``page_faults`` counts
    real simulated ownership changes rather than a model estimate.

    ``engine`` selects the playout implementation: ``"reference"`` (one
    generator per process), ``"array"`` (the flat state machine in
    :mod:`repro.solvers.des_array`), ``"vector"`` (the windowed batch
    engine in :mod:`repro.solvers.des_vector`), or ``"auto"`` (array
    from ``ARRAY_MIN_COMPONENTS`` components up — see
    :func:`resolve_engine`).  All engines are bit-identical in every
    observable (trace, solution, times, fault/event counts).

    Resilience hooks (all optional, all bit-transparent when absent):

    * ``injector`` — a materialised
      :class:`~repro.resilience.faults.FaultInjector` both engines
      consult at event-dispatch time;
    * ``recovery`` — a
      :class:`~repro.resilience.recovery.RecoveryPolicy` governing
      delivery retries (timeout + exponential backoff, bounded),
      message checksumming, and GPU-failure remap.  Without one, a lost
      delivery starves its dependant and the deadlock detector fires;
    * ``watchdog`` — a :class:`~repro.resilience.watchdog.Watchdog`
      polled at every clock advance (no-progress stall detection).

    ``epoch_lookahead`` overrides the epoch-compiled vector engine's
    structure-derived window width (narrower widths split epochs finer;
    over-wide ones are clamped per epoch, so the playout stays
    bit-identical either way).  The scalar interpreters have no epochs
    and ignore it.

    Under ``Design.STALE_SYNC`` a component may leave its dependency
    park once at most ``stale.k`` contributions are still missing
    (recording :data:`~repro.engine.protocol.TRACE_STALE_LAUNCH`); after
    the calendar drains, a post-hoc validation pass detects above-ceiling
    stale reads and replays their forward closure
    (:data:`~repro.engine.protocol.TRACE_VALIDATE` /
    :data:`~repro.engine.protocol.TRACE_REPLAY`).  The pass is a pure
    function of the finished run, so every engine extends the trace and
    wall clock bit-identically.
    """
    design = coerce_design(design)
    hooks = design_hooks(design)
    stale = resolve_stale_policy(design, stale)
    wake_at = wake_threshold(stale)
    validate_fabric_reach(machine, design)
    n = lower.shape[0]
    if dist.n != n:
        raise SolverError("distribution does not match the matrix")
    if injector is not None and injector.has_gpu_failures:
        for _t_fail, g_fail in injector.gpu_failures:
            if not 0 <= g_fail < machine.n_gpus:
                raise FaultInjectionError(
                    f"gpu_fail targets rank {g_fail}, but the machine has "
                    f"{machine.n_gpus} GPUs"
                )
    art = get_artefacts(lower, dag=dag)
    if dag is None:
        dag = art.dag
    if costs is None:
        costs = art.comm_costs(machine, design)
    resolved = resolve_engine(engine, n)

    def _finish(x, total_time, trace, page_faults, events) -> DesExecution:
        """Shared finishing step: the stale-sync validation/replay pass.

        Runs identically after every engine (pure function of the
        finished run's observables), so the repaired solution, the
        appended trace records, and the extended wall clock stay
        bit-identical across reference, array, and vector.
        """
        if stale is not None:
            x, total_time = _stale_validation_pass(
                lower, b, x, stale, trace, total_time,
                machine.gpu.t_kernel_launch,
            )
        return DesExecution(
            x=x,
            total_time=total_time,
            trace=trace,
            page_faults=page_faults,
            events=events,
        )

    if resolved in ("array", "vector"):
        extra = {}
        if resolved == "vector":
            from repro.solvers.des_vector import execute_vector as _execute

            extra["epoch_lookahead"] = epoch_lookahead
        else:
            from repro.solvers.des_array import execute_array as _execute

        x, total_time, trace, page_faults, events = _execute(
            lower,
            b,
            dist,
            machine,
            design,
            dag=dag,
            costs=costs,
            trace_enabled=trace_enabled,
            injector=injector,
            recovery=recovery,
            watchdog=watchdog,
            stale=stale,
            **extra,
        )
        return _finish(x, total_time, trace, page_faults, events)
    n_gpus = machine.n_gpus
    gpu_spec = machine.gpu

    faulty = injector is not None and injector.active
    link_faulty = faulty and injector.has_link_faults
    delivery_faulty = faulty and injector.has_delivery_faults
    straggler_faulty = faulty and injector.has_stragglers
    failure_mode = faulty and injector.has_gpu_failures

    sim = Simulator(watchdog=watchdog)
    # Deadlock reports name the starved components and their owning
    # ranks: the readiness channels still holding waiters when the
    # calendar drains are exactly the pending-dependency frontier.
    sim.frontier_resolver = lambda waiting: frontier_diagnostics(
        [
            ch[1]
            for ch, ps in waiting.items()
            if ps and isinstance(ch, tuple) and ch[0] == "ready"
        ],
        dist.gpu_of,
    )
    trace = Trace(enabled=trace_enabled)
    slots = [
        Resource(f"gpu{g}.warps", capacity=gpu_spec.warp_slots)
        for g in range(n_gpus)
    ]
    # Per-pair link channels: each physical link sustains a bounded number
    # of in-flight fine-grained messages; excess notifications queue.
    links: dict[tuple[int, int], Resource] = {}

    def link_of(src_pe: int, dst_pe: int) -> Resource:
        key = (src_pe, dst_pe)
        if key not in links:
            ga = machine.active_gpus[src_pe]
            gb = machine.active_gpus[dst_pe]
            capacity = link_capacity(
                machine.topology, ga, gb, MESSAGES_IN_FLIGHT_PER_LINK
            )
            links[key] = Resource(f"link{src_pe}->{dst_pe}", capacity)
        return links[key]
    um: UnifiedMemory | None = None
    s_left = s_indeg = None
    if hooks.page_table:
        um = UnifiedMemory(machine.um, machine.topology)
        s_left = um.malloc_managed("s.left_sum", n)
        s_indeg = um.malloc_managed("s.in_degree", n, dtype=np.int64)

    indptr, indices, data = lower.indptr, lower.indices, lower.data
    gpu_of = dist.gpu_of
    if failure_mode:
        # Remap mutates ownership mid-run; never touch the caller's
        # Distribution.
        gpu_of = gpu_of.copy()
    phys = machine.active_gpus

    x = np.zeros(n)
    left_sum = np.zeros(n)
    remaining = dag.in_degree.copy()
    in_counts = np.diff(dag.in_ptr)
    # Failure bookkeeping: `epoch[i]` invalidates every in-flight
    # incarnation of component i when its GPU dies (stale generators wake,
    # see the mismatch, and exit); `done` marks solved components (not
    # victims); `dead` accumulates failed ranks.
    epoch = [0] * n if failure_mode else None
    done = [False] * n
    dead: set[int] = set()

    def notifier(
        e: int,
        src: int,
        dst: int,
        contribution: float,
        delay: float,
        src_pe: int,
        dst_pe: int,
    ):
        """Deliver one update to a dependant after its notify latency.

        Cross-GPU deliveries occupy one of the pair's link channels for
        the message's wire time, so a burst of fine-grained updates
        between the same pair queues instead of teleporting.  The
        endpoint ranks are frozen at spawn (solve) time — matching the
        array engine, whose per-edge routing tables are read when the
        transfer token is buckets — so a concurrent GPU-failure remap
        never reroutes a message already in flight.

        Under a fault plan each delivery attempt of edge ``e`` asks the
        injector for its fate and resolves it through the protocol's
        :func:`~repro.engine.protocol.delivery_action` decision tree:
        retries re-pay the wire on cross-GPU edges, a starved dependant
        is reported loudly, and an undetected corruption flips one
        mantissa bit of the contribution and lands.
        """
        cross = src_pe != dst_pe
        if cross:
            link = link_of(src_pe, dst_pe)
            ga = machine.active_gpus[src_pe]
            gb = machine.active_gpus[dst_pe]
            base_wire = wire_time(machine.topology, ga, gb)
        attempt = 0
        corrupted = False
        while True:
            if cross:
                yield Acquire(link)
                trace.emit(sim.now, TRACE_XFER_BEGIN, gpu=src_pe, detail=(src_pe, dst_pe, dst))
                wire = base_wire
                if link_faulty:
                    wire, tag = injector.wire_time(
                        src_pe, dst_pe, sim.now, wire
                    )
                    if tag is not None:
                        trace.emit(
                            sim.now, TRACE_INJECT, gpu=src_pe,
                            detail=(tag, e, attempt),
                        )
                yield Timeout(wire)
                trace.emit(sim.now, TRACE_XFER_END, gpu=src_pe, detail=(src_pe, dst_pe, dst))
                yield Release(link)
            yield Timeout(delay)
            fate = (
                injector.delivery_fate(e, attempt) if delivery_faulty else None
            )
            verdict, arg = delivery_action(fate, attempt, recovery)
            while verdict == ACT_DELAY:
                trace.emit(
                    sim.now, TRACE_INJECT, gpu=dst_pe,
                    detail=(FATE_DELAY, e, attempt),
                )
                attempt += 1
                yield Timeout(arg)
                fate = injector.delivery_fate(e, attempt)
                verdict, arg = delivery_action(fate, attempt, recovery)
            if verdict == ACT_DELIVER:
                break
            trace.emit(
                sim.now, TRACE_INJECT, gpu=dst_pe, detail=(fate[0], e, attempt)
            )
            if verdict == ACT_CORRUPT:
                # No checksum: the flipped value lands in left.sum.
                contribution = flip_mantissa_bit(contribution, arg)
                corrupted = True
                attempt += 1
                break
            if verdict == ACT_STARVE:
                trace.emit(sim.now, TRACE_MSG_LOST, gpu=dst_pe, detail=(e, dst))
                return  # dependant starves; the deadlock detector reports it
            if verdict == ACT_EXHAUSTED:
                raise exhausted_delivery(e, dst, attempt + 1)
            # ACT_RETRY: re-send after exponential backoff.
            trace.emit(sim.now, TRACE_RETRY, gpu=src_pe, detail=(e, attempt, arg))
            attempt += 1
            yield Timeout(arg)
        if delivery_faulty and attempt and not corrupted:
            trace.emit(sim.now, TRACE_RECOVERED, gpu=dst_pe, detail=(e, attempt))
        left_sum[dst] += contribution
        remaining[dst] -= 1
        # The wake threshold is 0 for synchronous designs and ``k``
        # under stale-sync: the countdown crosses it exactly once, so
        # the ready channel fires exactly once either way (a signal with
        # no waiter is a no-op).
        if remaining[dst] == wake_at:
            yield Signal(("ready", dst))

    def component(i: int, ep: int = 0):
        # Epoch guard at every resume point: a GPU failure bumps
        # epoch[i], so any stale incarnation — including one spawned but
        # not yet started — exits on its next wake without touching the
        # (possibly remapped) state.  With no gpu_fail faults, `epoch` is
        # None and every guard is dead.
        if epoch is not None and epoch[i] != ep:
            return
        g = int(gpu_of[i])
        yield Acquire(slots[g])
        if epoch is not None and epoch[i] != ep:
            return
        trace.emit(sim.now, TRACE_DISPATCH, gpu=g, detail=i)
        yield Timeout(gpu_spec.t_warp_dispatch)
        if epoch is not None and epoch[i] != ep:
            return
        if remaining[i] > wake_at:
            yield Wait(("ready", i))
            if epoch is not None and epoch[i] != ep:
                return
        if stale is not None and remaining[i] > 0:
            # Bounded-stale launch: gather proceeds with contributions
            # still missing.  ``remaining`` is re-read here (not at the
            # wake) so same-timestamp deliveries that land before this
            # process resumes are counted — matching the array engine's
            # token semantics bit-for-bit.
            trace.emit(
                sim.now, TRACE_STALE_LAUNCH, gpu=g,
                detail=(i, int(remaining[i])),
            )
        # Gather phase (remote reads / final poll fault).
        gather = costs.gather if in_counts[i] else 0.0
        if hooks.page_table and um is not None and in_counts[i]:
            cost, _ = um.access(phys[g], s_indeg, i, sharers=n_gpus)
            gather += cost
        if gather > 0.0:
            yield Timeout(gather)
            if epoch is not None and epoch[i] != ep:
                return
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        if indices[lo] != i:
            raise missing_diagonal(i)
        cost_solve = solve_cost(gpu_spec.t_per_nnz, hi - lo, int(in_counts[i]))
        if straggler_faulty:
            cost_solve = injector.solve_scale(g, sim.now, cost_solve)
        yield Timeout(cost_solve)
        if epoch is not None and epoch[i] != ep:
            return
        x[i] = (b[i] - left_sum[i]) / data[lo]
        done[i] = True
        trace.emit(sim.now, TRACE_SOLVE, gpu=g, detail=i)
        if watchdog is not None:
            watchdog.progress(sim.now, i)
        # Update dependants.
        update_cost = 0.0
        for e in range(lo + 1, hi):
            rid = int(indices[e])
            contrib = data[e] * x[i]
            dst_g = int(gpu_of[rid])
            if hooks.page_table and um is not None and dst_g != g:
                cost, faulted = um.access(phys[g], s_left, rid, sharers=n_gpus)
                update_cost += cost
                if faulted:
                    trace.emit(sim.now, TRACE_FAULT, gpu=g, detail=rid)
                delay = costs.notify[g, dst_g]
            else:
                update_cost += edge_update_inc(costs, g, dst_g)
                delay = edge_notify_delay(costs, g, dst_g)
            sim.spawn(
                notifier(e, i, rid, contrib, update_cost + delay, g, dst_g)
            )
        if update_cost > 0.0:
            yield Timeout(update_cost)
        trace.emit(sim.now, TRACE_RELEASE, gpu=g, detail=i)
        yield Release(slots[g])

    def gpu_failure(g: int):
        """Fail-stop rank ``g``: cancel its unsolved work, remap or starve.

        Runs atomically at its fault time.  Cancellation: bump every
        victim's epoch, then wake whatever is parked — ready-channel
        waiters via a Signal (ascending victim order), warp-slot queue
        waiters via a drain (FIFO) — so each stale incarnation resumes
        once, sees the epoch mismatch, and exits.  In-flight deliveries
        are *not* cancelled (the message is already on the fabric).  With
        remap enabled, victims are dealt over the survivors and
        re-launched after the failure-detector latency, serialised by the
        kernel-launch cost; without it their dependants starve and the
        run ends in a loud DeadlockError.
        """
        dead.add(g)
        trace.emit(sim.now, TRACE_GPU_FAIL, gpu=g, detail=g)
        victims = failure_victims(gpu_of, done, g, n)
        for i in victims:
            epoch[i] += 1
        for i in victims:
            yield Signal(("ready", i))
        for p in slots[g].drain():
            sim.resume_from_resource(p)
        if not victims:
            return
        if recovery is not None and recovery.remap_on_failure:
            plan = remap_plan(
                gpu_of, victims, g, n_gpus, dead, recovery,
                gpu_spec.t_kernel_launch,
            )
            for i, new_g, relaunch in plan:
                gpu_of[i] = new_g
                trace.emit(sim.now, TRACE_REMAP, gpu=new_g, detail=(i, g))
                sim.spawn(component(i, epoch[i]), delay=relaunch)

    # Spawn in ascending index order at each task's launch time: FIFO slot
    # queues then preserve the deadlock-free dispatch order.  The host
    # issues kernels serially in task order (same model as the fast
    # tier), so task k launches at k * t_kernel_launch.
    task_of = dist.task_of()
    launch = launch_times(dist.n_tasks, gpu_spec.t_kernel_launch)
    for i in range(n):
        sim.spawn(component(i), delay=float(launch[task_of[i]]))
    if failure_mode:
        for t_fail, g_fail in injector.gpu_failures:
            sim.spawn(gpu_failure(g_fail), delay=float(t_fail))

    events = sim.run()
    if np.any(remaining != 0):
        raise SolverError("DES run finished with unsatisfied dependencies")
    return _finish(
        x,
        sim.now,
        trace,
        um.fault_count if um is not None else 0,
        events,
    )


def _stale_validation_pass(
    lower: CscMatrix,
    b: np.ndarray,
    x: np.ndarray,
    stale: StalePolicy,
    trace: Trace,
    total_time: float,
    t_kernel_launch: float,
) -> tuple[np.ndarray, float]:
    """The stale-sync post-hoc validation/replay step (all engines).

    Detects solved rows whose stale-read error exceeds the policy
    ceiling, replays their forward closure via the resilience repair
    machinery, and appends the protocol's ``validate`` / ``replay``
    records at the timestamps of
    :func:`~repro.engine.protocol.stale_validation_times`.  Returns the
    validated solution and the extended wall clock.  Raises
    :class:`~repro.errors.RecoveryExhaustedError` when replay cannot
    bring the system under the ceiling.
    """
    from repro.resilience.recovery import stale_validate

    x_fixed, suspects, replayed = stale_validate(lower, b, x, stale.ceiling)
    t_validate, t_replays = stale_validation_times(
        total_time, len(replayed), t_kernel_launch
    )
    trace.emit(
        t_validate, TRACE_VALIDATE, gpu=0,
        detail=(len(suspects), len(replayed)),
    )
    for k, i in enumerate(replayed):
        trace.emit(float(t_replays[k]), TRACE_REPLAY, gpu=0, detail=i)
    if len(replayed):
        total_time = float(t_replays[-1])
    return x_fixed, total_time


class DesSolver(TriangularSolver):
    """Solver front-end for the event-granular tier (small systems)."""

    name = "des-event-granular"

    def __init__(
        self,
        machine: MachineConfig | None = None,
        design: Design | str = Design.SHMEM_READONLY,
        max_components: int = 20_000,
        engine: str = "auto",
        distribution: str = "block",
        tasks_per_gpu: int | None = None,
        stale: StalePolicy | None = None,
        node_run: int | None = None,
    ):
        self.machine = machine if machine is not None else dgx1(4)
        self.design = coerce_design(design)
        self.max_components = max_components
        self.engine = engine
        self.distribution = distribution
        self.tasks_per_gpu = tasks_per_gpu
        self.stale = resolve_stale_policy(self.design, stale)
        # Locality knob of the hierarchical distribution; the node axis
        # itself comes from the machine's topology (node_shape).
        self.node_run = node_run

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        from repro.tasks.schedule import build_distribution

        b = validate_system(lower, b)
        n = lower.shape[0]
        if n > self.max_components:
            raise SolverError(
                f"DES tier is for small systems (n <= {self.max_components}); "
                "use the fast-model solvers for large inputs"
            )
        # One artefact bundle feeds both tiers: the DES playout and the
        # fast-model re-pricing share the DAG and cost tables instead of
        # deriving the structure twice per solve.
        art = get_artefacts(lower)
        costs = art.comm_costs(self.machine, self.design)
        dist = build_distribution(
            self.distribution,
            n,
            self.machine.n_gpus,
            tasks_per_gpu=self.tasks_per_gpu,
            lower=lower,
            machine=self.machine,
            design=self.design,
            node_run=self.node_run,
        )
        ex = des_execute(
            lower,
            b,
            dist,
            self.machine,
            self.design,
            dag=art.dag,
            costs=costs,
            engine=self.engine,
            stale=self.stale,
        )
        # Re-price through the fast model for a comparable report, but keep
        # the DES-exact wall clock by exposing it through the trace.
        from repro.exec_model.timeline import simulate_execution

        report = simulate_execution(
            lower, dist, self.machine, self.design, artefacts=art, costs=costs
        )
        result = SolveResult(x=ex.x, report=report, solver=self.name)
        return result
