"""Backward substitution (``Ux = b``) on the multi-GPU designs.

Section II of the paper: "backward substitution follows the similar
procedure as forward substitution (i.e., solving x in descending
order)".  Rather than duplicating every kernel, this module exploits the
exact symmetry: reversing both the row and column order of an upper
triangular matrix yields a lower-triangular matrix with the identical
dependency DAG (edges flipped end-to-end), so

    solve_upper(U, b) == reverse(solve_lower(reverse(U), reverse(b)))

where ``reverse(U)`` is the anti-transpose (flip both axes).  All
communication behaviour — level structure, cross-GPU edges, waiting
chains — is preserved under the mapping, so simulated reports for the
backward solve are exactly as faithful as forward ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotTriangularError
from repro.solvers.base import SolveResult, TriangularSolver
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.triangular import is_upper_triangular

__all__ = ["anti_transpose", "BackwardSolver"]


def anti_transpose(mat: CscMatrix) -> CscMatrix:
    """Flip a square matrix along both axes (``B[i, j] = A[n-1-i, n-1-j]``).

    Maps upper triangular to lower triangular (and back) while preserving
    the sparsity *pattern geometry*: chains stay chains, levels keep
    their widths, bandwidth is unchanged.
    """
    n, m = mat.shape
    if n != m:
        raise NotTriangularError(f"anti_transpose needs a square matrix: {mat.shape}")
    coo = mat.to_coo()
    return CooMatrix(
        (n - 1) - coo.row, (n - 1) - coo.col, coo.data, (n, n)
    ).to_csc()


class BackwardSolver(TriangularSolver):
    """Solve ``Ux = b`` by symmetry through any forward solver.

    Parameters
    ----------
    forward:
        Any :class:`TriangularSolver` for lower systems (e.g.
        :class:`~repro.solvers.zerocopy.ZeroCopySolver`).  Its simulated
        report carries over unchanged.
    """

    def __init__(self, forward: TriangularSolver):
        self.forward = forward
        self.name = f"backward<{forward.name}>"

    def solve(self, upper: CscMatrix, b: np.ndarray) -> SolveResult:
        if not is_upper_triangular(upper):
            raise NotTriangularError(
                "BackwardSolver expects an upper-triangular matrix"
            )
        lower = anti_transpose(upper)
        b = np.asarray(b, dtype=np.float64)
        res = self.forward.solve(lower, b[::-1].copy())
        return SolveResult(
            x=res.x[::-1].copy(), report=res.report, solver=self.name
        )
