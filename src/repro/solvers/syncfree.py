"""Single-GPU synchronization-free SpTRSV (Liu et al., Section II-C).

All components are activated at kernel launch; each warp busy-waits on
its component's in-degree counter and proceeds the moment the last
dependency lands — no level barriers, no analysis beyond the in-degree
count.  This is the execution model the paper extends to multiple GPUs;
on one GPU it doubles as the strongest single-device baseline.

Timing reuses the multi-GPU list-scheduling model with one GPU, where the
communication terms all vanish and what remains is warp-slot occupancy
plus dependency chains — the correct single-device behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.exec_model.costmodel import Design
from repro.exec_model.timeline import simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.levelset import levelset_forward
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import block_distribution

__all__ = ["SyncFreeSolver"]


class SyncFreeSolver(TriangularSolver):
    """Single-GPU sync-free solver (in-degree spin, no barriers)."""

    name = "syncfree-1gpu"

    def __init__(self, machine: MachineConfig | None = None):
        if machine is None:
            machine = dgx1(1)
        if machine.n_gpus != 1:
            raise ValueError(
                "SyncFreeSolver is the single-GPU baseline; use "
                "ShmemSolver/ZeroCopySolver for multi-GPU runs"
            )
        self.machine = machine

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        dag = build_dag(lower)
        levels = compute_levels(dag)
        # Numerics: the sync-free update order is a topological order;
        # the level sweep computes the identical fixed point.
        x = levelset_forward(lower, b, levels)
        dist = block_distribution(lower.shape[0], 1)
        report = simulate_execution(
            lower, dist, self.machine, Design.SHMEM_READONLY, dag=dag
        )
        return SolveResult(x=x, report=report, solver=self.name)
