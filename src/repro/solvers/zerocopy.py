"""The paper's headline design: zero-copy SpTRSV (NVSHMEM + task pool).

``4GPU-Zerocopy`` in Fig. 7: the read-only NVSHMEM communication model of
Algorithm 3 combined with the Section V task-distribution module —
contiguous component-tasks dealt round-robin over GPUs so that every GPU
works on both early and late components, breaking the unidirectional
waiting chain of block distribution.

All tasks on one GPU share that PE's symmetric intermediate arrays
(Section V: "all tasks scheduled on the same GPU share same sets of
intermediate arrays"), which the functional emulation reproduces by
keying every array on the PE rank, never on the task.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.errors import TaskModelError
from repro.exec_model.costmodel import Design, build_comm_costs
from repro.exec_model.timeline import simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.numerics import emulate_shmem_solve
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution, round_robin_distribution

__all__ = ["ZeroCopySolver"]


class ZeroCopySolver(TriangularSolver):
    """Task-model-enabled zero-copy SpTRSV (the proposed design).

    Parameters
    ----------
    machine:
        Node configuration (P2P clique).
    tasks_per_gpu:
        The Fig. 9 sensitivity knob; the paper's default operating point
        is 8 tasks per GPU.
    emulate, warp_reduce, shortcircuit:
        As in :class:`~repro.solvers.nvshmem.ShmemSolver`.
    """

    name = "multi-gpu-zerocopy"
    design = Design.SHMEM_READONLY

    def __init__(
        self,
        machine: MachineConfig | None = None,
        tasks_per_gpu: int = 8,
        emulate: bool = True,
        warp_reduce: bool = True,
        shortcircuit: bool = True,
    ):
        if tasks_per_gpu < 1:
            raise TaskModelError(
                f"tasks_per_gpu must be >= 1, got {tasks_per_gpu}"
            )
        self.machine = machine if machine is not None else dgx1(4)
        self.tasks_per_gpu = tasks_per_gpu
        self.emulate = emulate
        self.warp_reduce = warp_reduce
        self.shortcircuit = shortcircuit

    def distribution(self, n: int) -> Distribution:
        return round_robin_distribution(
            n,
            self.machine.n_gpus,
            self.tasks_per_gpu,
            memories=self.machine.device_memories(),
        )

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        dist = self.distribution(lower.shape[0])
        dag = build_dag(lower)
        levels = compute_levels(dag)
        if self.emulate:
            x, _heap = emulate_shmem_solve(
                lower,
                b,
                dist,
                self.machine,
                levels,
                use_shortcircuit=self.shortcircuit,
            )
        else:
            from repro.solvers.levelset import levelset_forward

            x = levelset_forward(lower, b, levels)
        costs = build_comm_costs(
            self.machine,
            self.design,
            warp_reduce=self.warp_reduce,
            shortcircuit=self.shortcircuit,
        )
        report = simulate_execution(
            lower, dist, self.machine, self.design, dag=dag, costs=costs
        )
        return SolveResult(x=x, report=report, solver=self.name)
