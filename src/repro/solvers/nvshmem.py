"""Multi-GPU SpTRSV with NVSHMEM (Algorithm 3, Section IV).

The ``4GPU-Shmem`` design point: per-PE symmetric-heap intermediate
arrays, the read-only inter-GPU communication model (async get + warp
reduction), and the baseline *block* ("continued") component
distribution.  The task-model variant lives in
:mod:`repro.solvers.zerocopy`.

Also exposes the naive Get-Update-Put design as
:class:`NaiveShmemSolver` for the Section IV-B ablation: same symmetric
heap, but producers round-trip every remote update through
get/fence/put/quiet, which serialises PEs on shared data.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.exec_model.costmodel import Design, build_comm_costs
from repro.exec_model.timeline import simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.numerics import emulate_shmem_solve
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution, block_distribution

__all__ = ["ShmemSolver", "NaiveShmemSolver"]


class ShmemSolver(TriangularSolver):
    """Zero-copy NVSHMEM SpTRSV with block distribution (``4GPU-Shmem``).

    Parameters
    ----------
    machine:
        Node configuration; must be a P2P clique (NVSHMEM restriction —
        requesting 5+ GPUs on DGX-1 raises
        :class:`~repro.errors.TopologyError` at machine construction).
    emulate:
        Numerically execute Algorithm 3 through the symmetric-heap
        emulation (default) or use the fast level-set kernel for ``x``.
    warp_reduce, shortcircuit:
        Ablation knobs (Section IV-B optimisations), both on by default.
    """

    name = "multi-gpu-shmem"
    design = Design.SHMEM_READONLY

    def __init__(
        self,
        machine: MachineConfig | None = None,
        emulate: bool = True,
        warp_reduce: bool = True,
        shortcircuit: bool = True,
    ):
        self.machine = machine if machine is not None else dgx1(4)
        self.emulate = emulate
        self.warp_reduce = warp_reduce
        self.shortcircuit = shortcircuit

    def distribution(self, n: int) -> Distribution:
        return block_distribution(n, self.machine.n_gpus)

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        dist = self.distribution(lower.shape[0])
        dag = build_dag(lower)
        levels = compute_levels(dag)
        if self.emulate:
            x, _heap = emulate_shmem_solve(
                lower,
                b,
                dist,
                self.machine,
                levels,
                use_shortcircuit=self.shortcircuit,
            )
        else:
            from repro.solvers.levelset import levelset_forward

            x = levelset_forward(lower, b, levels)
        costs = build_comm_costs(
            self.machine,
            self.design,
            warp_reduce=self.warp_reduce,
            shortcircuit=self.shortcircuit,
        )
        report = simulate_execution(
            lower, dist, self.machine, self.design, dag=dag, costs=costs
        )
        return SolveResult(x=x, report=report, solver=self.name)


class NaiveShmemSolver(ShmemSolver):
    """Ablation: Get-Update-Put with fence/quiet per remote update.

    Numerically identical to the read-only design (updates commute);
    the cost model charges the serialised round trips.
    """

    name = "multi-gpu-shmem-naive"
    design = Design.SHMEM_NAIVE

    def __init__(self, machine: MachineConfig | None = None, emulate: bool = True):
        super().__init__(machine=machine, emulate=emulate)

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        dist = self.distribution(lower.shape[0])
        dag = build_dag(lower)
        levels = compute_levels(dag)
        if self.emulate:
            x, _heap = emulate_shmem_solve(
                lower, b, dist, self.machine, levels, use_shortcircuit=False
            )
        else:
            from repro.solvers.levelset import levelset_forward

            x = levelset_forward(lower, b, levels)
        report = simulate_execution(
            lower, dist, self.machine, self.design, dag=dag
        )
        return SolveResult(x=x, report=report, solver=self.name)
