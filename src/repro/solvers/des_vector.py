"""Epoch-compiled batch-execution DES engine (the ``vector`` fast path).

Third interpreter of the shared execution protocol in
:mod:`repro.engine.protocol`.  Since the epoch-compiler rework this
module is a thin front end: it owns the *delegation boundary* (which
runs are provably covered by the batch algebra) and hands everything
else to :mod:`repro.engine.epoch`, which lowers the protocol tables
into a precompiled numpy execution plan and drains the calendar in
structure-derived macro-epochs::

    plan = compile_plan(...)      # protocol tables -> flat numpy plan
    execute_plan(plan)            # macro-epoch playout, bit-identical

The epoch width is derived from the DAG structure rather than the
smallest timing constant — see the :mod:`repro.engine.epoch` module
docstring for the widening argument and the key algebra that keeps
every observable (traces, solution bits, wall clock, counters)
bit-identical to the reference and array engines.

Delegation boundary
-------------------
Fault/recovery/watchdog instrumentation, the unified design's
page-table pricing, a stale-sync wake threshold, a zero lookahead, a
zero-cost fan-out increment, or an event budget small enough to bite
mid-run all delegate wholesale to
:func:`~repro.solvers.des_array.execute_array` (which shares every
protocol table with this engine), so the 48-cell chaos matrix
exercises the exact scalar semantics while clean large runs get the
compiled path.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.epoch import BATCH_MIN_EVENTS, compile_plan, execute_plan
from repro.engine.protocol import design_hooks
from repro.engine.trace import Trace
from repro.exec_model.costmodel import CommCosts, Design
from repro.machine.node import MachineConfig
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = ["execute_vector", "BATCH_MIN_EVENTS"]


def execute_vector(
    lower: CscMatrix,
    b: np.ndarray,
    dist: Distribution,
    machine: MachineConfig,
    design: Design,
    *,
    dag: DependencyDag,
    costs: CommCosts,
    trace_enabled: bool = True,
    max_events: int = 50_000_000,
    injector=None,
    recovery=None,
    watchdog=None,
    stale=None,
    epoch_lookahead: float | None = None,
) -> tuple[np.ndarray, float, Trace, int, int]:
    """Play out one event-granular SpTRSV on the epoch-compiled engine.

    Returns ``(x, total_time, trace, page_faults, events)`` bit-identical
    to both the reference and the array engine.  Runs the batch path only
    when it is provably exact — see the module docstring for the
    delegation boundary.
    """
    from repro.solvers.des_array import execute_array
    from repro.solvers.des_solver import MESSAGES_IN_FLIGHT_PER_LINK

    n = lower.shape[0]
    nnz = int(lower.indptr[-1])
    faulty = injector is not None and injector.active
    unified = design_hooks(design).page_table

    # Batch preconditions.  The scalar-exact fallback boundary: any run
    # whose semantics the epoch algebra does not cover is delegated
    # wholesale — including budgets the margin analysis cannot clear
    # (total events are bounded by ~7n + 4nnz, so larger budgets can
    # never fire mid-run) and the stale-sync design (the batch solve
    # assumes every ``left.sum`` read is final; a bounded-stale wake
    # breaks that algebra, so those runs take the token engine).
    if (
        faulty
        or watchdog is not None
        or unified
        or stale is not None
        or max_events <= 7 * n + 4 * nnz
    ):
        return execute_array(
            lower, b, dist, machine, design,
            dag=dag, costs=costs, trace_enabled=trace_enabled,
            max_events=max_events, injector=injector,
            recovery=recovery, watchdog=watchdog, stale=stale,
        )

    plan = compile_plan(
        lower, b, dist, machine, design,
        dag=dag, costs=costs,
        in_flight_per_link=MESSAGES_IN_FLIGHT_PER_LINK,
    )
    if plan is None:
        # Zero lookahead or zero-cost fan-out increments: the epoch
        # algebra cannot bound interaction, so take the token engine.
        return execute_array(
            lower, b, dist, machine, design,
            dag=dag, costs=costs, trace_enabled=trace_enabled,
            max_events=max_events, injector=injector,
            recovery=recovery, watchdog=watchdog, stale=stale,
        )
    if epoch_lookahead is not None:
        # Manual epoch-width override (the RunConfig knob): narrower
        # widths split epochs finer; over-wide ones are clamped back to
        # the compiled safe bound on every epoch, so either way the
        # playout stays bit-identical.
        if not epoch_lookahead > 0.0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"epoch_lookahead must be > 0, got {epoch_lookahead}",
                parameter="epoch_lookahead",
                value=epoch_lookahead,
            )
        plan.lookahead = float(epoch_lookahead)
    return execute_plan(plan, trace_enabled=trace_enabled)
