"""Multi-GPU SpTRSV with CUDA Unified Memory (Algorithm 2, Section III).

The synchronization-free execution model of Liu et al. extended across
GPUs by placing the system-wide ``in_degree``/``left_sum`` arrays in
managed memory.  System-scope atomics from all GPUs bounce the managed
pages — the page-thrashing pathology this paper characterises (Fig. 3) —
which is exactly what the timing model charges and the functional
emulation's fault counters measure.

Supports the optional task model (``tasks_per_gpu``) to reproduce the
4GPU-Unified+8task scenario of Fig. 7, where finer tasks *worsen*
unified-memory performance (more page contention at task boundaries,
modelled via the extra kernel-launch serialisation and unchanged fault
costs — the balance gain cannot compensate the fault amplification).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.dag import build_dag
from repro.analysis.levels import compute_levels
from repro.exec_model.costmodel import Design
from repro.exec_model.timeline import simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.solvers.base import SolveResult, TriangularSolver, validate_system
from repro.solvers.numerics import emulate_unified_solve
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import (
    Distribution,
    block_distribution,
    round_robin_distribution,
)

__all__ = ["UnifiedMemorySolver"]


class UnifiedMemorySolver(TriangularSolver):
    """The Unified-Memory baseline design (``4GPU-Unified`` in Fig. 7).

    Parameters
    ----------
    machine:
        Node configuration.  Unified memory needs no P2P clique, so this
        design scales to all 8 DGX-1 GPUs (how Fig. 3 runs 2-8 GPUs).
    tasks_per_gpu:
        None for the baseline block distribution; an integer enables the
        task model on top of unified memory (``4GPU-Unified+8task``).
    emulate:
        If True (default), numerically execute Algorithm 2 through the
        unified-memory emulation (exact fault counting, counter-protocol
        checking).  If False, compute ``x`` with the level-set kernel and
        only price the design — used by large benches where emulation
        time dominates.
    """

    name = "multi-gpu-unified"

    def __init__(
        self,
        machine: MachineConfig | None = None,
        tasks_per_gpu: int | None = None,
        emulate: bool = True,
    ):
        self.machine = (
            machine if machine is not None else dgx1(4, require_p2p=False)
        )
        self.tasks_per_gpu = tasks_per_gpu
        self.emulate = emulate

    def distribution(self, n: int) -> Distribution:
        """The component placement this configuration induces."""
        if self.tasks_per_gpu is None:
            return block_distribution(n, self.machine.n_gpus)
        return round_robin_distribution(
            n, self.machine.n_gpus, self.tasks_per_gpu
        )

    def solve(self, lower: CscMatrix, b: np.ndarray) -> SolveResult:
        b = validate_system(lower, b)
        n = lower.shape[0]
        dist = self.distribution(n)
        dag = build_dag(lower)
        levels = compute_levels(dag)
        if self.emulate:
            x, um = emulate_unified_solve(lower, b, dist, self.machine, levels)
            exact_faults = float(um.fault_count)
            migrated = um.migrated_bytes
        else:
            from repro.solvers.levelset import levelset_forward

            x = levelset_forward(lower, b, levels)
            exact_faults = None
            migrated = None
        report = simulate_execution(
            lower, dist, self.machine, Design.UNIFIED, dag=dag
        )
        if exact_faults is not None:
            # Keep the model's (poll-inclusive) fault estimate but never
            # report fewer faults than the emulation actually generated.
            report = _with_fault_floor(report, exact_faults, migrated)
        return SolveResult(x=x, report=report, solver=self.name)


def _with_fault_floor(report, exact_faults: float, migrated: float | None):
    """Raise the report's fault counters to at least the emulated exact
    values (the fast model adds spin-poll traffic the emulation omits)."""
    from dataclasses import replace

    faults = max(report.page_faults, exact_faults)
    return replace(
        report,
        page_faults=faults,
        migrated_bytes=max(report.migrated_bytes, migrated or 0.0),
    )
