"""Deprecation shims for the entry points the runtime facade replaced.

Every shim warning starts with :data:`SHIM_PREFIX`, which is the exact
filter CI's deprecation-shim job allows::

    python -m pytest -x -q \\
        -W error::DeprecationWarning \\
        -W "ignore:repro.runtime shim:DeprecationWarning"

Any *other* DeprecationWarning escaping the tier-1 suite fails that job,
so new deprecations must either go through :func:`shim_warn` or migrate
their callers.

Policy: every shim names its removal version (``removal=``; default
:data:`DEFAULT_REMOVAL_VERSION`, the next major release), so the warning
tells callers both *what to migrate to* and *when the shim dies*.  The
serve layer introduces no shims of its own; if it ever does, they must
come through :func:`shim_warn` too — the CI job treats an unprefixed
DeprecationWarning from any layer as a failure.
"""

from __future__ import annotations

import warnings

__all__ = ["SHIM_PREFIX", "DEFAULT_REMOVAL_VERSION", "shim_warn"]

#: Leading text of every documented shim warning (CI filters on it).
SHIM_PREFIX = "repro.runtime shim"

#: Release in which currently-documented shims are deleted.
DEFAULT_REMOVAL_VERSION = "2.0.0"


def shim_warn(old: str, new: str, removal: str | None = None) -> None:
    """Emit the documented deprecation warning for a shimmed entry point.

    The message always carries the :data:`SHIM_PREFIX` (the CI filter)
    and the removal version (``removal`` or
    :data:`DEFAULT_REMOVAL_VERSION`).
    """
    removal = removal or DEFAULT_REMOVAL_VERSION
    warnings.warn(
        f"{SHIM_PREFIX}: {old} is deprecated; use {new} instead "
        f"(removal: {removal})",
        DeprecationWarning,
        stacklevel=3,
    )
