"""Deprecation shims for the entry points the runtime facade replaced.

Every shim warning starts with :data:`SHIM_PREFIX`, which is the exact
filter CI's deprecation-shim job allows::

    python -m pytest -x -q \\
        -W error::DeprecationWarning \\
        -W "ignore:repro.runtime shim:DeprecationWarning"

Any *other* DeprecationWarning escaping the tier-1 suite fails that job,
so new deprecations must either go through :func:`shim_warn` or migrate
their callers.
"""

from __future__ import annotations

import warnings

__all__ = ["SHIM_PREFIX", "shim_warn"]

#: Leading text of every documented shim warning (CI filters on it).
SHIM_PREFIX = "repro.runtime shim"


def shim_warn(old: str, new: str) -> None:
    """Emit the documented deprecation warning for a shimmed entry point."""
    warnings.warn(
        f"{SHIM_PREFIX}: {old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
