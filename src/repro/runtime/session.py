"""The unified execution facade: one configured pipeline per session.

Before this module, running a resilient multi-GPU SpTRSV meant wiring
four entry points by hand — ``get_artefacts`` for the analysis bundle, a
distribution factory, :func:`~repro.solvers.des_solver.des_execute` with
injector/recovery/watchdog threaded through, then
:func:`~repro.resilience.recovery.residual_repair` and
:func:`~repro.exec_model.timeline.simulate_execution` for the report.
:class:`SolverSession` owns that pipeline behind one
:class:`~repro.runtime.config.RunConfig`:

* ``session.solve(lower, b)`` — the full configured pipeline (faults,
  recovery, residual certification, fast-model report);
* ``session.execute(lower, b)`` — the event-granular playout alone;
* ``session.simulate(lower)`` — the fast-model pricing alone.

The session pins the matrix's analysis-artefact bundle (DAG, levels,
placement, comm costs) with a strong reference, so repeated calls on the
same matrix never rebuild the structure — the ``build_counts`` /
``hits`` accounting on :class:`~repro.exec_model.artefacts.AnalysisArtefacts`
makes this testable.

:func:`resilient_run` is the functional core of the resilience pipeline
(moved here from ``repro.resilience.recovery``;
:func:`~repro.resilience.recovery.resilient_execute` remains as a
deprecation shim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.config import RunConfig

__all__ = ["SessionResult", "SolverSession", "resilient_run"]


@dataclass(frozen=True)
class SessionResult:
    """Outcome of one :meth:`SolverSession.solve` pipeline run.

    Attributes
    ----------
    x:
        The (possibly repaired) solution vector.
    execution:
        The event-granular :class:`~repro.solvers.des_solver.DesExecution`
        (trace, wall clock, page faults, event count).
    report:
        The fast-model :class:`~repro.exec_model.timeline.ExecutionReport`
        re-pricing of the same system (``None`` when ``with_report`` was
        disabled).
    repaired:
        Components replayed by the residual check.
    residual:
        Final componentwise backward error of ``x``.
    """

    x: np.ndarray
    execution: object
    report: object | None
    repaired: tuple[int, ...]
    residual: float


def resilient_run(
    lower,
    b,
    dist,
    machine,
    design,
    *,
    plan=None,
    recovery=None,
    watchdog=None,
    engine: str = "auto",
    trace_enabled: bool = True,
    stale=None,
):
    """Run one faulted, recovered, residual-checked DES solve.

    Builds the :class:`~repro.resilience.faults.FaultInjector` from
    ``plan``, plays the system out on the selected engine with the
    recovery policy and watchdog wired in, then applies the post-solve
    residual check/repair.  Any failure surfaces as a typed
    :class:`~repro.errors.ReproError` subclass — this function either
    returns a verified solution or raises; it never hangs (watchdog) and
    never returns silently corrupted data (residual check).

    Returns a :class:`~repro.resilience.recovery.ResilientResult`.
    """
    from repro.resilience.recovery import (
        RecoveryPolicy,
        ResilientResult,
        residual_repair,
    )
    from repro.solvers.des_solver import des_execute
    from repro.sparse.validate import residual_norm

    injector = None
    if plan is not None and not plan.is_null:
        injector = plan.build(lower, dist)
    if recovery is None:
        recovery = RecoveryPolicy()
    ex = des_execute(
        lower,
        b,
        dist,
        machine,
        design,
        engine=engine,
        trace_enabled=trace_enabled,
        injector=injector,
        recovery=recovery,
        watchdog=watchdog,
        stale=stale,
    )
    x = ex.x
    repaired: list[int] = []
    if recovery.residual_check:
        x, repaired = residual_repair(
            lower, b, x, ceiling=recovery.residual_ceiling
        )
    return ResilientResult(
        x=x,
        execution=ex,
        repaired=tuple(repaired),
        residual=residual_norm(lower, x, np.asarray(b, dtype=np.float64)),
    )


class SolverSession:
    """One configured execution pipeline with artefact reuse.

    Construct with a :class:`~repro.runtime.config.RunConfig` (or field
    overrides), then call :meth:`solve` / :meth:`execute` /
    :meth:`simulate` any number of times.  The analysis-artefact bundle
    of the most recent matrix is held with a strong reference, so
    repeated calls on the same matrix reuse the DAG, level sets,
    placement, and comm-cost tables instead of rebuilding them.
    """

    def __init__(self, config: RunConfig | None = None, **overrides):
        if config is None:
            config = RunConfig(**overrides)
        elif overrides:
            from dataclasses import replace

            config = replace(config, **overrides)
        self.config = config
        self._machine = None
        self._matrix = None
        self._artefacts = None
        self._dist = None
        self._costs = None

    @property
    def machine(self):
        if self._machine is None:
            self._machine = self.config.resolve_machine()
        return self._machine

    def _bind(self, lower):
        """Pin the matrix's artefact bundle + distribution + cost tables.

        The bundle comes from the shared weakly-keyed cache
        (:func:`~repro.exec_model.artefacts.get_artefacts`); the session's
        strong reference keeps it alive across repeated solves, and the
        per-design comm-cost sub-cache keyed inside the bundle does the
        rest.
        """
        if lower is not self._matrix:
            from repro.exec_model.artefacts import get_artefacts

            self._matrix = lower
            self._artefacts = get_artefacts(lower)
            machine = self.machine
            self._dist = self.config.build_distribution(
                lower.shape[0], machine.n_gpus, lower=lower
            )
            self._costs = self._artefacts.comm_costs(
                machine, self.config.design
            )
        return self._artefacts

    def execute(self, lower, b):
        """Event-granular playout only (no faults, no repair, no report)."""
        from repro.solvers.des_solver import des_execute

        art = self._bind(lower)
        return des_execute(
            lower,
            b,
            self._dist,
            self.machine,
            self.config.design,
            dag=art.dag,
            costs=self._costs,
            trace_enabled=self.config.trace_enabled,
            engine=self.config.engine,
            stale=self.config.build_stale_policy(),
            epoch_lookahead=self.config.epoch_lookahead,
        )

    def simulate(self, lower):
        """Fast-model pricing only: the analytic ExecutionReport."""
        from repro.exec_model.timeline import simulate_execution

        art = self._bind(lower)
        return simulate_execution(
            lower,
            self._dist,
            self.machine,
            self.config.design,
            artefacts=art,
            costs=self._costs,
            scheduler=self.config.scheduler,
        )

    def solve(self, lower, b, *, with_report: bool = True) -> SessionResult:
        """Run the full configured pipeline on one system.

        Plays the system out at event granularity with the configured
        fault plan / recovery policy / watchdog, residual-checks (and
        selectively repairs) the solution per the policy, and — when
        ``with_report`` — re-prices the execution through the fast model
        for a comparable :class:`ExecutionReport`.
        """
        from repro.resilience.recovery import RecoveryPolicy
        from repro.solvers.des_solver import des_execute
        from repro.sparse.validate import residual_norm

        cfg = self.config
        art = self._bind(lower)
        injector = None
        if cfg.plan is not None and not cfg.plan.is_null:
            injector = cfg.plan.build(lower, self._dist)
        recovery = cfg.recovery
        if recovery is None and (injector is not None):
            recovery = RecoveryPolicy()
        ex = des_execute(
            lower,
            b,
            self._dist,
            self.machine,
            cfg.design,
            dag=art.dag,
            costs=self._costs,
            trace_enabled=cfg.trace_enabled,
            engine=cfg.engine,
            injector=injector,
            recovery=recovery,
            watchdog=cfg.build_watchdog(),
            stale=cfg.build_stale_policy(),
            epoch_lookahead=cfg.epoch_lookahead,
        )
        x = ex.x
        repaired: list[int] = []
        if recovery is not None and recovery.residual_check:
            from repro.resilience.recovery import residual_repair

            x, repaired = residual_repair(
                lower, b, x, ceiling=recovery.residual_ceiling
            )
        report = self.simulate(lower) if with_report else None
        return SessionResult(
            x=x,
            execution=ex,
            report=report,
            repaired=tuple(repaired),
            residual=float(
                residual_norm(lower, x, np.asarray(b, dtype=np.float64))
            ),
        )
