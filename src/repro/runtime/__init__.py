"""Unified execution facade: one configured pipeline per session.

:class:`RunConfig` captures every execution knob (design, engine,
scheduler, machine, distribution, fault plan, recovery policy, watchdog,
trace sink) as a frozen validated value; :class:`SolverSession` runs the
configured pipeline — event-granular playout, recovery, residual
certification, fast-model report — with analysis-artefact reuse across
repeated solves.  :func:`resilient_run` is the functional core the
session and the chaos harness share.
"""

from repro.runtime.config import (
    VALID_DISTRIBUTIONS,
    VALID_SCHEDULERS,
    RunConfig,
    load_run_config,
)
from repro.runtime.session import SessionResult, SolverSession, resilient_run
from repro.runtime.shims import SHIM_PREFIX, shim_warn

__all__ = [
    "RunConfig",
    "load_run_config",
    "SolverSession",
    "SessionResult",
    "resilient_run",
    "VALID_DISTRIBUTIONS",
    "VALID_SCHEDULERS",
    "SHIM_PREFIX",
    "shim_warn",
]
