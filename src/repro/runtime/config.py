"""Declarative run configuration for the execution facade.

A :class:`RunConfig` captures every knob of one SpTRSV execution
pipeline — design, engine, fast-model scheduler, machine shape, task
distribution, fault plan, recovery policy, watchdog, and trace sink —
as one frozen, validated value.  It is the single argument of
:class:`repro.runtime.session.SolverSession` and the JSON surface of the
``tools/sweep.py --config`` / ``tools/chaos.py --config`` CLIs
(:meth:`RunConfig.from_mapping` / :meth:`RunConfig.from_json`).

Every unknown key or out-of-domain value raises a typed
:class:`~repro.errors.ConfigurationError` naming the parameter and the
valid choices — no bare ``ValueError`` / ``KeyError`` paths.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.engine.protocol import StalePolicy, VALID_ENGINES, coerce_design
from repro.errors import ConfigurationError
from repro.exec_model.costmodel import Design
from repro.tasks.schedule import VALID_DISTRIBUTIONS

__all__ = [
    "RunConfig",
    "VALID_DISTRIBUTIONS",
    "VALID_SCHEDULERS",
    "load_run_config",
]

#: Fast-model scheduling passes (see ``simulate_execution``).
VALID_SCHEDULERS = ("auto", "batched", "reference")

#: Design aliases accepted on the JSON surface, matching the chaos
#: harness's vocabulary (``zerocopy`` is the read-only NVSHMEM design).
_DESIGN_ALIASES = {"zerocopy": Design.SHMEM_READONLY}


def _choice(parameter: str, value, choices: tuple) -> None:
    if value not in choices:
        raise ConfigurationError(
            f"unknown {parameter} {value!r}; valid choices: "
            + ", ".join(str(c) for c in choices),
            parameter=parameter,
            value=value,
            choices=choices,
        )


@dataclass(frozen=True)
class RunConfig:
    """One validated execution configuration.

    Attributes
    ----------
    design:
        Communication design (:class:`~repro.exec_model.costmodel.Design`
        or its string value; the alias ``"zerocopy"`` maps to
        ``shmem_readonly``).
    engine:
        DES engine: ``"auto"`` / ``"array"`` / ``"vector"`` /
        ``"reference"``.
    scheduler:
        Fast-model scheduling pass: ``"auto"`` / ``"batched"`` /
        ``"reference"``.
    machine:
        Explicit :class:`~repro.machine.node.MachineConfig`; ``None``
        builds a ``dgx1(n_gpus)`` node lazily.
    n_gpus:
        GPU count for the default machine (ignored when ``machine`` is
        given).
    distribution:
        Task distribution: ``"block"`` (contiguous), ``"taskpool"``
        (round-robin, ``tasks_per_gpu`` pools per rank), or
        ``"costaware"`` (greedy LPT over per-task solve+gather+edge
        cost; needs the matrix, so :meth:`build_distribution` must be
        given ``lower``).
    tasks_per_gpu:
        Pool count per rank for the ``taskpool`` / ``costaware``
        distributions.  ``None`` (the default) uses each policy's
        canonical granularity: 2 for ``taskpool``, 1 for ``costaware``
        (its cost-balanced boundaries already encode the imbalance).
    stale_k / stale_ceiling:
        Staleness-bound and backward-error ceiling for the
        ``stale_sync`` design (see
        :class:`~repro.engine.protocol.StalePolicy`).  Leaving both
        ``None`` uses the design's default policy; setting either with
        a non-stale design raises
        :class:`~repro.errors.ConfigurationError`.
    plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` materialised
        per solve.
    recovery:
        Optional :class:`~repro.resilience.recovery.RecoveryPolicy`;
        ``None`` means the default policy for faulted runs.
    watchdog_stall_horizon / watchdog_wall_limit:
        When either is set, each solve carries a fresh
        :class:`~repro.resilience.watchdog.Watchdog` with these bounds
        (a watchdog is single-run state, so the config stores the knobs,
        not the instance).
    trace_enabled:
        Record the full DES trace stream (disable for throughput runs).
    epoch_lookahead:
        Manual epoch width (simulated seconds) for the epoch-compiled
        ``vector`` engine.  ``None`` (the default) lets the compiler
        use its structure-derived safe bound; a narrower explicit width
        splits the playout into finer epochs, and an over-wide one is
        clamped back to the safe bound on every epoch (counted in
        ``EpochStats.overwide_clamps``) — the playout is bit-identical
        either way.  Setting it with the ``reference`` or ``array``
        engine raises :class:`~repro.errors.ConfigurationError` (those
        interpreters have no epochs).
    """

    design: Design | str = Design.SHMEM_READONLY
    engine: str = "auto"
    scheduler: str = "auto"
    machine: object | None = None
    n_gpus: int = 4
    distribution: str = "block"
    tasks_per_gpu: int | None = None
    stale_k: int | None = None
    stale_ceiling: float | None = None
    plan: object | None = None
    recovery: object | None = None
    watchdog_stall_horizon: float | None = None
    watchdog_wall_limit: float | None = None
    trace_enabled: bool = True
    epoch_lookahead: float | None = None

    def __post_init__(self):
        design = self.design
        if isinstance(design, str) and design in _DESIGN_ALIASES:
            design = _DESIGN_ALIASES[design]
        object.__setattr__(self, "design", coerce_design(design))
        _choice("engine", self.engine, VALID_ENGINES)
        _choice("scheduler", self.scheduler, VALID_SCHEDULERS)
        _choice("distribution", self.distribution, VALID_DISTRIBUTIONS)
        if self.n_gpus < 1:
            raise ConfigurationError(
                f"n_gpus must be >= 1, got {self.n_gpus}",
                parameter="n_gpus",
                value=self.n_gpus,
            )
        if self.tasks_per_gpu is not None and self.tasks_per_gpu < 1:
            raise ConfigurationError(
                f"tasks_per_gpu must be >= 1, got {self.tasks_per_gpu}",
                parameter="tasks_per_gpu",
                value=self.tasks_per_gpu,
            )
        if self.epoch_lookahead is not None:
            if self.engine in ("reference", "array"):
                raise ConfigurationError(
                    "epoch_lookahead requires the epoch-compiled engine "
                    f"(vector/auto), got engine={self.engine!r}",
                    parameter="epoch_lookahead",
                    value=self.epoch_lookahead,
                )
            if self.epoch_lookahead <= 0:
                raise ConfigurationError(
                    f"epoch_lookahead must be > 0, got "
                    f"{self.epoch_lookahead}",
                    parameter="epoch_lookahead",
                    value=self.epoch_lookahead,
                )
        # Validate the stale knobs eagerly so a bad config fails at
        # construction, not mid-solve.
        self.build_stale_policy()

    # ------------------------------------------------------------ builders
    def resolve_machine(self):
        """The configured machine, building the default node on demand."""
        if self.machine is not None:
            return self.machine
        from repro.machine.node import dgx1

        return dgx1(self.n_gpus)

    def build_stale_policy(self) -> StalePolicy | None:
        """The :class:`~repro.engine.protocol.StalePolicy` implied by the
        ``stale_k`` / ``stale_ceiling`` knobs, or ``None`` when the
        design is not ``stale_sync``.

        Setting either knob with a non-stale design raises
        :class:`~repro.errors.ConfigurationError`, mirroring
        :func:`~repro.engine.protocol.resolve_stale_policy`.
        """
        from repro.engine.protocol import resolve_stale_policy

        stale = None
        if self.stale_k is not None or self.stale_ceiling is not None:
            defaults = StalePolicy()
            stale = StalePolicy(
                k=self.stale_k if self.stale_k is not None else defaults.k,
                ceiling=(
                    self.stale_ceiling
                    if self.stale_ceiling is not None
                    else defaults.ceiling
                ),
            )
        return resolve_stale_policy(self.design, stale)

    def build_distribution(self, n: int, n_gpus: int, *, lower=None):
        """Materialise the configured distribution for an ``n``-component
        system on ``n_gpus`` ranks.

        The ``costaware`` policy prices tasks from the matrix, so the
        caller must pass the ``lower`` triangular operand; the machine
        and design come from the config itself.
        """
        from repro.tasks.schedule import build_distribution

        machine = None
        if self.distribution == "costaware":
            machine = self.resolve_machine()
        return build_distribution(
            self.distribution,
            n,
            n_gpus,
            tasks_per_gpu=self.tasks_per_gpu,
            lower=lower,
            machine=machine,
            design=self.design,
        )

    def build_watchdog(self):
        """A fresh per-run watchdog, or ``None`` when neither bound is set."""
        if (
            self.watchdog_stall_horizon is None
            and self.watchdog_wall_limit is None
        ):
            return None
        from repro.resilience.watchdog import Watchdog

        horizon = self.watchdog_stall_horizon
        return Watchdog(
            stall_horizon=horizon if horizon is not None else 1.0,
            wall_limit=self.watchdog_wall_limit,
        )

    # -------------------------------------------------------- serialisation
    @classmethod
    def from_mapping(cls, mapping: dict) -> "RunConfig":
        """Build a config from a plain mapping (the ``--config`` surface).

        Scalar keys mirror the dataclass fields.  ``recovery`` accepts a
        mapping of :class:`RecoveryPolicy` fields, ``plan`` a mapping
        ``{"seed": ..., "specs": [{"kind": ..., ...}, ...]}``, and
        ``watchdog`` a mapping with ``stall_horizon`` / ``wall_limit``.
        Unknown keys at any level raise
        :class:`~repro.errors.ConfigurationError`.
        """
        known = {f.name for f in fields(cls)}
        kwargs: dict = {}
        for key, value in mapping.items():
            if key == "recovery" and isinstance(value, dict):
                kwargs["recovery"] = _recovery_from_mapping(value)
            elif key == "plan" and isinstance(value, dict):
                kwargs["plan"] = _plan_from_mapping(value)
            elif key == "watchdog" and isinstance(value, dict):
                extra = set(value) - {"stall_horizon", "wall_limit"}
                if extra:
                    raise ConfigurationError(
                        f"unknown watchdog key(s): {sorted(extra)}",
                        parameter="watchdog",
                        value=sorted(extra),
                    )
                kwargs["watchdog_stall_horizon"] = value.get("stall_horizon")
                kwargs["watchdog_wall_limit"] = value.get("wall_limit")
            elif key in known:
                kwargs[key] = value
            else:
                raise ConfigurationError(
                    f"unknown RunConfig key {key!r}; valid keys: "
                    + ", ".join(sorted(known | {"watchdog"})),
                    parameter=key,
                    value=value,
                    choices=tuple(sorted(known | {"watchdog"})),
                )
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Parse a JSON object into a config (see :meth:`from_mapping`)."""
        try:
            mapping = json.loads(text)
        except json.JSONDecodeError as err:
            raise ConfigurationError(
                f"--config is not valid JSON: {err}", parameter="config"
            ) from None
        if not isinstance(mapping, dict):
            raise ConfigurationError(
                "--config must be a JSON object of RunConfig keys",
                parameter="config",
                value=mapping,
            )
        return cls.from_mapping(mapping)

    def to_mapping(self) -> dict:
        """Round-trippable plain mapping (the ``--config`` JSON surface).

        ``plan`` and ``recovery`` are emitted in the exact nested shapes
        :meth:`from_mapping` accepts, so
        ``RunConfig.from_mapping(cfg.to_mapping())`` reproduces every
        semantic knob — and therefore the same :meth:`fingerprint`.
        Only ``machine`` (a live topology object) is elided.
        """
        out: dict = {
            "design": self.design.value,
            "engine": self.engine,
            "scheduler": self.scheduler,
            "n_gpus": self.n_gpus,
            "distribution": self.distribution,
            "trace_enabled": self.trace_enabled,
        }
        if self.tasks_per_gpu is not None:
            out["tasks_per_gpu"] = self.tasks_per_gpu
        if self.stale_k is not None:
            out["stale_k"] = self.stale_k
        if self.stale_ceiling is not None:
            out["stale_ceiling"] = self.stale_ceiling
        if self.epoch_lookahead is not None:
            out["epoch_lookahead"] = self.epoch_lookahead
        if self.watchdog_stall_horizon is not None:
            out.setdefault("watchdog", {})[
                "stall_horizon"
            ] = self.watchdog_stall_horizon
        if self.watchdog_wall_limit is not None:
            out.setdefault("watchdog", {})[
                "wall_limit"
            ] = self.watchdog_wall_limit
        if self.plan is not None:
            specs = []
            for spec in self.plan.specs:
                row = {"kind": spec.kind.value}
                # Elide per-field defaults (keeps t_end's infinity out
                # of the JSON surface unless explicitly set).
                for f in fields(spec):
                    value = getattr(spec, f.name)
                    if f.name != "kind" and value != f.default:
                        row[f.name] = value
                specs.append(row)
            out["plan"] = {"seed": self.plan.seed, "specs": specs}
        if self.recovery is not None:
            out["recovery"] = {
                f.name: getattr(self.recovery, f.name)
                for f in fields(self.recovery)
            }
        return out

    # --------------------------------------------------------------- hashing
    def canonical_mapping(self) -> dict:
        """Exhaustive, deterministic mapping of every knob that changes
        execution semantics — the input of :meth:`fingerprint`.

        Unlike :meth:`to_mapping` (the human-facing JSON surface, which
        elides defaults and non-JSON objects), this mapping includes the
        fault plan, the recovery policy, and the machine shape, all
        reduced to plain sortable values, so two configs hash equal
        exactly when every semantic knob is equal.
        """
        plan = None
        if self.plan is not None:
            specs = []
            for spec in getattr(self.plan, "specs", ()):
                row = {}
                for f in fields(spec):
                    v = getattr(spec, f.name)
                    row[f.name] = getattr(v, "value", v)
                specs.append(row)
            plan = {"seed": getattr(self.plan, "seed", 0), "specs": specs}
        recovery = None
        if self.recovery is not None:
            recovery = {
                f.name: getattr(self.recovery, f.name)
                for f in fields(self.recovery)
            }
        if self.machine is None:
            machine = ["default-dgx1", self.n_gpus]
        else:
            machine = [
                getattr(self.machine, "name", type(self.machine).__name__),
                getattr(self.machine, "n_gpus", self.n_gpus),
            ]
        return {
            "design": self.design.value,
            "engine": self.engine,
            "scheduler": self.scheduler,
            "machine": machine,
            "n_gpus": self.n_gpus,
            "distribution": self.distribution,
            "tasks_per_gpu": self.tasks_per_gpu,
            "stale_k": self.stale_k,
            "stale_ceiling": self.stale_ceiling,
            "plan": plan,
            "recovery": recovery,
            "watchdog_stall_horizon": self.watchdog_stall_horizon,
            "watchdog_wall_limit": self.watchdog_wall_limit,
            "trace_enabled": self.trace_enabled,
            "epoch_lookahead": self.epoch_lookahead,
        }

    def fingerprint(self) -> str:
        """Stable hex digest of :meth:`canonical_mapping`.

        The hash path behind service-layer artefact sharing and
        circuit-breaker keys: equal configs (however constructed —
        directly, via :meth:`from_mapping`, or round-tripped through
        JSON) produce equal fingerprints, and any semantic difference —
        including fault-plan and ``stale_k`` fields — changes it.
        """
        blob = json.dumps(
            self.canonical_mapping(), sort_keys=True, default=str
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def load_run_config(source: str | None) -> RunConfig:
    """Resolve a CLI ``--config`` argument to a :class:`RunConfig`.

    ``None`` yields the default config; ``@path`` reads a JSON file;
    anything else is parsed as an inline JSON object.  All failure modes
    raise :class:`~repro.errors.ConfigurationError`.
    """
    if source is None:
        return RunConfig()
    if source.startswith("@"):
        try:
            with open(source[1:], "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as err:
            raise ConfigurationError(
                f"cannot read --config file {source[1:]!r}: {err}",
                parameter="config",
                value=source,
            ) from None
    return RunConfig.from_json(source)


def _recovery_from_mapping(mapping: dict):
    from repro.resilience.recovery import RecoveryPolicy

    valid = {f.name for f in fields(RecoveryPolicy)}
    extra = set(mapping) - valid
    if extra:
        raise ConfigurationError(
            f"unknown RecoveryPolicy key(s): {sorted(extra)}; valid keys: "
            + ", ".join(sorted(valid)),
            parameter="recovery",
            value=sorted(extra),
            choices=tuple(sorted(valid)),
        )
    return RecoveryPolicy(**mapping)


def _plan_from_mapping(mapping: dict):
    from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec

    extra = set(mapping) - {"seed", "specs"}
    if extra:
        raise ConfigurationError(
            f"unknown FaultPlan key(s): {sorted(extra)}; valid keys: "
            "seed, specs",
            parameter="plan",
            value=sorted(extra),
        )
    spec_fields = {f.name for f in fields(FaultSpec)}
    specs = []
    for raw in mapping.get("specs", ()):
        if "kind" not in raw:
            raise ConfigurationError(
                "every fault spec needs a 'kind'",
                parameter="plan",
                value=raw,
            )
        bad = set(raw) - spec_fields
        if bad:
            raise ConfigurationError(
                f"unknown FaultSpec key(s): {sorted(bad)}; valid keys: "
                + ", ".join(sorted(spec_fields)),
                parameter="plan",
                value=sorted(bad),
                choices=tuple(sorted(spec_fields)),
            )
        try:
            kind = FaultKind(raw["kind"])
        except ValueError:
            raise ConfigurationError(
                f"unknown fault kind {raw['kind']!r}; valid choices: "
                + ", ".join(k.value for k in FaultKind),
                parameter="plan",
                value=raw["kind"],
                choices=tuple(k.value for k in FaultKind),
            ) from None
        specs.append(FaultSpec(**{**raw, "kind": kind}))
    return FaultPlan(seed=int(mapping.get("seed", 0)), specs=tuple(specs))
