"""Declarative run configuration for the execution facade.

A :class:`RunConfig` captures every knob of one SpTRSV execution
pipeline — design, engine, fast-model scheduler, machine shape, task
distribution, fault plan, recovery policy, watchdog, and trace sink —
as one frozen, validated value.  It is the single argument of
:class:`repro.runtime.session.SolverSession` and the JSON surface of the
``tools/sweep.py --config`` / ``tools/chaos.py --config`` CLIs
(:meth:`RunConfig.from_mapping` / :meth:`RunConfig.from_json`).

Every unknown key or out-of-domain value raises a typed
:class:`~repro.errors.ConfigurationError` naming the parameter and the
valid choices — no bare ``ValueError`` / ``KeyError`` paths.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.engine.protocol import StalePolicy, VALID_ENGINES, coerce_design
from repro.errors import ConfigurationError
from repro.exec_model.costmodel import Design
from repro.tasks.schedule import VALID_DISTRIBUTIONS

__all__ = [
    "RunConfig",
    "VALID_DISTRIBUTIONS",
    "VALID_SCHEDULERS",
    "VALID_TOPOLOGIES",
    "load_run_config",
]

#: Fast-model scheduling passes (see ``simulate_execution``).
VALID_SCHEDULERS = ("auto", "batched", "reference")

#: Machine families ``RunConfig(topology=...)`` can build without a live
#: machine object: the two paper platforms plus the multi-node cluster
#: (NVSwitch islands joined by the InfiniBand tier).
VALID_TOPOLOGIES = ("dgx1", "dgx2", "cluster")

#: Design aliases accepted on the JSON surface, matching the chaos
#: harness's vocabulary (``zerocopy`` is the read-only NVSHMEM design).
_DESIGN_ALIASES = {"zerocopy": Design.SHMEM_READONLY}


def _choice(parameter: str, value, choices: tuple) -> None:
    if value not in choices:
        raise ConfigurationError(
            f"unknown {parameter} {value!r}; valid choices: "
            + ", ".join(str(c) for c in choices),
            parameter=parameter,
            value=value,
            choices=choices,
        )


@dataclass(frozen=True)
class RunConfig:
    """One validated execution configuration.

    Attributes
    ----------
    design:
        Communication design (:class:`~repro.exec_model.costmodel.Design`
        or its string value; the alias ``"zerocopy"`` maps to
        ``shmem_readonly``).
    engine:
        DES engine: ``"auto"`` / ``"array"`` / ``"vector"`` /
        ``"reference"``.
    scheduler:
        Fast-model scheduling pass: ``"auto"`` / ``"batched"`` /
        ``"reference"``.
    machine:
        Explicit :class:`~repro.machine.node.MachineConfig`; ``None``
        builds the machine named by ``topology`` lazily (a
        ``dgx1(n_gpus)`` node by default).
    n_gpus:
        GPU count for the default machine (ignored when ``machine`` is
        given; derived as ``n_nodes * gpus_per_node`` when the node
        axis is set).
    topology:
        Machine family to build when no live ``machine`` is given:
        ``"dgx1"`` (the default), ``"dgx2"``, or ``"cluster"`` —
        NVSwitch islands joined by the InfiniBand tier, which requires
        the node axis below.
    n_nodes / gpus_per_node:
        The node axis of a ``"cluster"`` topology (both or neither).
        Setting it makes scale a config knob: ``n_gpus`` is forced to
        ``n_nodes * gpus_per_node`` (an explicit conflicting ``n_gpus``
        is a typed error).
    distribution:
        Task distribution: ``"block"`` (contiguous), ``"taskpool"``
        (round-robin, ``tasks_per_gpu`` pools per rank),
        ``"costaware"`` (greedy LPT over per-task solve+gather+edge
        cost; needs the matrix, so :meth:`build_distribution` must be
        given ``lower``), or ``"hierarchical"`` (node-aware two-level
        round-robin; needs the node axis).
    node_run:
        Locality knob of the ``"hierarchical"`` distribution: how many
        consecutive tasks stay on one node before the deal moves to the
        next (see
        :func:`~repro.tasks.hierarchical.hierarchical_distribution`).
        ``None`` uses the policy default (``2 * gpus_per_node``);
        setting it with any other distribution raises
        :class:`~repro.errors.ConfigurationError`.
    tasks_per_gpu:
        Pool count per rank for the ``taskpool`` / ``costaware``
        distributions.  ``None`` (the default) uses each policy's
        canonical granularity: 2 for ``taskpool``, 1 for ``costaware``
        (its cost-balanced boundaries already encode the imbalance).
    stale_k / stale_ceiling:
        Staleness-bound and backward-error ceiling for the
        ``stale_sync`` design (see
        :class:`~repro.engine.protocol.StalePolicy`).  Leaving both
        ``None`` uses the design's default policy; setting either with
        a non-stale design raises
        :class:`~repro.errors.ConfigurationError`.
    plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` materialised
        per solve.
    recovery:
        Optional :class:`~repro.resilience.recovery.RecoveryPolicy`;
        ``None`` means the default policy for faulted runs.
    watchdog_stall_horizon / watchdog_wall_limit:
        When either is set, each solve carries a fresh
        :class:`~repro.resilience.watchdog.Watchdog` with these bounds
        (a watchdog is single-run state, so the config stores the knobs,
        not the instance).
    trace_enabled:
        Record the full DES trace stream (disable for throughput runs).
    epoch_lookahead:
        Manual epoch width (simulated seconds) for the epoch-compiled
        ``vector`` engine.  ``None`` (the default) lets the compiler
        use its structure-derived safe bound; a narrower explicit width
        splits the playout into finer epochs, and an over-wide one is
        clamped back to the safe bound on every epoch (counted in
        ``EpochStats.overwide_clamps``) — the playout is bit-identical
        either way.  Setting it with the ``reference`` or ``array``
        engine raises :class:`~repro.errors.ConfigurationError` (those
        interpreters have no epochs).
    """

    design: Design | str = Design.SHMEM_READONLY
    engine: str = "auto"
    scheduler: str = "auto"
    machine: object | None = None
    n_gpus: int = 4
    topology: str | None = None
    n_nodes: int | None = None
    gpus_per_node: int | None = None
    distribution: str = "block"
    tasks_per_gpu: int | None = None
    node_run: int | None = None
    stale_k: int | None = None
    stale_ceiling: float | None = None
    plan: object | None = None
    recovery: object | None = None
    watchdog_stall_horizon: float | None = None
    watchdog_wall_limit: float | None = None
    trace_enabled: bool = True
    epoch_lookahead: float | None = None

    def __post_init__(self):
        design = self.design
        if isinstance(design, str) and design in _DESIGN_ALIASES:
            design = _DESIGN_ALIASES[design]
        object.__setattr__(self, "design", coerce_design(design))
        _choice("engine", self.engine, VALID_ENGINES)
        _choice("scheduler", self.scheduler, VALID_SCHEDULERS)
        _choice("distribution", self.distribution, VALID_DISTRIBUTIONS)
        if self.n_gpus < 1:
            raise ConfigurationError(
                f"n_gpus must be >= 1, got {self.n_gpus}",
                parameter="n_gpus",
                value=self.n_gpus,
            )
        self._validate_node_axis()
        if self.tasks_per_gpu is not None and self.tasks_per_gpu < 1:
            raise ConfigurationError(
                f"tasks_per_gpu must be >= 1, got {self.tasks_per_gpu}",
                parameter="tasks_per_gpu",
                value=self.tasks_per_gpu,
            )
        if self.epoch_lookahead is not None:
            if self.engine in ("reference", "array"):
                raise ConfigurationError(
                    "epoch_lookahead requires the epoch-compiled engine "
                    f"(vector/auto), got engine={self.engine!r}",
                    parameter="epoch_lookahead",
                    value=self.epoch_lookahead,
                )
            if self.epoch_lookahead <= 0:
                raise ConfigurationError(
                    f"epoch_lookahead must be > 0, got "
                    f"{self.epoch_lookahead}",
                    parameter="epoch_lookahead",
                    value=self.epoch_lookahead,
                )
        # Validate the stale knobs eagerly so a bad config fails at
        # construction, not mid-solve.
        self.build_stale_policy()

    def _validate_node_axis(self) -> None:
        """Coherence of the scale-out knobs (topology / node axis)."""
        if self.topology is not None:
            _choice("topology", self.topology, VALID_TOPOLOGIES)
        if (self.n_nodes is None) != (self.gpus_per_node is None):
            raise ConfigurationError(
                "the node axis needs both n_nodes and gpus_per_node "
                f"(got n_nodes={self.n_nodes}, "
                f"gpus_per_node={self.gpus_per_node})",
                parameter="n_nodes",
                value=(self.n_nodes, self.gpus_per_node),
            )
        if self.n_nodes is not None:
            if self.n_nodes < 1 or self.gpus_per_node < 1:
                raise ConfigurationError(
                    f"node axis must be >= 1x1, got "
                    f"{self.n_nodes}x{self.gpus_per_node}",
                    parameter="n_nodes",
                    value=(self.n_nodes, self.gpus_per_node),
                )
            if self.topology in ("dgx1", "dgx2"):
                raise ConfigurationError(
                    f"topology {self.topology!r} is a single node; the "
                    "node axis requires topology='cluster'",
                    parameter="topology",
                    value=self.topology,
                )
            derived = self.n_nodes * self.gpus_per_node
            if self.n_gpus not in (4, derived):
                # 4 is the field default, silently superseded by the
                # node axis; any other explicit value must agree.
                raise ConfigurationError(
                    f"n_gpus={self.n_gpus} conflicts with the node axis "
                    f"{self.n_nodes}x{self.gpus_per_node} "
                    f"(= {derived} GPUs)",
                    parameter="n_gpus",
                    value=self.n_gpus,
                )
            object.__setattr__(self, "n_gpus", derived)
            if self.machine is not None and self.machine.n_gpus != derived:
                raise ConfigurationError(
                    f"machine has {self.machine.n_gpus} GPUs but the "
                    f"node axis is {self.n_nodes}x{self.gpus_per_node}",
                    parameter="machine",
                    value=self.machine,
                )
        elif self.topology == "cluster":
            raise ConfigurationError(
                "topology 'cluster' needs the node axis; pass n_nodes= "
                "and gpus_per_node=",
                parameter="topology",
                value=self.topology,
            )
        if self.node_run is not None:
            if self.distribution != "hierarchical":
                raise ConfigurationError(
                    "node_run is the hierarchical locality knob; "
                    f"distribution {self.distribution!r} does not "
                    "accept it",
                    parameter="node_run",
                    value=self.node_run,
                )
            if self.node_run < 1:
                raise ConfigurationError(
                    f"node_run must be >= 1, got {self.node_run}",
                    parameter="node_run",
                    value=self.node_run,
                )
        if self.distribution == "hierarchical" and self.n_nodes is None:
            shape = (
                getattr(self.machine.topology, "node_shape", None)
                if self.machine is not None
                else None
            )
            if shape is None:
                raise ConfigurationError(
                    "distribution 'hierarchical' places along the node "
                    "axis; pass n_nodes= and gpus_per_node= (or a "
                    "mesh-built machine)",
                    parameter="distribution",
                    value=self.distribution,
                )

    # ------------------------------------------------------------ builders
    def resolve_machine(self):
        """The configured machine, building the named topology on demand."""
        if self.machine is not None:
            return self.machine
        if self.n_nodes is not None:
            from repro.machine.multinode import cluster

            return cluster(self.n_nodes, self.gpus_per_node)
        if self.topology == "dgx2":
            from repro.machine.node import dgx2

            return dgx2(self.n_gpus)
        from repro.machine.node import dgx1

        return dgx1(self.n_gpus)

    def machine_shape(self) -> tuple[str, int, int]:
        """``(topology_name, n_nodes, gpus_per_node)`` of the machine.

        The serialisable shape of the fabric — what
        :meth:`canonical_mapping` hashes so service-layer artefact
        fingerprints distinguish topologies (a 2x4 cluster is not a
        1x8 island, even though both run 8 ranks).  Live machines
        report their topology's ``node_shape`` when mesh-built and
        ``(1, n_gpus)`` otherwise.
        """
        if self.machine is not None:
            topo = self.machine.topology
            shape = getattr(topo, "node_shape", None)
            if shape is None:
                shape = (1, self.machine.n_gpus)
            return (topo.name, int(shape[0]), int(shape[1]))
        if self.n_nodes is not None:
            return (
                f"cluster-{self.n_nodes}x{self.gpus_per_node}",
                self.n_nodes,
                self.gpus_per_node,
            )
        if self.topology == "dgx2":
            return ("DGX-2", 1, self.n_gpus)
        return ("DGX-1", 1, self.n_gpus)

    @property
    def effective_n_gpus(self) -> int:
        """Rank count of the resolved machine (without building it)."""
        if self.machine is not None:
            return self.machine.n_gpus
        return self.n_gpus

    def build_stale_policy(self) -> StalePolicy | None:
        """The :class:`~repro.engine.protocol.StalePolicy` implied by the
        ``stale_k`` / ``stale_ceiling`` knobs, or ``None`` when the
        design is not ``stale_sync``.

        Setting either knob with a non-stale design raises
        :class:`~repro.errors.ConfigurationError`, mirroring
        :func:`~repro.engine.protocol.resolve_stale_policy`.
        """
        from repro.engine.protocol import resolve_stale_policy

        stale = None
        if self.stale_k is not None or self.stale_ceiling is not None:
            defaults = StalePolicy()
            stale = StalePolicy(
                k=self.stale_k if self.stale_k is not None else defaults.k,
                ceiling=(
                    self.stale_ceiling
                    if self.stale_ceiling is not None
                    else defaults.ceiling
                ),
            )
        return resolve_stale_policy(self.design, stale)

    def build_distribution(self, n: int, n_gpus: int, *, lower=None):
        """Materialise the configured distribution for an ``n``-component
        system on ``n_gpus`` ranks.

        The ``costaware`` policy prices tasks from the matrix, so the
        caller must pass the ``lower`` triangular operand; the machine
        and design come from the config itself.
        """
        from repro.tasks.schedule import build_distribution

        machine = None
        if self.distribution in ("costaware", "hierarchical"):
            machine = self.resolve_machine()
        return build_distribution(
            self.distribution,
            n,
            n_gpus,
            tasks_per_gpu=self.tasks_per_gpu,
            lower=lower,
            machine=machine,
            design=self.design,
            n_nodes=self.n_nodes,
            gpus_per_node=self.gpus_per_node,
            node_run=self.node_run,
        )

    def build_watchdog(self):
        """A fresh per-run watchdog, or ``None`` when neither bound is set."""
        if (
            self.watchdog_stall_horizon is None
            and self.watchdog_wall_limit is None
        ):
            return None
        from repro.resilience.watchdog import Watchdog

        horizon = self.watchdog_stall_horizon
        return Watchdog(
            stall_horizon=horizon if horizon is not None else 1.0,
            wall_limit=self.watchdog_wall_limit,
        )

    # -------------------------------------------------------- serialisation
    @classmethod
    def from_mapping(cls, mapping: dict) -> "RunConfig":
        """Build a config from a plain mapping (the ``--config`` surface).

        Scalar keys mirror the dataclass fields.  ``recovery`` accepts a
        mapping of :class:`RecoveryPolicy` fields, ``plan`` a mapping
        ``{"seed": ..., "specs": [{"kind": ..., ...}, ...]}``, and
        ``watchdog`` a mapping with ``stall_horizon`` / ``wall_limit``.
        Unknown keys at any level raise
        :class:`~repro.errors.ConfigurationError`.
        """
        known = {f.name for f in fields(cls)}
        kwargs: dict = {}
        shape = None
        for key, value in mapping.items():
            if key == "machine_shape":
                shape = _validate_machine_shape(value)
            elif key == "recovery" and isinstance(value, dict):
                kwargs["recovery"] = _recovery_from_mapping(value)
            elif key == "plan" and isinstance(value, dict):
                kwargs["plan"] = _plan_from_mapping(value)
            elif key == "watchdog" and isinstance(value, dict):
                extra = set(value) - {"stall_horizon", "wall_limit"}
                if extra:
                    raise ConfigurationError(
                        f"unknown watchdog key(s): {sorted(extra)}",
                        parameter="watchdog",
                        value=sorted(extra),
                    )
                kwargs["watchdog_stall_horizon"] = value.get("stall_horizon")
                kwargs["watchdog_wall_limit"] = value.get("wall_limit")
            elif key in known:
                kwargs[key] = value
            else:
                valid = known | {"watchdog", "machine_shape"}
                raise ConfigurationError(
                    f"unknown RunConfig key {key!r}; valid keys: "
                    + ", ".join(sorted(valid)),
                    parameter=key,
                    value=value,
                    choices=tuple(sorted(valid)),
                )
        if shape is not None:
            _apply_machine_shape(shape, kwargs)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Parse a JSON object into a config (see :meth:`from_mapping`)."""
        try:
            mapping = json.loads(text)
        except json.JSONDecodeError as err:
            raise ConfigurationError(
                f"--config is not valid JSON: {err}", parameter="config"
            ) from None
        if not isinstance(mapping, dict):
            raise ConfigurationError(
                "--config must be a JSON object of RunConfig keys",
                parameter="config",
                value=mapping,
            )
        return cls.from_mapping(mapping)

    def to_mapping(self) -> dict:
        """Round-trippable plain mapping (the ``--config`` JSON surface).

        ``plan`` and ``recovery`` are emitted in the exact nested shapes
        :meth:`from_mapping` accepts, so
        ``RunConfig.from_mapping(cfg.to_mapping())`` reproduces every
        semantic knob — and therefore the same :meth:`fingerprint`.
        A live ``machine`` object is not emitted directly; its shape is
        (the ``machine_shape`` key, see :meth:`machine_shape`), so the
        round trip rebuilds an equivalent fabric for the cluster and
        DGX families and keeps the fingerprint stable.
        """
        out: dict = {
            "design": self.design.value,
            "engine": self.engine,
            "scheduler": self.scheduler,
            "n_gpus": self.effective_n_gpus,
            "distribution": self.distribution,
            "trace_enabled": self.trace_enabled,
        }
        if self.topology is not None:
            out["topology"] = self.topology
        if self.n_nodes is not None:
            out["n_nodes"] = self.n_nodes
            out["gpus_per_node"] = self.gpus_per_node
        if self.node_run is not None:
            out["node_run"] = self.node_run
        if self.machine is not None:
            out["machine_shape"] = list(self.machine_shape())
        if self.tasks_per_gpu is not None:
            out["tasks_per_gpu"] = self.tasks_per_gpu
        if self.stale_k is not None:
            out["stale_k"] = self.stale_k
        if self.stale_ceiling is not None:
            out["stale_ceiling"] = self.stale_ceiling
        if self.epoch_lookahead is not None:
            out["epoch_lookahead"] = self.epoch_lookahead
        if self.watchdog_stall_horizon is not None:
            out.setdefault("watchdog", {})[
                "stall_horizon"
            ] = self.watchdog_stall_horizon
        if self.watchdog_wall_limit is not None:
            out.setdefault("watchdog", {})[
                "wall_limit"
            ] = self.watchdog_wall_limit
        if self.plan is not None:
            specs = []
            for spec in self.plan.specs:
                row = {"kind": spec.kind.value}
                # Elide per-field defaults (keeps t_end's infinity out
                # of the JSON surface unless explicitly set).
                for f in fields(spec):
                    value = getattr(spec, f.name)
                    if f.name != "kind" and value != f.default:
                        row[f.name] = value
                specs.append(row)
            out["plan"] = {"seed": self.plan.seed, "specs": specs}
        if self.recovery is not None:
            out["recovery"] = {
                f.name: getattr(self.recovery, f.name)
                for f in fields(self.recovery)
            }
        return out

    # --------------------------------------------------------------- hashing
    def canonical_mapping(self) -> dict:
        """Exhaustive, deterministic mapping of every knob that changes
        execution semantics — the input of :meth:`fingerprint`.

        Unlike :meth:`to_mapping` (the human-facing JSON surface, which
        elides defaults and non-JSON objects), this mapping includes the
        fault plan, the recovery policy, and the machine shape, all
        reduced to plain sortable values, so two configs hash equal
        exactly when every semantic knob is equal.
        """
        plan = None
        if self.plan is not None:
            specs = []
            for spec in getattr(self.plan, "specs", ()):
                row = {}
                for f in fields(spec):
                    v = getattr(spec, f.name)
                    row[f.name] = getattr(v, "value", v)
                specs.append(row)
            plan = {"seed": getattr(self.plan, "seed", 0), "specs": specs}
        recovery = None
        if self.recovery is not None:
            recovery = {
                f.name: getattr(self.recovery, f.name)
                for f in fields(self.recovery)
            }
        return {
            "design": self.design.value,
            "engine": self.engine,
            "scheduler": self.scheduler,
            "machine": list(self.machine_shape()),
            "n_gpus": self.effective_n_gpus,
            "distribution": self.distribution,
            "tasks_per_gpu": self.tasks_per_gpu,
            "node_run": self.node_run,
            "stale_k": self.stale_k,
            "stale_ceiling": self.stale_ceiling,
            "plan": plan,
            "recovery": recovery,
            "watchdog_stall_horizon": self.watchdog_stall_horizon,
            "watchdog_wall_limit": self.watchdog_wall_limit,
            "trace_enabled": self.trace_enabled,
            "epoch_lookahead": self.epoch_lookahead,
        }

    def fingerprint(self) -> str:
        """Stable hex digest of :meth:`canonical_mapping`.

        The hash path behind service-layer artefact sharing and
        circuit-breaker keys: equal configs (however constructed —
        directly, via :meth:`from_mapping`, or round-tripped through
        JSON) produce equal fingerprints, and any semantic difference —
        including fault-plan and ``stale_k`` fields — changes it.
        """
        blob = json.dumps(
            self.canonical_mapping(), sort_keys=True, default=str
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def load_run_config(source: str | None) -> RunConfig:
    """Resolve a CLI ``--config`` argument to a :class:`RunConfig`.

    ``None`` yields the default config; ``@path`` reads a JSON file;
    anything else is parsed as an inline JSON object.  All failure modes
    raise :class:`~repro.errors.ConfigurationError`.
    """
    if source is None:
        return RunConfig()
    if source.startswith("@"):
        try:
            with open(source[1:], "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as err:
            raise ConfigurationError(
                f"cannot read --config file {source[1:]!r}: {err}",
                parameter="config",
                value=source,
            ) from None
    return RunConfig.from_json(source)


def _validate_machine_shape(value) -> tuple[str, int, int]:
    """Validate a ``machine_shape`` entry: ``[name, n_nodes, gpus_per_node]``."""
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 3
        or not isinstance(value[0], str)
    ):
        raise ConfigurationError(
            "machine_shape must be [topology_name, n_nodes, gpus_per_node], "
            f"got {value!r}",
            parameter="machine_shape",
            value=value,
        )
    name, n_nodes, gpus_per_node = value[0], int(value[1]), int(value[2])
    if n_nodes < 1 or gpus_per_node < 1:
        raise ConfigurationError(
            f"machine_shape axis must be >= 1x1, got {value!r}",
            parameter="machine_shape",
            value=value,
        )
    return name, n_nodes, gpus_per_node


def _apply_machine_shape(shape: tuple[str, int, int], kwargs: dict) -> None:
    """Fold a ``machine_shape`` entry into the config kwargs.

    Cluster shapes reconstruct the node axis (and therefore an
    equivalent fabric via :meth:`RunConfig.resolve_machine`); DGX shapes
    select the topology family.  Explicit keys win, but a conflicting
    explicit node axis is a typed error rather than a silent override.
    """
    name, n_nodes, gpus_per_node = shape
    if name.startswith("cluster-"):
        for key, value in (("n_nodes", n_nodes), ("gpus_per_node", gpus_per_node)):
            if key in kwargs and kwargs[key] != value:
                raise ConfigurationError(
                    f"machine_shape {list(shape)!r} conflicts with "
                    f"{key}={kwargs[key]}",
                    parameter="machine_shape",
                    value=list(shape),
                )
            kwargs[key] = value
        kwargs.setdefault("topology", "cluster")
    elif name == "DGX-2":
        kwargs.setdefault("topology", "dgx2")
        kwargs.setdefault("n_gpus", n_nodes * gpus_per_node)
    else:
        # DGX-1 / unknown single-node fabrics: the default family.
        kwargs.setdefault("n_gpus", n_nodes * gpus_per_node)


def _recovery_from_mapping(mapping: dict):
    from repro.resilience.recovery import RecoveryPolicy

    valid = {f.name for f in fields(RecoveryPolicy)}
    extra = set(mapping) - valid
    if extra:
        raise ConfigurationError(
            f"unknown RecoveryPolicy key(s): {sorted(extra)}; valid keys: "
            + ", ".join(sorted(valid)),
            parameter="recovery",
            value=sorted(extra),
            choices=tuple(sorted(valid)),
        )
    return RecoveryPolicy(**mapping)


def _plan_from_mapping(mapping: dict):
    from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec

    extra = set(mapping) - {"seed", "specs"}
    if extra:
        raise ConfigurationError(
            f"unknown FaultPlan key(s): {sorted(extra)}; valid keys: "
            "seed, specs",
            parameter="plan",
            value=sorted(extra),
        )
    spec_fields = {f.name for f in fields(FaultSpec)}
    specs = []
    for raw in mapping.get("specs", ()):
        if "kind" not in raw:
            raise ConfigurationError(
                "every fault spec needs a 'kind'",
                parameter="plan",
                value=raw,
            )
        bad = set(raw) - spec_fields
        if bad:
            raise ConfigurationError(
                f"unknown FaultSpec key(s): {sorted(bad)}; valid keys: "
                + ", ".join(sorted(spec_fields)),
                parameter="plan",
                value=sorted(bad),
                choices=tuple(sorted(spec_fields)),
            )
        try:
            kind = FaultKind(raw["kind"])
        except ValueError:
            raise ConfigurationError(
                f"unknown fault kind {raw['kind']!r}; valid choices: "
                + ", ".join(k.value for k in FaultKind),
                parameter="plan",
                value=raw["kind"],
                choices=tuple(k.value for k in FaultKind),
            ) from None
        specs.append(FaultSpec(**{**raw, "kind": kind}))
    return FaultPlan(seed=int(mapping.get("seed", 0)), specs=tuple(specs))
