"""The discrete-event simulator core (reference engine).

Processes are plain Python generators that yield commands from
:mod:`repro.engine.events`.  The simulator owns the clock and an event
heap; it resumes each process at its scheduled time, interprets the next
command, and re-schedules.  Determinism: ties at equal time resolve in
scheduling order (a monotone sequence number from the shared
:class:`~repro.engine.sequence.MonotonicSequence`), so a given workload
always produces the identical trace.

Heap entries are :class:`~repro.engine.events.ScheduledEvent` records
ordered by ``(time, seq)``; ``seq`` is unique, so ties never compare
the process object.  This is the *reference* engine — kept deliberately
literal (one generator per process, one scheduler entry per event) as
the correctness oracle; the array-based fast path in
:mod:`repro.solvers.des_array` replays the same command semantics
without any of these per-event objects and must stay bit-identical to
it (``tests/test_des_array.py`` enforces that).

Example
-------
>>> from repro.engine.des import Simulator
>>> from repro.engine.events import Timeout
>>> sim = Simulator()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker("b", 2.0)); _ = sim.spawn(worker("a", 1.0))
>>> sim.run()
4
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Any, Generator, Hashable

from repro.engine.events import (
    Acquire,
    Release,
    ScheduledEvent,
    Signal,
    Timeout,
    Wait,
)
from repro.engine.resources import Resource
from repro.engine.sequence import MonotonicSequence
from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator", "Process"]

Process = Generator[Any, None, None]


class Simulator:
    """Event-driven scheduler over generator processes.

    ``watchdog`` is an optional progress monitor (duck-typed to
    :class:`repro.resilience.watchdog.Watchdog`): its ``check(now)`` is
    invoked once per *distinct timestamp* the clock advances to, so it
    can raise :class:`~repro.errors.DeadlockError` on no-progress stalls
    without adding events of its own (determinism and trace parity with
    the array engine are preserved).
    """

    def __init__(self, max_events: int = 50_000_000, watchdog=None):
        self.now: float = 0.0
        self._heap: list[ScheduledEvent] = []
        self._seq = MonotonicSequence()
        self._waiting: dict[Hashable, list[Process]] = defaultdict(list)
        self._alive: int = 0
        self._events_processed: int = 0
        self._max_events = max_events
        self.watchdog = watchdog
        #: Optional callable mapping the blocked-channel dict to extra
        #: deadlock diagnostics (the DES solver installs one that
        #: resolves ``("ready", i)`` channels to the per-GPU
        #: pending-dependency frontier, so service logs can say *which*
        #: components on *which* ranks were starved).
        self.frontier_resolver = None

    # ------------------------------------------------------------------
    def spawn(self, process: Process, delay: float = 0.0) -> Process:
        """Register a new process, starting after ``delay``."""
        self._alive += 1
        self._schedule(process, self.now + delay)
        return process

    def _schedule(self, process: Process, time: float) -> None:
        heapq.heappush(
            self._heap, ScheduledEvent(time, self._seq.next(), process)
        )

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> int:
        """Run until no events remain (or past ``until``).

        Returns the number of events processed.  Raises
        :class:`SimulationError` if processes remain alive but no event is
        schedulable (deadlock), or if the event budget is exhausted
        (livelock guard).

        Both bounds are **timestamp-atomic**: the simulator never stops
        in the middle of a batch of equal-time events.

        * ``until`` — every event with ``time <= until`` is processed
          (ties exactly at ``until`` drain in ``seq`` order); the first
          event strictly past ``until`` stays pending for a later
          :meth:`run` call.
        * ``max_events`` (constructor budget) — once the budget is
          reached, events already scheduled at the *current* timestamp
          still drain in ``seq`` order, then the guard raises before the
          clock advances.  If draining the tie batch empties the heap,
          the run completes normally — the guard only trips on work that
          would move time forward, which is what a livelock does.

        When both bounds apply at once, ``until`` wins: reaching the
        time horizon is a normal return, never a budget error.
        """
        start_count = self._events_processed
        heap = self._heap
        watchdog = self.watchdog
        while heap:
            head_time = heap[0].time
            if until is not None and head_time > until:
                break
            if (
                self._events_processed >= self._max_events
                and head_time > self.now
            ):
                raise SimulationError(
                    f"event budget {self._max_events} exhausted (livelock?)"
                )
            if watchdog is not None and head_time > self.now:
                watchdog.check(head_time)
            ev = heapq.heappop(heap)
            self.now = ev.time
            self._step(ev.process)
            self._events_processed += 1
        if self._alive > 0 and not heap:
            # Quiescent with waiters: no future run() call can ever wake
            # these processes (the heap is empty), so returning silently
            # would hide a deadlock — regardless of the ``until`` bound.
            blocked = {
                repr(ch): len(ps) for ch, ps in self._waiting.items() if ps
            }
            names = sorted(
                {
                    getattr(p, "__name__", "process")
                    for ps in self._waiting.values()
                    for p in ps
                }
            )
            diagnostics = {
                "alive": self._alive,
                "now": self.now,
                "blocked_process_kinds": names,
                "events_processed": self._events_processed,
            }
            if self.frontier_resolver is not None:
                diagnostics.update(self.frontier_resolver(self._waiting))
            raise DeadlockError(
                f"deadlock: {self._alive} processes alive with empty event "
                f"heap; waiters per channel: {blocked}",
                blocked=blocked,
                diagnostics=diagnostics,
            )
        return self._events_processed - start_count

    # ------------------------------------------------------------------
    def _step(self, process: Process) -> None:
        """Resume ``process`` and interpret commands until it suspends."""
        while True:
            try:
                cmd = next(process)
            except StopIteration:
                self._alive -= 1
                return
            if isinstance(cmd, Timeout):
                self._schedule(process, self.now + cmd.delay)
                return
            if isinstance(cmd, Acquire):
                res: Resource = cmd.resource
                if res.try_acquire(process):
                    continue  # granted synchronously
                return  # parked in the resource queue
            if isinstance(cmd, Release):
                waiter = cmd.resource.release()
                if waiter is not None:
                    self._schedule(waiter, self.now)
                continue
            if isinstance(cmd, Wait):
                self._waiting[cmd.channel].append(process)
                return
            if isinstance(cmd, Signal):
                woken = self._waiting.pop(cmd.channel, [])
                for w in woken:
                    self._schedule(w, self.now)
                continue
            raise SimulationError(f"unknown command {cmd!r} from process")

    # ------------------------------------------------------------------
    def resume_from_resource(self, process: Process) -> None:
        """Resume a process that a Resource handed a unit to (internal)."""
        self._schedule(process, self.now)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def alive(self) -> int:
        """Processes spawned but not yet finished."""
        return self._alive
