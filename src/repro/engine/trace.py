"""Execution trace recording for simulated solves.

A :class:`Trace` collects timestamped records (component solved, page
fault, remote get, ...) during a simulation.  Tests use it to assert
ordering invariants (no component solved before its dependencies); benches
use the aggregated counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated timestamp.
    kind:
        Record category.  The DES tier emits ``"dispatch"`` (warp slot
        acquired), ``"solve"`` (component value computed), ``"release"``
        (slot retired), ``"fault"`` (unified-memory page fault), and
        ``"xfer_begin"``/``"xfer_end"`` (cross-GPU message occupying a
        link channel, ``detail=(src_pe, dst_pe, component)``) — the
        record vocabulary :mod:`repro.verify.causality` replays.
    gpu:
        GPU/PE that generated the record (-1 if not applicable).
    detail:
        Category-specific payload (component id, page id, ...).
    """

    time: float
    kind: str
    gpu: int
    detail: Any = None


@dataclass
class Trace:
    """Append-only trace with cheap aggregate queries."""

    enabled: bool = True
    records: list[TraceRecord] = field(default_factory=list)
    _counts: Counter = field(default_factory=Counter)

    def emit(self, time: float, kind: str, gpu: int = -1, detail: Any = None) -> None:
        """Record one event (no-op when disabled, but counters still run)."""
        self._counts[kind] += 1
        if self.enabled:
            self.records.append(TraceRecord(time, kind, gpu, detail))

    def bulk_count(self, kind: str, n: int) -> None:
        """Fold ``n`` occurrences of ``kind`` into the counters at once.

        The array engine batches its per-kind tallies locally while the
        trace is disabled and merges them here at the end of a run, so
        the final counter state matches a record-by-record
        :meth:`emit` stream exactly.
        """
        if n:
            self._counts[kind] += n

    def count(self, kind: str) -> int:
        """Total records of a category (cheap; works even when disabled)."""
        return self._counts.get(kind, 0)

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate records of one category in emission order."""
        return (r for r in self.records if r.kind == kind)

    def solve_order(self) -> list[Any]:
        """Component ids in the order they were solved."""
        return [r.detail for r in self.of_kind("solve")]

    def last_time(self) -> float:
        """Timestamp of the latest record (0.0 when empty)."""
        return max((r.time for r in self.records), default=0.0)

    def __len__(self) -> int:
        return len(self.records)
