"""Single-source SpTRSV execution protocol shared by both DES engines.

PRs 3-4 implemented the event-granular execution semantics — the
component and edge lifecycles, the fault/retry/remap protocol, and every
timing rule — twice, bit-for-bit: once in the literal reference engine
(:mod:`repro.solvers.des_solver`, one generator per process) and once in
the token machine (:mod:`repro.solvers.des_array`, flat integer state
machine).  Parity was enforced only by tests, so every new design, fault
kind, or scheduling policy cost two synchronized implementations.

This module is now the *only* home of that protocol.  It provides:

* **lifecycle state tables** — the component states
  (:data:`COMP_ACQUIRE` … :data:`COMP_DEAD`) and cross-GPU transfer
  states (:data:`XFER_CLAIM` … :data:`XFER_RETIRE`) with their
  declarative transition rules (:data:`COMPONENT_LIFECYCLE`,
  :data:`TRANSFER_LIFECYCLE`), including the resilience states
  (tombstones, retry episodes, remap, frozen in-flight routing);
* **token layout** — :class:`TokenLayout` defines the integer encoding
  the array engine compiles the tables into at build time (delivery /
  component / local-hop / transfer / failure token ranges);
* **timing rules** — one home for every cost formula and tie-break rule
  both engines must agree on: kernel-launch serialisation
  (:func:`launch_times`), solve and gather costs (:func:`solve_cost` /
  :func:`solve_cost_table` / :func:`gather_cost_table`), link capacity
  and wire time (:func:`link_capacity` / :func:`wire_time`), and the
  failure-relaunch delay (:func:`relaunch_delay`).  The timestamp
  tie-break itself — FIFO within an exact time, i.e. ``(time, seq)``
  order with a schedule-time monotone sequence — lives in
  :class:`repro.engine.sequence.MonotonicSequence` and the calendar's
  push-order-monotonicity invariant; this module documents it and the
  engines implement it;
* **the delivery protocol** — :func:`delivery_action` maps an
  injector-reported fate and the recovery policy to one of the
  :data:`ACT_DELIVER` … :data:`ACT_EXHAUSTED` verdicts; both engines
  branch on the verdict instead of re-deriving the drop / delay /
  corrupt / retry / starve decision tree.  :func:`exhausted_delivery`
  builds the one shared :class:`~repro.errors.RecoveryExhaustedError`;
* **the fail-stop protocol** — :func:`failure_victims` (which components
  a dying GPU cancels, in wake order) and :func:`remap_plan` (survivor
  targets plus the detector-latency + kernel-launch-serialised relaunch
  delays);
* **per-design hooks** — :func:`design_hooks` returns the
  :class:`DesignHooks` record for a design (page-table routing or cost
  tables), with the scalar (:func:`edge_update_inc` /
  :func:`edge_notify_delay`) and vectorised (:func:`edge_cost_tables`)
  forms of the producer-side update pricing;
* **validation** — :func:`coerce_design` and :func:`missing_diagonal` /
  :func:`validate_diagonals` give both engines identical typed errors.

The reference engine *walks* these rules with generator objects; the
array engine *compiles* them into integer token arrays at build time.
``tests/test_protocol_parity.py`` statically asserts that neither engine
re-declares a protocol constant, and ``tests/test_des_array.py`` keeps
the two interpretations bit-identical in every observable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, RecoveryExhaustedError, SolverError
from repro.exec_model.costmodel import CommCosts, Design

__all__ = [
    # lifecycle states + tables
    "COMP_ACQUIRE",
    "COMP_DISPATCH",
    "COMP_GATHER",
    "COMP_SOLVE",
    "COMP_POST",
    "COMP_RELEASE",
    "COMP_DEAD",
    "COMP_SHIFT",
    "XFER_CLAIM",
    "XFER_WIRE",
    "XFER_RETIRE",
    "XFER_SHIFT",
    "StateRule",
    "COMPONENT_LIFECYCLE",
    "TRANSFER_LIFECYCLE",
    "STALE_LIFECYCLE",
    # trace vocabulary
    "TRACE_DISPATCH",
    "TRACE_SOLVE",
    "TRACE_RELEASE",
    "TRACE_FAULT",
    "TRACE_XFER_BEGIN",
    "TRACE_XFER_END",
    "TRACE_INJECT",
    "TRACE_RETRY",
    "TRACE_RECOVERED",
    "TRACE_MSG_LOST",
    "TRACE_GPU_FAIL",
    "TRACE_REMAP",
    "TRACE_STALE_LAUNCH",
    "TRACE_VALIDATE",
    "TRACE_REPLAY",
    "ALL_TRACE_KINDS",
    # delivery fates + protocol verdicts
    "FATE_DROP",
    "FATE_DELAY",
    "FATE_CORRUPT",
    "ACT_DELIVER",
    "ACT_DELAY",
    "ACT_CORRUPT",
    "ACT_STARVE",
    "ACT_RETRY",
    "ACT_EXHAUSTED",
    "delivery_action",
    "exhausted_delivery",
    # fail-stop protocol
    "failure_victims",
    "remap_plan",
    # token layout
    "TokenLayout",
    # timing rules
    "MESSAGE_BYTES",
    "MESSAGES_IN_FLIGHT_PER_LINK",
    "launch_times",
    "solve_cost",
    "solve_cost_table",
    "gather_cost_table",
    "link_capacity",
    "wire_time",
    "relaunch_delay",
    # stale-synchronous protocol
    "StalePolicy",
    "DEFAULT_STALE_POLICY",
    "resolve_stale_policy",
    "wake_threshold",
    "stale_validation_times",
    # per-design hooks
    "DesignHooks",
    "design_hooks",
    "edge_update_inc",
    "edge_notify_delay",
    "edge_cost_tables",
    # link tiers (multi-node fabric)
    "LINK_TIER_LOCAL",
    "LINK_TIER_DIRECT",
    "LINK_TIER_FALLBACK",
    "rank_tier_matrix",
    "edge_tier_table",
    "tiered_edge_cost_tables",
    "fallback_legal",
    "validate_fabric_reach",
    # validation
    "VALID_ENGINES",
    "coerce_design",
    "missing_diagonal",
    "validate_diagonals",
    "frontier_diagnostics",
    # parity-check manifest
    "PROTOCOL_CONSTANTS",
]

# ---------------------------------------------------------------------------
# Component lifecycle states (array token = (component << COMP_SHIFT) | state).
# ---------------------------------------------------------------------------
COMP_ACQUIRE = 0  #: initial: claim a warp slot
COMP_DISPATCH = 1  #: slot granted: emit dispatch, pay warp-dispatch cost
COMP_GATHER = 2  #: dependencies satisfied: pay the gather cost
COMP_SOLVE = 3  #: gather done: pay the solve cost
COMP_POST = 4  #: value ready: update dependants
COMP_RELEASE = 5  #: updates issued: retire the slot

#: Tombstone state: a cancelled component step (its GPU failed).  The
#: token keeps its exact (time, insertion) slot in the calendar and burns
#: one event when drained — mirroring the reference engine, where the
#: stale generator resumes once, sees its epoch mismatch, and exits.
COMP_DEAD = 6

#: Bits reserved for the component state in an array token (8 states).
COMP_SHIFT = 3

# Cross-GPU transfer states (token = xfer_base + ((edge << XFER_SHIFT) | st)).
XFER_CLAIM = 0  #: claim a link channel
XFER_WIRE = 1  #: channel granted: message on the wire
XFER_RETIRE = 2  #: wire time paid: retire the channel, deliver

#: Bits reserved for the transfer state in an array token (4 states).
XFER_SHIFT = 2

# ---------------------------------------------------------------------------
# Trace vocabulary: every record kind either engine may emit.
# ---------------------------------------------------------------------------
TRACE_DISPATCH = "dispatch"
TRACE_SOLVE = "solve"
TRACE_RELEASE = "release"
TRACE_FAULT = "fault"
TRACE_XFER_BEGIN = "xfer_begin"
TRACE_XFER_END = "xfer_end"
TRACE_INJECT = "inject"
TRACE_RETRY = "retry"
TRACE_RECOVERED = "recovered"
TRACE_MSG_LOST = "msg_lost"
TRACE_GPU_FAIL = "gpu_fail"
TRACE_REMAP = "remap"
# Stale-synchronous vocabulary (the elastic design of Steiner et al.):
# a component that launches on a bounded-stale partial sum records
# ``stale_launch`` with ``(component, missing)``; the post-hoc pass
# records one ``validate`` summary ``(n_suspects, n_replayed)`` and one
# ``replay`` per forward-closure component it re-solves.
TRACE_STALE_LAUNCH = "stale_launch"
TRACE_VALIDATE = "validate"
TRACE_REPLAY = "replay"

#: The closed set of DES trace kinds (causality replay + chrometrace
#: enumerate exactly these).
ALL_TRACE_KINDS = (
    TRACE_DISPATCH,
    TRACE_SOLVE,
    TRACE_RELEASE,
    TRACE_FAULT,
    TRACE_XFER_BEGIN,
    TRACE_XFER_END,
    TRACE_INJECT,
    TRACE_RETRY,
    TRACE_RECOVERED,
    TRACE_MSG_LOST,
    TRACE_GPU_FAIL,
    TRACE_REMAP,
    TRACE_STALE_LAUNCH,
    TRACE_VALIDATE,
    TRACE_REPLAY,
)


@dataclass(frozen=True)
class StateRule:
    """One declarative lifecycle transition.

    Attributes
    ----------
    state:
        The integer state constant the rule describes.
    name:
        Human-readable state name (docs, chrometrace, parity test).
    emits:
        Trace kind recorded when the state runs (``None`` = silent).
    cost:
        Timing-rule key paid before the successor state runs (``None``
        = zero-time hand-over).  Keys name the rule, not a value:
        ``"t_warp_dispatch"`` and ``"t_kernel_launch"`` index the GPU
        spec, ``"gather"``/``"solve"``/``"update"`` the per-component
        cost tables, ``"wire"``/``"notify"`` the per-edge link pricing.
    next:
        Successor state (``None`` = terminal).
    resource:
        Pooled resource claimed (``acquire``) or retired (``release``)
        by the state, if any.
    """

    state: int
    name: str
    emits: str | None = None
    cost: str | None = None
    next: int | None = None
    resource: str | None = None


#: The component lifecycle both engines interpret: ready → dispatch →
#: execute → deliver, plus the tombstone resilience state.
COMPONENT_LIFECYCLE: tuple[StateRule, ...] = (
    StateRule(COMP_ACQUIRE, "acquire", next=COMP_DISPATCH,
              resource="warp_slot:acquire"),
    StateRule(COMP_DISPATCH, "dispatch", emits=TRACE_DISPATCH,
              cost="t_warp_dispatch", next=COMP_GATHER),
    StateRule(COMP_GATHER, "gather", cost="gather", next=COMP_SOLVE),
    StateRule(COMP_SOLVE, "solve", cost="solve", next=COMP_POST),
    StateRule(COMP_POST, "post", emits=TRACE_SOLVE, cost="update",
              next=COMP_RELEASE),
    StateRule(COMP_RELEASE, "release", emits=TRACE_RELEASE,
              resource="warp_slot:release"),
    StateRule(COMP_DEAD, "dead"),
)

#: Stale-synchronous *extension* rows, interpreted on top of the base
#: component lifecycle when the design is
#: :attr:`~repro.exec_model.costmodel.Design.STALE_SYNC`.  They do not
#: introduce new integer states (the token layout is unchanged): the
#: ``stale_launch`` row annotates the GATHER step of a component whose
#: wake threshold fired with contributions still missing, and the
#: ``validate`` / ``replay`` rows describe the post-hoc validation pass
#: appended after the calendar drains (timestamps from
#: :func:`stale_validation_times`).  Kept in a separate table so the
#: base lifecycle's state set stays closed.
STALE_LIFECYCLE: tuple[StateRule, ...] = (
    StateRule(COMP_GATHER, "stale_launch", emits=TRACE_STALE_LAUNCH,
              cost="gather", next=COMP_SOLVE),
    StateRule(COMP_RELEASE, "validate", emits=TRACE_VALIDATE,
              cost="validate"),
    StateRule(COMP_RELEASE, "replay", emits=TRACE_REPLAY,
              cost="t_kernel_launch"),
)

#: The cross-GPU transfer lifecycle (a local delivery skips straight to
#: the terminal delivery hop).
TRANSFER_LIFECYCLE: tuple[StateRule, ...] = (
    StateRule(XFER_CLAIM, "claim", next=XFER_WIRE,
              resource="link_channel:acquire"),
    StateRule(XFER_WIRE, "wire", emits=TRACE_XFER_BEGIN, cost="wire",
              next=XFER_RETIRE),
    StateRule(XFER_RETIRE, "retire", emits=TRACE_XFER_END, cost="notify",
              resource="link_channel:release"),
)


# ---------------------------------------------------------------------------
# Delivery fates (the injector's vocabulary) and protocol verdicts.
# ---------------------------------------------------------------------------
#: Fate tags returned by ``FaultInjector.delivery_fate`` (re-exported by
#: :mod:`repro.resilience.faults`; defined here so the protocol core is
#: the single source).
FATE_DROP = "drop"
FATE_DELAY = "delay"
FATE_CORRUPT = "corrupt"

#: Verdicts of :func:`delivery_action` — what one delivery attempt does.
ACT_DELIVER = "deliver"  #: clean: land the contribution
ACT_DELAY = "delay"  #: wait ``arg`` extra, bump the attempt, re-evaluate
ACT_CORRUPT = "corrupt"  #: flip mantissa bit ``arg``, bump attempt, land
ACT_STARVE = "starve"  #: lost with no retry policy: dependant starves
ACT_RETRY = "retry"  #: re-send after backoff ``arg`` (re-pay the wire)
ACT_EXHAUSTED = "exhausted"  #: bounded retries spent: raise


def delivery_action(
    fate: tuple | None, attempt: int, recovery
) -> tuple[str, float | int | None]:
    """Resolve one delivery attempt's fate against the recovery policy.

    This is the single decision tree of the fault/retry protocol — the
    branches PRs 3-4 mirrored across both engines.  ``fate`` is what the
    injector reported for ``attempt`` (``None`` = clean), ``recovery``
    the :class:`~repro.resilience.recovery.RecoveryPolicy` (or ``None``).

    Returns ``(verdict, arg)``:

    * ``(ACT_DELIVER, None)`` — land the contribution unchanged;
    * ``(ACT_DELAY, extra)`` — hold the message ``extra`` longer, bump
      the attempt counter, then re-evaluate;
    * ``(ACT_CORRUPT, bit)`` — no checksum: the bit-flipped value lands;
    * ``(ACT_STARVE, None)`` — detected loss, no retry policy: the
      dependant starves loudly (deadlock detector reports it);
    * ``(ACT_RETRY, backoff)`` — re-send after exponential backoff,
      re-paying the wire on cross-GPU edges;
    * ``(ACT_EXHAUSTED, None)`` — bounded retries spent: the engine must
      raise :func:`exhausted_delivery`.
    """
    if fate is None:
        return (ACT_DELIVER, None)
    kind = fate[0]
    if kind == FATE_DELAY:
        return (ACT_DELAY, fate[1])
    if kind == FATE_CORRUPT and (
        recovery is None or not recovery.detect_corruption
    ):
        return (ACT_CORRUPT, fate[1])
    # Detected loss: a drop, or a corruption the checksum caught.
    if recovery is None or not recovery.retry:
        return (ACT_STARVE, None)
    if attempt >= recovery.max_retries:
        return (ACT_EXHAUSTED, None)
    return (ACT_RETRY, recovery.retry_delay(attempt))


def exhausted_delivery(edge: int, dst: int, attempts: int) -> RecoveryExhaustedError:
    """The one retry-exhaustion error both engines raise, bit-for-bit."""
    return RecoveryExhaustedError(
        f"delivery on edge {edge} to component {dst} still failing "
        f"after {attempts} attempts",
        context={
            "edge": int(edge),
            "dst": int(dst),
            "attempts": attempts,
        },
    )


# ---------------------------------------------------------------------------
# Fail-stop protocol: victim cancellation and survivor remap.
# ---------------------------------------------------------------------------
def failure_victims(owner, done, gpu: int, n: int) -> list[int]:
    """Components a fail-stopping ``gpu`` cancels, in wake order.

    A victim is an unsolved component the dead rank owns at failure
    time; the ascending-index order is part of the protocol (it fixes
    the ready-channel wake order and therefore the tie-break of every
    tombstone event).
    """
    return [i for i in range(n) if int(owner[i]) == gpu and not done[i]]


def remap_plan(
    owner: np.ndarray,
    victims: list[int],
    failed: int,
    n_gpus: int,
    dead: set[int],
    recovery,
    t_kernel_launch: float,
) -> list[tuple[int, int, float]]:
    """Survivor targets and relaunch delays for a failed GPU's victims.

    Wraps :func:`repro.tasks.schedule.remap_failed_components` (targets
    must be computed against the *pre-mutation* ownership) and attaches
    the protocol's relaunch timing: victim ``k`` restarts after the
    failure-detector latency plus ``k`` serialised kernel launches.
    Returns ``[(victim, new_gpu, delay), ...]`` in victim order; the
    caller mutates ownership and schedules the relaunch.
    """
    from repro.tasks.schedule import remap_failed_components

    targets = remap_failed_components(owner, victims, failed, n_gpus, dead)
    return [
        (i, int(targets[k]), relaunch_delay(recovery, k, t_kernel_launch))
        for k, i in enumerate(victims)
    ]


# ---------------------------------------------------------------------------
# Token layout: how the array engine compiles the tables to integers.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TokenLayout:
    """Integer token ranges for one ``(n, nnz)`` system.

    Tokens are classed by range so the hottest kinds decode cheapest:

    * ``-1 - e`` — edge ``e``'s *update delivery* (the hottest kind);
    * ``(i << COMP_SHIFT) | state`` — component ``i`` at a lifecycle
      state (``[0, local_base)``);
    * ``local_base + e`` — local edge ``e``'s start hop;
    * ``xfer_base + ((e << XFER_SHIFT) | state)`` — cross-GPU transfer
      steps of edge ``e``;
    * ``failure_base + k`` — the k-th scheduled GPU fail-stop event.
    """

    n: int
    nnz: int
    local_base: int  # == n << COMP_SHIFT
    xfer_base: int  # == local_base + nnz
    failure_base: int  # == xfer_base + (nnz << XFER_SHIFT)

    @classmethod
    def for_system(cls, n: int, nnz: int) -> "TokenLayout":
        local_base = n << COMP_SHIFT
        xfer_base = local_base + nnz
        failure_base = xfer_base + (nnz << XFER_SHIFT)
        return cls(
            n=n,
            nnz=nnz,
            local_base=local_base,
            xfer_base=xfer_base,
            failure_base=failure_base,
        )

    # ------------------------------------------------------------- encoders
    def component(self, i: int, state: int = COMP_ACQUIRE) -> int:
        return (i << COMP_SHIFT) | state

    def delivery(self, e: int) -> int:
        return -1 - e

    def local_start(self, e: int) -> int:
        return self.local_base + e

    def transfer(self, e: int, state: int = XFER_CLAIM) -> int:
        return self.xfer_base + ((e << XFER_SHIFT) | state)

    def failure(self, k: int) -> int:
        return self.failure_base + k

    def spawn_codes(self, local_mask: np.ndarray) -> np.ndarray:
        """Per-edge fan-out spawn tokens: local start hop or transfer claim."""
        eids = np.arange(self.nnz, dtype=np.int64)
        return np.where(
            local_mask,
            self.local_base + eids,
            self.xfer_base + (eids << XFER_SHIFT),
        )

    # ------------------------------------------------------------- decoder
    def describe(self, code: int) -> tuple[str, int, int | None]:
        """Decode a token to ``(kind, id, state)`` (tests / diagnostics)."""
        if code < 0:
            return ("delivery", -1 - code, None)
        if code < self.local_base:
            return ("component", code >> COMP_SHIFT, code & (2**COMP_SHIFT - 1))
        if code < self.xfer_base:
            return ("local_start", code - self.local_base, None)
        if code < self.failure_base:
            c = code - self.xfer_base
            return ("transfer", c >> XFER_SHIFT, c & (2**XFER_SHIFT - 1))
        return ("failure", code - self.failure_base, None)


# ---------------------------------------------------------------------------
# Timing rules: the single home of every cost formula the engines share.
# All functions reproduce the exact binary64 operation chains of the
# original engines, so extracting them preserves bit-equality.
# ---------------------------------------------------------------------------
#: Fine-grained message size on the wire (one float64 update).
MESSAGE_BYTES = 8.0

#: Fine-grained messages a single physical link keeps in flight; beyond
#: this, notifications queue on the link channel.
MESSAGES_IN_FLIGHT_PER_LINK = 16


def launch_times(n_tasks: int, t_kernel_launch: float) -> np.ndarray:
    """Host-serialised kernel-launch times: task ``k`` launches at
    ``k * t_kernel_launch`` (the same model as the fast tier)."""
    return np.arange(n_tasks, dtype=np.float64) * t_kernel_launch


def solve_cost(t_per_nnz: float, col_nnz: int, in_count: int) -> float:
    """Solve cost of one component (scalar form, reference engine)."""
    return t_per_nnz * (max(col_nnz, 1) + in_count)


def solve_cost_table(
    t_per_nnz: float, col_nnz: np.ndarray, in_counts: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`solve_cost` (array engine build time)."""
    return t_per_nnz * (np.maximum(col_nnz, 1) + in_counts)


def gather_cost_table(gather: float, in_counts: np.ndarray) -> np.ndarray:
    """Per-component gather cost: paid only with at least one dependency."""
    return np.where(in_counts > 0, gather, 0.0)


def link_capacity(topology, ga: int, gb: int, per_link: int) -> int:
    """In-flight message capacity of the ``ga -> gb`` physical link pair."""
    return max(int(topology.link_count[ga, gb]), 1) * per_link


def wire_time(topology, ga: int, gb: int) -> float:
    """Wire time of one fine-grained message between physical GPUs."""
    return MESSAGE_BYTES / topology.peer_bandwidth(ga, gb)


def relaunch_delay(recovery, k: int, t_kernel_launch: float) -> float:
    """Relaunch delay of the k-th remapped victim: failure-detector
    latency plus ``k`` serialised kernel launches."""
    return recovery.detect_latency + k * t_kernel_launch


# ---------------------------------------------------------------------------
# Stale-synchronous protocol: bounded-stale launch + validation/replay.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StalePolicy:
    """Staleness bound of the ``stale_sync`` design.

    Attributes
    ----------
    k:
        A component may launch once at most ``k`` contributions are
        still missing from its partial sum (all-but-k elasticity).
        Components with in-degree ``<= k`` never block at all.
    ceiling:
        Per-row backward-error ceiling of the post-hoc validation pass:
        any solved row whose stale-read error exceeds it is replayed
        (with its forward closure).  Much tighter than the resilience
        residual ceiling (1e-8) so repaired solutions still clear the
        1e-9 differential-oracle tolerance.
    """

    k: int = 1
    ceiling: float = 1e-12

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(
                f"stale policy k must be >= 1, got {self.k}",
                parameter="stale_k",
                value=self.k,
            )
        if not self.ceiling > 0.0:
            raise ConfigurationError(
                f"stale validation ceiling must be > 0, got {self.ceiling}",
                parameter="stale_ceiling",
                value=self.ceiling,
            )


#: Policy used when the ``stale_sync`` design is selected without an
#: explicit override.
DEFAULT_STALE_POLICY = StalePolicy()


def resolve_stale_policy(
    design: Design, stale: "StalePolicy | None"
) -> "StalePolicy | None":
    """The effective staleness policy of one run.

    ``stale_sync`` runs get the default policy unless one is supplied;
    any other design must not carry a policy (typed error — staleness is
    a property of the design, not a free knob)."""
    if design is Design.STALE_SYNC:
        return stale if stale is not None else DEFAULT_STALE_POLICY
    if stale is not None:
        raise ConfigurationError(
            f"stale policy requires design={Design.STALE_SYNC.value!r}, "
            f"got {design.value!r}",
            parameter="stale",
            value=stale,
        )
    return None


def wake_threshold(stale: "StalePolicy | None") -> int:
    """Ready-wake threshold both engines gate on: a component may leave
    the GATHER park once at most this many contributions are missing
    (0 = fully synchronous, the base protocol)."""
    return 0 if stale is None else stale.k


def stale_validation_times(
    total_time: float, n_replayed: int, t_kernel_launch: float
) -> tuple[float, np.ndarray]:
    """Timestamps of the post-hoc validation pass records.

    The ``validate`` summary lands exactly when the calendar drains;
    replayed component ``j`` (ascending index order) lands after ``j+1``
    host-serialised kernel launches — the same serialisation model as
    :func:`launch_times` / :func:`relaunch_delay`.  Pure function of the
    run's observables, so every engine extends the trace and the wall
    clock bit-identically."""
    replays = total_time + (
        np.arange(1, n_replayed + 1, dtype=np.float64) * t_kernel_launch
    )
    return total_time, replays


# ---------------------------------------------------------------------------
# Per-design hooks: unified page-table routing vs priced cost tables.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DesignHooks:
    """How one communication design routes producer-side updates.

    Attributes
    ----------
    design:
        The design the hooks describe.
    page_table:
        ``True`` for :attr:`~repro.exec_model.costmodel.Design.UNIFIED`:
        every remote update is charged through the exact
        :class:`~repro.machine.unified.UnifiedMemory` page table (the
        engines own the stateful table; the hook only routes).  Local
        updates and notify latencies use the shared cost tables either
        way.
    stale:
        The default :class:`StalePolicy` for
        :attr:`~repro.exec_model.costmodel.Design.STALE_SYNC` (``None``
        for every fully synchronous design).
    one_sided:
        ``True`` for the NVSHMEM designs whose remote traffic is
        one-sided puts/gets.  These may cross the fallback link tier
        only when the topology grants ``shmem_over_fallback`` (the IB
        RDMA transport) — see :func:`fallback_legal`; the unified
        design stages through page migration and has no such
        restriction.
    """

    design: Design
    page_table: bool
    stale: "StalePolicy | None" = None
    one_sided: bool = True


_DESIGN_HOOKS = {
    d: DesignHooks(
        design=d,
        page_table=d is Design.UNIFIED,
        stale=DEFAULT_STALE_POLICY if d is Design.STALE_SYNC else None,
        one_sided=d is not Design.UNIFIED,
    )
    for d in Design
}


def design_hooks(design: Design | str) -> DesignHooks:
    """The per-design hook record (coerces and validates ``design``)."""
    return _DESIGN_HOOKS[coerce_design(design)]


def edge_update_inc(costs: CommCosts, src_g: int, dst_g: int) -> float:
    """Producer-side cost of one dependant update (non-page-table path)."""
    if src_g == dst_g:
        return costs.update_local
    return costs.update_remote[src_g, dst_g]


def edge_notify_delay(costs: CommCosts, src_g: int, dst_g: int) -> float:
    """Post-update notify latency from producer to consumer."""
    if src_g == dst_g:
        return 0.0
    return costs.notify[src_g, dst_g]


def edge_cost_tables(
    costs: CommCosts,
    src_g_e: np.ndarray,
    dst_g_e: np.ndarray,
    local_e: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-edge ``(update_inc, notify_delay)`` tables.

    The array engine compiles these at build time for non-page-table
    designs; values are bit-identical to the scalar hooks.
    """
    inc = np.where(
        local_e, costs.update_local, costs.update_remote[src_g_e, dst_g_e]
    )
    delay = np.where(local_e, 0.0, costs.notify[src_g_e, dst_g_e])
    return inc, delay


# ---------------------------------------------------------------------------
# Link tiers: the multi-node fabric's classification of every GPU pair.
# Pricing already flows per pair through the CommCosts matrices (built
# from the topology's tiered latencies/bandwidths), so these helpers add
# *metadata*, never arithmetic — every float an engine pays is unchanged
# and the three engines stay bit-identical by construction.
# ---------------------------------------------------------------------------
#: Same rank: no wire.
LINK_TIER_LOCAL = 0
#: Direct link (NVLink / NVSwitch island).
LINK_TIER_DIRECT = 1
#: Fallback path: PCIe staging on a single node, RDMA over IB across
#: nodes.  NVSHMEM one-sided designs may use it only when the topology
#: grants ``shmem_over_fallback``.
LINK_TIER_FALLBACK = 2


def rank_tier_matrix(machine) -> np.ndarray:
    """``(n_gpus, n_gpus)`` link tier of every PE-rank pair.

    Ranks map to physical GPUs through ``machine.active_gpus`` before
    the topology is consulted, so a DGX-1 clique run and a full-cluster
    run both classify correctly.
    """
    phys = np.asarray(machine.active_gpus, dtype=np.int64)
    return machine.topology.tier_matrix()[np.ix_(phys, phys)]


def edge_tier_table(machine, src_g_e: np.ndarray, dst_g_e: np.ndarray) -> np.ndarray:
    """Vectorised per-edge link tier (ranks in, tiers out)."""
    return rank_tier_matrix(machine)[src_g_e, dst_g_e]


def tiered_edge_cost_tables(
    costs: CommCosts,
    machine,
    src_g_e: np.ndarray,
    dst_g_e: np.ndarray,
    local_e: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`edge_cost_tables` plus the per-edge link tier.

    The ``(inc, delay)`` arrays are exactly the classic tables (same
    binary64 values, same lookups); ``tier`` classifies each edge as
    local / direct / fallback so schedulers and reports can attribute
    cost to the fabric level that carries it.
    """
    inc, delay = edge_cost_tables(costs, src_g_e, dst_g_e, local_e)
    return inc, delay, edge_tier_table(machine, src_g_e, dst_g_e)


def fallback_legal(design: Design | str, topology) -> bool:
    """Whether ``design`` may carry traffic over the fallback tier.

    One-sided NVSHMEM designs (naive, read-only/zerocopy, stale-sync)
    need the topology to grant ``shmem_over_fallback`` — the IB RDMA
    transport of multi-node NVSHMEM; the CUDA-10-era single-node
    fallback (PCIe staging) cannot carry one-sided gets, which is the
    paper's 4-GPU DGX-1 limit.  The unified design stages through the
    page-migration path, so any fallback link is legal.  The causality
    replayer enforces the same rule on every recorded transfer.
    """
    if topology.fallback is None:
        return False
    if design_hooks(design).one_sided:
        return bool(topology.shmem_over_fallback)
    return True


def validate_fabric_reach(machine, design: Design | str) -> None:
    """Reject a run whose design cannot reach every active rank pair.

    Raises a typed :class:`~repro.errors.TopologyError` naming the first
    offending pair when any pair of active ranks needs the fallback tier
    and :func:`fallback_legal` denies it — the shared upfront check of
    ``des_execute``, so all engines fail identically before any event is
    played.
    """
    from repro.errors import TopologyError

    topo = machine.topology
    tiers = rank_tier_matrix(machine)
    needs_fallback = np.argwhere(tiers >= LINK_TIER_FALLBACK)
    if needs_fallback.size and not fallback_legal(design, topo):
        a, b = (int(v) for v in needs_fallback[0])
        design = coerce_design(design)
        raise TopologyError(
            f"design {design.value!r} cannot reach rank {a} -> rank {b}: "
            f"the pair crosses the fallback tier of {topo.name} and "
            + (
                "the topology has no fallback link"
                if topo.fallback is None
                else f"{topo.fallback.name} does not carry one-sided access "
                "(shmem_over_fallback=False)"
            )
        )


# ---------------------------------------------------------------------------
# Validation: identical typed errors from both engines.
# ---------------------------------------------------------------------------
#: Engine names accepted by ``des_execute(engine=...)``.
VALID_ENGINES = ("auto", "array", "vector", "reference")


def coerce_design(design: Design | str) -> Design:
    """Coerce a design argument, raising a typed error listing choices."""
    try:
        return Design(design)
    except (ValueError, KeyError):
        choices = [d.value for d in Design]
        raise ConfigurationError(
            f"unknown design {design!r}; valid choices: "
            + ", ".join(choices),
            parameter="design",
            value=design,
            choices=tuple(choices),
        ) from None


def missing_diagonal(col: int) -> SolverError:
    """The shared missing-diagonal error (identical message, both engines)."""
    return SolverError(f"missing diagonal at column {col}")


def frontier_diagnostics(components, gpu_of) -> dict:
    """Per-GPU pending-dependency frontier for deadlock diagnostics.

    ``components`` are the component ids still parked on their readiness
    channel when the calendar drained; ``gpu_of`` maps components to
    owning ranks.  Both engines attach the identical payload to
    :class:`~repro.errors.DeadlockError` so service logs can name the
    starved components and the ranks holding them:

    * ``pending_frontier`` — ascending ``{"component", "gpu"}`` rows;
    * ``frontier_by_gpu`` — ``{gpu: [component, ...]}``, ids ascending.
    """
    comps = sorted(int(i) for i in components)
    by_gpu: dict[int, list[int]] = {}
    for i in comps:
        by_gpu.setdefault(int(gpu_of[i]), []).append(i)
    return {
        "pending_frontier": [
            {"component": i, "gpu": int(gpu_of[i])} for i in comps
        ],
        "frontier_by_gpu": by_gpu,
    }


def validate_diagonals(indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
    """Reject a matrix whose unit-position diagonal entries are absent.

    The reference engine discovers a missing diagonal when the solve
    front reaches the column; with the whole structure in hand the array
    engine rejects it upfront — with the identical error the reference
    engine would eventually raise for the first bad column.
    """
    col_nnz = np.diff(indptr)
    if np.any(col_nnz == 0):
        raise missing_diagonal(int(np.nonzero(col_nnz == 0)[0][0]))
    diag_bad = indices[indptr[:-1]] != np.arange(n)
    if np.any(diag_bad):
        raise missing_diagonal(int(np.nonzero(diag_bad)[0][0]))


# ---------------------------------------------------------------------------
# Parity-check manifest: every constant the static check enforces.
# ---------------------------------------------------------------------------
#: Name → value of every protocol constant.  ``tests/test_protocol_parity.py``
#: asserts no engine module re-declares any of these names and that the
#: values each engine binds resolve to these definitions.
PROTOCOL_CONSTANTS: dict[str, object] = {
    "COMP_ACQUIRE": COMP_ACQUIRE,
    "COMP_DISPATCH": COMP_DISPATCH,
    "COMP_GATHER": COMP_GATHER,
    "COMP_SOLVE": COMP_SOLVE,
    "COMP_POST": COMP_POST,
    "COMP_RELEASE": COMP_RELEASE,
    "COMP_DEAD": COMP_DEAD,
    "COMP_SHIFT": COMP_SHIFT,
    "XFER_CLAIM": XFER_CLAIM,
    "XFER_WIRE": XFER_WIRE,
    "XFER_RETIRE": XFER_RETIRE,
    "XFER_SHIFT": XFER_SHIFT,
    "TRACE_DISPATCH": TRACE_DISPATCH,
    "TRACE_SOLVE": TRACE_SOLVE,
    "TRACE_RELEASE": TRACE_RELEASE,
    "TRACE_FAULT": TRACE_FAULT,
    "TRACE_XFER_BEGIN": TRACE_XFER_BEGIN,
    "TRACE_XFER_END": TRACE_XFER_END,
    "TRACE_INJECT": TRACE_INJECT,
    "TRACE_RETRY": TRACE_RETRY,
    "TRACE_RECOVERED": TRACE_RECOVERED,
    "TRACE_MSG_LOST": TRACE_MSG_LOST,
    "TRACE_GPU_FAIL": TRACE_GPU_FAIL,
    "TRACE_REMAP": TRACE_REMAP,
    "TRACE_STALE_LAUNCH": TRACE_STALE_LAUNCH,
    "TRACE_VALIDATE": TRACE_VALIDATE,
    "TRACE_REPLAY": TRACE_REPLAY,
    "FATE_DROP": FATE_DROP,
    "FATE_DELAY": FATE_DELAY,
    "FATE_CORRUPT": FATE_CORRUPT,
    "ACT_DELIVER": ACT_DELIVER,
    "ACT_DELAY": ACT_DELAY,
    "ACT_CORRUPT": ACT_CORRUPT,
    "ACT_STARVE": ACT_STARVE,
    "ACT_RETRY": ACT_RETRY,
    "ACT_EXHAUSTED": ACT_EXHAUSTED,
    "MESSAGE_BYTES": MESSAGE_BYTES,
    "MESSAGES_IN_FLIGHT_PER_LINK": MESSAGES_IN_FLIGHT_PER_LINK,
    "LINK_TIER_LOCAL": LINK_TIER_LOCAL,
    "LINK_TIER_DIRECT": LINK_TIER_DIRECT,
    "LINK_TIER_FALLBACK": LINK_TIER_FALLBACK,
}
