"""Epoch compiler: structure-derived macro-batching for the DES stack.

This module lowers the declarative protocol tables of
:mod:`repro.engine.protocol` (lifecycle rules, token layout, timing
rules) plus the per-run analysis artefacts (dependency DAG, dispatch
fronts, placement) into a *precompiled execution plan* — flat numpy
tables plus reusable scratch buffers — and then drains the event
calendar in **macro-epochs** instead of the min-delay windows the
original vector engine used.

Why epochs can be wide
----------------------
The windowed engine bounded its lookahead by the *smallest* cost
constant::

    W = min(t_warp_dispatch, min(solve), min positive gather)

because every chain spawned inside a window had to land past the
horizon.  The epoch compiler derives a wider bound from the structure
of the protocol itself: a SOLVE token in the calendar proves its
component's ``left.sum`` is final (the last delivery landed before the
gather began), so its POST — and the POST's whole fan-out — can be
*internalised* and priced inside the epoch with compile-time tables.
With in-window POSTs internalised, the only chains that must escape are
dispatch→gather hops (``>= t_warp_dispatch``) and gather→solve edges of
dependent components (``>= min dependent gather``), so::

    W_epoch = min(t_warp_dispatch, min gather over components with deps)

whenever every dependent component has a positive gather cost (e.g. the
``shmem_readonly`` design).  For designs with zero-cost gathers the
plan falls back to the conservative window, bit-for-bit the old
behaviour.  An over-wide ``lookahead`` (set by hand or by a bad
heuristic) is *detected and split*: the drain loop clamps every epoch
at the provably safe horizon and counts the clamp in
:class:`EpochStats` instead of silently reordering events.

Hierarchical push keys, generalised
-----------------------------------
Bit-equality with the array engine rests on hierarchical push-order
keys: a calendar token popped at time ``t`` in bucket position ``p``
has key ``(t, 0, p)``; the ``s``-th push of the event with key ``k``
has ``(t2, 1, k, s)``.  The windowed engine special-cased four shallow
key shapes; internalised POSTs create deeper genealogies, so this
module flattens *any* key of depth ``<= MAX_KEY_DEPTH`` into a
fixed-width numeric row::

    [t0, m0, t1, m1, ..., p, s_{d-2}, ..., s_0]

where ``m_k`` is 1 when level ``k`` nests deeper and 0 at the gen0
leaf.  Because a marker column always differs before any structural
misalignment can be consulted, ``np.lexsort`` over the columns equals
nested-tuple comparison exactly; rare deeper keys (contended link
chains) keep real tuples and are merged by binary search.  Floating
point state is updated in key order — ``np.add.at`` applies repeated
indices sequentially — so every binary64 accumulation happens in the
array engine's order.

Compile-time pricing
--------------------
Fan-out prices are *static*: the update-cost prefix ``uc`` along a
column and the landing delay ``uc + dl`` per edge depend only on the
matrix structure and the cost tables, never on solved values.
:func:`compile_plan` computes them once per run with the exact
per-column sequential addition order of the scalar engine, so the batch
path prices a whole epoch's fan-outs with two ``np.take`` calls and
zero per-edge Python.
"""

from __future__ import annotations

import gc
from heapq import heapify, heappop, heappush
from operator import itemgetter

import numpy as np

from repro.engine.protocol import (
    COMP_DISPATCH,
    COMP_GATHER,
    COMP_POST,
    COMP_RELEASE,
    COMP_SHIFT,
    COMP_SOLVE,
    TRACE_DISPATCH,
    TRACE_RELEASE,
    TRACE_SOLVE,
    TRACE_XFER_BEGIN,
    TRACE_XFER_END,
    XFER_CLAIM,
    XFER_RETIRE,
    TokenLayout,
    edge_cost_tables,
    gather_cost_table,
    launch_times,
    link_capacity,
    solve_cost_table,
    validate_diagonals,
    wire_time,
)
from repro.engine.resources import ResourceBank
from repro.engine.trace import Trace
from repro.errors import DeadlockError, SolverError

__all__ = [
    "EpochPlan",
    "EpochStats",
    "compile_plan",
    "execute_plan",
    "last_run_stats",
    "BATCH_MIN_EVENTS",
    "MAX_KEY_DEPTH",
    "KEY_COLS",
]

#: Epochs with fewer calendar tokens than this take the scalar
#: sub-path (the array engine's loop verbatim): below it the numpy
#: dispatch overhead costs more than the scalar loop it replaces.
BATCH_MIN_EVENTS = 48

#: Deepest push-key genealogy representable as a fixed-width numeric
#: row.  Internalised POST chains reach depth 4 (POST -> hop ->
#: delivery) and pool/link hand-overs depth 5-6; anything deeper
#: (contended link chains) keeps tuple keys on the rare path.
MAX_KEY_DEPTH = 6

#: Flattened key width: (time, marker) per level, the gen0 position,
#: and one push-index per non-leaf level, deepest first.
KEY_COLS = 2 * MAX_KEY_DEPTH + 1 + (MAX_KEY_DEPTH - 1)

_P_COL = 2 * MAX_KEY_DEPTH  # column holding the gen0 bucket position
_S_BASE = KEY_COLS - 1      # column of the level-0 (outermost) push index

# Mini-simulation op tags (internal; aligned with the XFER_* states so
# gen0 transfer tokens feed the link sims without translation).
_OP_CLAIM = 0
_OP_WIRE = 1
_OP_RETIRE = 2
_OP_ACQ = 0
_OP_REL = 1

_LAST_STATS: dict | None = None


def last_run_stats() -> dict | None:
    """Statistics of the most recent :func:`execute_plan` call in this
    process (epoch count, events per epoch, clamp count), or ``None``.

    Single-threaded convenience for benchmarks; each sweep worker is
    its own process so the snapshot is per-measurement.
    """
    return None if _LAST_STATS is None else dict(_LAST_STATS)


# ---------------------------------------------------------------------------
# Key algebra: nested push-key tuples <-> fixed-width numeric rows.
# ---------------------------------------------------------------------------
def key_to_row(key):
    """Flatten a nested push key to ``(row, depth)``; ``None`` if the
    genealogy is deeper than :data:`MAX_KEY_DEPTH`."""
    spine = []
    subs = []
    k = key
    while k[1] == 1:
        if len(spine) >= MAX_KEY_DEPTH - 1:
            return None
        spine.append(k[0])
        subs.append(k[3])
        k = k[2]
    row = [0.0] * KEY_COLS
    for lvl, t in enumerate(spine):
        row[2 * lvl] = t
        row[2 * lvl + 1] = 1.0
    d = len(spine) + 1
    row[2 * (d - 1)] = k[0]
    row[_P_COL] = float(k[2])
    for lvl, s in enumerate(subs):
        row[_S_BASE - lvl] = float(s)
    return row, d


def row_depth(row) -> int:
    """Genealogy depth encoded by a row's marker columns."""
    lvl = 0
    while row[2 * lvl + 1] == 1.0:
        lvl += 1
    return lvl + 1


def row_to_key(row, d=None):
    """Rebuild the nested tuple key a flattened row encodes."""
    if d is None:
        d = row_depth(row)
    k = (float(row[2 * (d - 1)]), 0, int(row[_P_COL]))
    for lvl in range(d - 2, -1, -1):
        k = (float(row[2 * lvl]), 1, k, int(row[_S_BASE - lvl]))
    return k


def child_row(prow, d, t, sub):
    """Row of ``(t, 1, parent, sub)`` given the parent's row and depth;
    ``None`` when the child would exceed :data:`MAX_KEY_DEPTH`."""
    if d >= MAX_KEY_DEPTH:
        return None
    row = [0.0] * KEY_COLS
    row[0] = t
    row[1] = 1.0
    for c in range(2 * d):
        row[2 + c] = prow[c]
    row[_P_COL] = prow[_P_COL]
    for lvl in range(d - 1):
        row[_S_BASE - (lvl + 1)] = prow[_S_BASE - lvl]
    row[_S_BASE] = sub
    return row


def _lexsort_rows(rows):
    """Sort order of flattened key rows == nested-tuple key order."""
    return np.lexsort(tuple(rows[:, c] for c in range(KEY_COLS - 1, -1, -1)))


def _post_tuples(npa, npb, p_t, post_sel, ip_te, ip_p):
    """Nested push-key tuples of the epoch's POST work-list (gen0 POSTs
    first, internalised POSTs after) — built only when a tuple-keyed
    path (trace emission or a contended mini-sim) actually needs them."""
    p_t_l = p_t.tolist()
    out = [None] * (npa + npb)
    if npa:
        ps_l = post_sel.tolist()
        for j in range(npa):
            out[j] = (p_t_l[j], 0, ps_l[j])
    if npb:
        te_l = ip_te.tolist()
        pp_l = ip_p.tolist()
        for j in range(npb):
            out[npa + j] = (p_t_l[npa + j], 1, (te_l[j], 0, pp_l[j]), 0)
    return out


# ---------------------------------------------------------------------------
# Reusable scratch buffers (satellite: allocate once per run, reuse).
# ---------------------------------------------------------------------------
class _Scratch:
    """Named grow-on-demand numpy buffers reused across epochs."""

    __slots__ = ("_bufs",)

    def __init__(self):
        self._bufs: dict = {}

    def _get1(self, name, size, dtype):
        buf = self._bufs.get(name)
        if buf is None or buf.shape[0] < size:
            cap = max(size, 64, 0 if buf is None else 2 * buf.shape[0])
            buf = np.empty(cap, dtype)
            self._bufs[name] = buf
        return buf[:size]

    def f64(self, name, size):
        return self._get1(name, size, np.float64)

    def i64(self, name, size):
        return self._get1(name, size, np.int64)

    def mat(self, name, rows, cols):
        """A zeroed ``rows x cols`` float64 view (zeroing is part of the
        contract: key rows rely on zero padding)."""
        buf = self._bufs.get(name)
        if buf is None or buf.shape[0] < rows or buf.shape[1] != cols:
            cap = max(rows, 64, 0 if buf is None else 2 * buf.shape[0])
            buf = np.empty((cap, cols))
            self._bufs[name] = buf
        out = buf[:rows]
        out[...] = 0.0
        return out


class EpochStats:
    """Per-run epoch statistics (window widths drive the perf story, so
    regressions must be visible in the bench payload)."""

    __slots__ = (
        "epochs",
        "scalar_windows",
        "epoch_events",
        "max_epoch_events",
        "events",
        "overwide_clamps",
        "link_fallbacks",
        "pool_fallbacks",
        "lookahead",
        "safe_lookahead",
    )

    def __init__(self, lookahead: float, safe_lookahead: float):
        self.epochs = 0
        self.scalar_windows = 0
        self.epoch_events = 0
        self.max_epoch_events = 0
        self.events = 0
        self.overwide_clamps = 0
        self.link_fallbacks = 0
        self.pool_fallbacks = 0
        self.lookahead = lookahead
        self.safe_lookahead = safe_lookahead

    def as_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "scalar_windows": self.scalar_windows,
            "events": self.events,
            "epoch_events": self.epoch_events,
            "mean_events_per_epoch": (
                self.epoch_events / self.epochs if self.epochs else 0.0
            ),
            "max_epoch_events": self.max_epoch_events,
            "overwide_clamps": self.overwide_clamps,
            "link_fallbacks": self.link_fallbacks,
            "pool_fallbacks": self.pool_fallbacks,
            "lookahead": self.lookahead,
            "safe_lookahead": self.safe_lookahead,
        }


class EpochPlan:
    """Everything one run needs, lowered to flat tables plus mutable
    playout state.  Built by :func:`compile_plan`, drained by
    :func:`execute_plan`."""

    # Plain attribute bag: ~40 tables/state fields, all assigned once in
    # compile_plan; __slots__ would only duplicate that list.
    def __init__(self):
        self.scratch = _Scratch()


# ---------------------------------------------------------------------------
# Compilation: protocol tables + artefacts -> flat execution plan.
# ---------------------------------------------------------------------------
def compile_plan(
    lower,
    b,
    dist,
    machine,
    design,
    *,
    dag,
    costs,
    in_flight_per_link: int,
) -> EpochPlan | None:
    """Lower one run onto an :class:`EpochPlan`.

    Returns ``None`` when the epoch algebra cannot cover the run (zero
    lookahead, or a zero-cost fan-out increment that would let a
    delivery land in the same instant as its POST) — callers delegate
    those to the array engine.
    """
    n = lower.shape[0]
    indptr = lower.indptr
    nnz = int(indptr[-1])
    gpu_spec = machine.gpu

    in_counts = np.diff(dag.in_ptr)
    col_nnz = np.diff(indptr)
    gather_t = gather_cost_table(costs.gather, in_counts)
    solve_t = solve_cost_table(gpu_spec.t_per_nnz, col_nnz, in_counts)
    t_disp = float(gpu_spec.t_warp_dispatch)

    pos_gather = gather_t[gather_t > 0.0]
    narrow = min(
        t_disp,
        float(solve_t.min()) if n else 0.0,
        float(pos_gather.min()) if len(pos_gather) else np.inf,
    )
    # Structure-derived epoch bound: valid whenever every dependent
    # component pays a positive gather (its solve then escapes any
    # epoch no wider than that gather).  Zero-gather designs keep the
    # conservative window — bit-for-bit the old behaviour.
    dep = in_counts > 0
    if dep.any():
        dep_gather = gather_t[dep]
        wide_ok = bool((dep_gather > 0.0).all())
        g_dep_min = float(dep_gather.min()) if wide_ok else 0.0
    else:
        wide_ok = True
        g_dep_min = np.inf
    safe = min(t_disp, g_dep_min) if wide_ok else narrow

    gpu_of = dist.gpu_of
    src_col = np.repeat(np.arange(n, dtype=np.int64), col_nnz)
    src_g_e = gpu_of[src_col]
    dst_g_e = gpu_of[lower.indices]
    local_e = src_g_e == dst_g_e
    inc_e, dl_e = edge_cost_tables(costs, src_g_e, dst_g_e, local_e)
    offdiag = np.ones(nnz, dtype=bool)
    offdiag[indptr[:-1]] = False
    min_inc = float(inc_e[offdiag].min()) if offdiag.any() else np.inf
    if safe <= 0.0 or min_inc <= 0.0:
        return None

    validate_diagonals(indptr, lower.indices, n)

    p = EpochPlan()
    p.n = n
    p.nnz = nnz
    p.n_gpus = machine.n_gpus
    p.t_disp = t_disp
    p.lookahead = safe
    p.safe_lookahead = safe

    p.indptr_np = np.asarray(indptr, dtype=np.int64)
    p.indptr_l = indptr.tolist()
    p.idx_np = lower.indices
    p.idx_l = lower.indices.tolist()
    p.data_np = lower.data
    p.data_l = lower.data.tolist()
    p.diag_np = lower.data[indptr[:-1]]
    p.b_np = np.asarray(b, dtype=np.float64)
    p.b_l = p.b_np.tolist()
    p.gpu_of = gpu_of
    p.g_l = gpu_of.tolist()
    p.gather_t = gather_t
    p.gather_l = gather_t.tolist()
    p.solve_t = solve_t
    p.solve_l = solve_t.tolist()
    p.local_np = local_e
    p.srcg_l = src_g_e.tolist()
    p.dstg_l = dst_g_e.tolist()

    # ---- compile-time fan-out pricing -------------------------------
    # uc_tab[e]: the update-cost prefix the scalar loop accumulates
    # when it reaches edge e of its column; built with the exact
    # per-column sequential addition order so the bits match.
    uc_tab = np.zeros(nnz)
    fan = col_nnz - 1
    if n and fan.any():
        first = p.indptr_np[:-1] + 1
        max_fan = int(fan.max())
        for k in range(max_fan):
            m = fan > k
            ek = first[m] + k
            if k == 0:
                uc_tab[ek] = inc_e[ek]
            else:
                uc_tab[ek] = uc_tab[ek - 1] + inc_e[ek]
    p.uc_tab = uc_tab
    p.e_delay = uc_tab + dl_e  # landing delay per edge (static)
    p.e_delay_l = p.e_delay.tolist()
    uc_tot = np.where(fan > 0, uc_tab[p.indptr_np[1:] - 1], 0.0)
    p.uc_tot = uc_tot
    p.uc_tot_l = uc_tot.tolist()
    p.fan = fan

    layout = TokenLayout.for_system(n, nnz)
    p.n8 = layout.local_base
    p.m8 = layout.xfer_base
    p.f8 = layout.failure_base
    p.spawn_code_l = layout.spawn_codes(local_e).tolist()

    bank = ResourceBank()
    for g in range(machine.n_gpus):
        bank.add(f"gpu{g}.warps", gpu_spec.warp_slots)
    topo = machine.topology
    phys = machine.active_gpus
    n_gpus = machine.n_gpus
    pair_rid = np.full(n_gpus * n_gpus, -1, dtype=np.int64)
    pair_wire = np.zeros(n_gpus * n_gpus)
    cross_pairs = np.unique(src_g_e[~local_e] * n_gpus + dst_g_e[~local_e])
    for pr in cross_pairs.tolist():
        src_pe, dst_pe = pr // n_gpus, pr % n_gpus
        ga, gb = int(phys[src_pe]), int(phys[dst_pe])
        capacity = link_capacity(topo, ga, gb, in_flight_per_link)
        pair_rid[pr] = bank.add(f"link{src_pe}->{dst_pe}", capacity)
        pair_wire[pr] = wire_time(topo, ga, gb)
    p.bank = bank
    p.elink_np = np.where(
        local_e, -1, pair_rid[src_g_e * n_gpus + dst_g_e]
    )
    p.elink_l = p.elink_np.tolist()
    p.ewire_np = np.where(
        local_e, 0.0, pair_wire[src_g_e * n_gpus + dst_g_e]
    )
    p.ewire_l = p.ewire_np.tolist()

    # ---- initial dispatch front: the calendar's first segment -------
    # The calendar is a list of time-sorted (times, codes) array
    # segments consumed through cursors; same-time tokens across
    # segments keep segment-creation order, which reproduces the
    # array engine's FIFO bucket-append order exactly.
    task_of = dist.task_of()
    launch = launch_times(dist.n_tasks, gpu_spec.t_kernel_launch)
    spawn_times = launch[task_of]
    order = np.argsort(spawn_times, kind="stable")
    p.cal_t = spawn_times[order]
    p.cal_c = order.astype(np.int64) << COMP_SHIFT

    # ---- mutable playout state --------------------------------------
    p.remaining = dag.in_degree.astype(np.int64).copy()
    p.left_sum = np.zeros(n)
    p.e_contrib = np.zeros(nnz)
    p.parked_ready = np.zeros(n, dtype=bool)
    p.x_np = np.zeros(n)
    return p


def execute_plan(
    plan: EpochPlan, *, trace_enabled: bool = True
) -> tuple[np.ndarray, float, Trace, int, int]:
    """Drain the calendar in macro-epochs; returns
    ``(x, total_time, trace, page_faults, events)`` bit-identical to
    the array engine."""
    global _LAST_STATS

    # Hot-loop local bindings (plan tables).
    scr = plan.scratch
    n8 = plan.n8
    m8 = plan.m8
    f8 = plan.f8
    indptr_np = plan.indptr_np
    indptr_l = plan.indptr_l
    idx_np = plan.idx_np
    idx_l = plan.idx_l
    data_np = plan.data_np
    data_l = plan.data_l
    diag_np = plan.diag_np
    b_np = plan.b_np
    b_l = plan.b_l
    gpu_of = plan.gpu_of
    g_l = plan.g_l
    gather_t = plan.gather_t
    gather_l = plan.gather_l
    solve_t = plan.solve_t
    solve_l = plan.solve_l
    local_np = plan.local_np
    srcg_l = plan.srcg_l
    dstg_l = plan.dstg_l
    e_delay = plan.e_delay
    e_delay_l = plan.e_delay_l
    uc_tot = plan.uc_tot
    uc_tot_l = plan.uc_tot_l
    spawn_code_l = plan.spawn_code_l
    elink_l = plan.elink_l
    elink_np = plan.elink_np
    ewire_l = plan.ewire_l
    ewire_np = plan.ewire_np
    e_contrib = plan.e_contrib
    remaining = plan.remaining
    left_sum = plan.left_sum
    parked_ready = plan.parked_ready
    x_np = plan.x_np
    t_disp = plan.t_disp
    # Calendar: time-sorted (times, codes) array segments consumed
    # through cursors, in creation order.  Same-time tokens order by
    # (segment id, intra-segment index), which reproduces the array
    # engine's FIFO bucket-append order without per-bucket dicts.
    if len(plan.cal_t):
        seg_ts = [plan.cal_t]
        seg_cs = [plan.cal_c]
        seg_cur = [0]
    else:
        seg_ts, seg_cs, seg_cur = [], [], []

    bank = plan.bank
    r_cap = bank.capacity
    r_used = bank.in_use
    r_tot = bank.total_acquisitions
    r_peak = bank.peak_in_use
    r_q = bank._queues

    safe_w = plan.safe_lookahead
    lookahead = plan.lookahead
    clamped = lookahead > safe_w
    if clamped:
        lookahead = safe_w
    stats = EpochStats(plan.lookahead, safe_w)

    trace = Trace(enabled=trace_enabled)
    emit = trace.emit if trace_enabled else None
    fast_run = emit is None
    c_dispatch = c_solve = c_release = c_xb = c_xe = 0
    nevents = 0
    now = 0.0
    wire_state = XFER_CLAIM + 1  # parked claims resume at the wire step

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        while seg_ts:
            t0 = min(
                seg_ts[s][seg_cur[s]] for s in range(len(seg_ts))
            )
            horizon = t0 + lookahead
            if clamped:
                stats.overwide_clamps += 1
            parts_t: list = []
            parts_c: list = []
            live_t: list = []
            live_c: list = []
            live_cur: list = []
            for s in range(len(seg_ts)):
                st = seg_ts[s]
                cur0 = seg_cur[s]
                if st[cur0] < horizon:
                    end = cur0 + int(np.searchsorted(
                        st[cur0:], horizon, side="left"
                    ))
                    parts_t.append(st[cur0:end])
                    parts_c.append(seg_cs[s][cur0:end])
                    if end < len(st):
                        live_t.append(st)
                        live_c.append(seg_cs[s])
                        live_cur.append(end)
                else:
                    live_t.append(st)
                    live_c.append(seg_cs[s])
                    live_cur.append(cur0)
            seg_ts, seg_cs, seg_cur = live_t, live_c, live_cur
            if len(parts_t) == 1:
                times_np = parts_t[0]
                codes_np = parts_c[0]
            else:
                tcat = np.concatenate(parts_t)
                ordw = np.argsort(tcat, kind="stable")
                times_np = tcat[ordw]
                codes_np = np.concatenate(parts_c)[ordw]
            total = len(times_np)

            if total < BATCH_MIN_EVENTS:
                # ------------------------------------------------------
                # Scalar sub-path: the array engine's loop, merged with
                # any in-window buckets its own pushes create.
                # ------------------------------------------------------
                stats.scalar_windows += 1
                codes_l = codes_np.tolist()
                ut_w, ustarts_w = np.unique(
                    times_np, return_index=True
                )
                wtimes = ut_w.tolist()
                ub_w = ustarts_w.tolist()
                ub_w.append(total)
                wlists = [
                    codes_l[ub_w[j] : ub_w[j + 1]]
                    for j in range(len(wtimes))
                ]
                nwin = len(wtimes)
                wmap = dict(zip(wtimes, wlists))
                wlast = wtimes[-1]
                lheap: list = []
                fut_t: list = []
                fut_c: list = []

                def spush(t2, ncode):
                    b2 = wmap.get(t2)
                    if b2 is not None:
                        b2.append(ncode)
                    elif t2 < wlast:
                        wmap[t2] = [ncode]
                        heappush(lheap, t2)
                    else:
                        fut_t.append(t2)
                        fut_c.append(ncode)

                wi = 0
                while wi < nwin:
                    tw = wtimes[wi]
                    if lheap and lheap[0] < tw:
                        t = heappop(lheap)
                        cur = wmap[t]
                    else:
                        t = tw
                        cur = wlists[wi]
                        wi += 1
                    now = t
                    for code in cur:
                        if code < 0:
                            e = -1 - code
                            dst = idx_l[e]
                            left_sum[dst] += e_contrib[e]
                            rem = remaining[dst] - 1
                            remaining[dst] = rem
                            if rem == 0 and parked_ready[dst]:
                                parked_ready[dst] = False
                                cur.append((dst << 3) | COMP_GATHER)
                            continue
                        if code >= n8:
                            if code < m8:
                                e = code - n8
                                t2 = now + e_delay_l[e]
                                ncode = -1 - e
                                if t2 > now:
                                    spush(t2, ncode)
                                else:
                                    cur.append(ncode)
                                continue
                            c = code - m8
                            st = c & 3
                            e = c >> 2
                            if st == XFER_RETIRE:
                                if emit is not None:
                                    emit(
                                        now, TRACE_XFER_END,
                                        gpu=srcg_l[e],
                                        detail=(
                                            srcg_l[e], dstg_l[e], idx_l[e]
                                        ),
                                    )
                                else:
                                    c_xe += 1
                                link = elink_l[e]
                                q = r_q[link]
                                if q:
                                    r_tot[link] += 1
                                    cur.append(q.popleft())
                                else:
                                    r_used[link] -= 1
                                t2 = now + e_delay_l[e]
                                ncode = -1 - e
                                if t2 > now:
                                    spush(t2, ncode)
                                else:
                                    cur.append(ncode)
                                continue
                            if st == XFER_CLAIM:
                                link = elink_l[e]
                                q = r_q[link]
                                if q or r_used[link] >= r_cap[link]:
                                    q.append(code + 1)
                                    continue
                                u = r_used[link] + 1
                                r_used[link] = u
                                r_tot[link] += 1
                                if u > r_peak[link]:
                                    r_peak[link] = u
                            if emit is not None:
                                emit(
                                    now, TRACE_XFER_BEGIN,
                                    gpu=srcg_l[e],
                                    detail=(
                                        srcg_l[e], dstg_l[e], idx_l[e]
                                    ),
                                )
                            else:
                                c_xb += 1
                            t2 = now + ewire_l[e]
                            ncode = code - st + XFER_RETIRE
                            if t2 > now:
                                spush(t2, ncode)
                            else:
                                cur.append(ncode)
                            continue
                        i = code >> 3
                        st = code & 7
                        if st == COMP_GATHER:
                            if remaining[i] > 0:
                                parked_ready[i] = True
                                continue
                            gather = gather_l[i]
                            if gather > 0.0:
                                t2 = now + gather
                                ncode = (code & -8) | COMP_SOLVE
                                if t2 > now:
                                    spush(t2, ncode)
                                else:
                                    cur.append(ncode)
                                continue
                            st = COMP_SOLVE
                        if st == COMP_SOLVE:
                            t2 = now + solve_l[i]
                            ncode = (code & -8) | COMP_POST
                            if t2 > now:
                                spush(t2, ncode)
                            else:
                                cur.append(ncode)
                            continue
                        if st == COMP_POST:
                            lo = indptr_l[i]
                            hi = indptr_l[i + 1]
                            xi = (b_l[i] - left_sum[i]) / data_l[lo]
                            x_np[i] = xi
                            g = g_l[i]
                            if emit is not None:
                                emit(now, TRACE_SOLVE, gpu=g, detail=i)
                            else:
                                c_solve += 1
                            for e in range(lo + 1, hi):
                                e_contrib[e] = data_l[e] * xi
                            if hi > lo + 1:
                                cur.extend(spawn_code_l[lo + 1 : hi])
                            uc = uc_tot_l[i]
                            if uc > 0.0:
                                t2 = now + uc
                                ncode = (code & -8) | COMP_RELEASE
                                if t2 > now:
                                    spush(t2, ncode)
                                else:
                                    cur.append(ncode)
                                continue
                            st = COMP_RELEASE
                        if st == COMP_RELEASE:
                            g = g_l[i]
                            if emit is not None:
                                emit(now, TRACE_RELEASE, gpu=g, detail=i)
                            else:
                                c_release += 1
                            q = r_q[g]
                            if q:
                                r_tot[g] += 1
                                cur.append(q.popleft())
                            else:
                                r_used[g] -= 1
                            continue
                        # COMP_ACQUIRE / COMP_DISPATCH
                        g = g_l[i]
                        if not st:  # COMP_ACQUIRE == 0
                            q = r_q[g]
                            if q or r_used[g] >= r_cap[g]:
                                q.append(code | COMP_DISPATCH)
                                continue
                            u = r_used[g] + 1
                            r_used[g] = u
                            r_tot[g] += 1
                            if u > r_peak[g]:
                                r_peak[g] = u
                        if emit is not None:
                            emit(now, TRACE_DISPATCH, gpu=g, detail=i)
                        else:
                            c_dispatch += 1
                        t2 = now + t_disp
                        ncode = (code & -8) | COMP_GATHER
                        if t2 > now:
                            spush(t2, ncode)
                        else:
                            cur.append(ncode)
                    nevents += len(cur)
                if fut_t:
                    fa = np.array(fut_t)
                    fo = np.argsort(fa, kind="stable")
                    seg_ts.append(fa[fo])
                    seg_cs.append(np.array(fut_c, dtype=np.int64)[fo])
                    seg_cur.append(0)
                continue

            # ==========================================================
            # Batch epoch.
            # ==========================================================
            stats.epochs += 1
            if fast_run:
                times_l = codes_l = None
            else:
                times_l = times_np.tolist()
                codes_l = codes_np.tolist()
            wmax = float(times_np[-1])
            internal = 0
            emits = [] if emit is not None else None

            is_neg = codes_np < 0
            is_comp = (~is_neg) & (codes_np < n8)
            comp_state = codes_np & 7

            # Escapes: vectorised segments (rows, t2, code) as 20-col
            # matrices, per-item 20-tuples, and rare tuple-keyed items.
            esc_mats: list = []
            esc_one: list = []
            esc_rare: list = []
            esc_append = esc_one.append
            # In-window deliveries: 19-col matrices (key row + edge),
            # per-item 19-tuples, and rare tuple-keyed landings.
            dl_mats: list = []
            dl_one: list = []
            rare_deliv: list = []

            link_ops: dict = {}
            gpu_ops: dict = {}
            # ``fast``: counters-only runs take vectorised resource
            # playout for provably queue-free links/pools; traced runs
            # (and contended epochs) keep the tuple mini-sims.
            fast = emits is None
            Ptup = None
            cl_e = None
            fz_j = rin_j = None

            # ---- phase A: route gen0 resource/hop tokens ------------
            # Gen0 transfer tokens are boundary stragglers (a wire that
            # crossed an epoch edge); their link must replay the exact
            # FIFO interleaving, so flag it for the tuple path.
            tuple_links = set()
            xsel = np.nonzero((codes_np >= m8) & (codes_np < f8))[0]
            if len(xsel):
                xc = codes_np[xsel] - m8
                xe_l = (xc >> 2).tolist()
                xst_l = (xc & 3).tolist()
                xt_l = times_np[xsel].tolist()
                xp_l = xsel.tolist()
                for j in range(len(xp_l)):
                    e = xe_l[j]
                    tuple_links.add(elink_l[e])
                    link_ops.setdefault(elink_l[e], []).append(
                        ((xt_l[j], 0, xp_l[j]), xst_l[j], e)
                    )
            hop_sel = np.nonzero(
                (codes_np >= n8) & (codes_np < m8)
            )[0]
            hop_in: list = []
            if len(hop_sel):
                he = codes_np[hop_sel] - n8
                ht = times_np[hop_sel]
                htd = ht + e_delay[he]
                h_in = htd < horizon
                n_out = int(np.count_nonzero(~h_in))
                if n_out:
                    seg = scr.mat("esc_hop", n_out, 20)
                    seg[:, 0] = ht[~h_in]
                    seg[:, _P_COL] = hop_sel[~h_in]
                    seg[:, 18] = htd[~h_in]
                    seg[:, 19] = -1 - he[~h_in]
                    esc_mats.append(seg)
                n_in = int(np.count_nonzero(h_in))
                if n_in:
                    # Delivery key (td, 1, (tp, 0, p), 0) — depth 2.
                    seg = scr.mat("dl_hop", n_in, 19)
                    seg[:, 0] = htd[h_in]
                    seg[:, 1] = 1.0
                    seg[:, 2] = ht[h_in]
                    seg[:, _P_COL] = hop_sel[h_in]
                    seg[:, 18] = he[h_in]
                    dl_mats.append(seg)
                    internal += n_in
                    hmax = float(htd[h_in].max())
                    if hmax > wmax:
                        wmax = hmax
            rel0_pos = np.nonzero(
                is_comp & (comp_state == COMP_RELEASE)
            )[0]
            acq_pos = np.nonzero(is_comp & (comp_state == 0))[0]
            if fast:
                acq_i = codes_np[acq_pos] >> 3
                acq_g = gpu_of[acq_i]
                acq_t = times_np[acq_pos]
                rel0_i = codes_np[rel0_pos] >> 3
                rel0_g = gpu_of[rel0_i]
                rel0_t = times_np[rel0_pos]
            else:
                for pos in rel0_pos.tolist():
                    i = codes_l[pos] >> 3
                    gpu_ops.setdefault(g_l[i], []).append(
                        ((times_l[pos], 0, pos), _OP_REL, i)
                    )
                for pos in acq_pos.tolist():
                    i = codes_l[pos] >> 3
                    gpu_ops.setdefault(g_l[i], []).append(
                        ((times_l[pos], 0, pos), _OP_ACQ, i)
                    )

            # ---- phase B0: the epoch's POST work-list ---------------
            # gen0 POSTs, plus *internalised* POSTs: a gen0 SOLVE whose
            # completion lands inside the epoch (its left.sum is final
            # — the last delivery preceded the gather), and a gen0
            # zero-gather GATHER that falls through to an in-window
            # solve.  Out-of-window completions escape as before.
            post_sel = np.nonzero(
                is_comp & (comp_state == COMP_POST)
            )[0]
            sol_sel = np.nonzero(
                is_comp & (comp_state == COMP_SOLVE)
            )[0]
            gath_sel = np.nonzero(
                is_comp & (comp_state == COMP_GATHER)
            )[0]

            ip_i_parts: list = []
            ip_t_parts: list = []
            ip_te_parts: list = []
            ip_p_parts: list = []
            if len(sol_sel):
                si = codes_np[sol_sel] >> 3
                tsv = times_np[sol_sel]
                tpv = tsv + solve_t[si]
                s_in = tpv < horizon
                n_out = int(np.count_nonzero(~s_in))
                if n_out:
                    seg = scr.mat("esc_solve", n_out, 20)
                    seg[:, 0] = tsv[~s_in]
                    seg[:, _P_COL] = sol_sel[~s_in]
                    seg[:, 18] = tpv[~s_in]
                    seg[:, 19] = (si[~s_in] << 3) | COMP_POST
                    esc_mats.append(seg)
                if s_in.any():
                    ip_i_parts.append(si[s_in])
                    ip_t_parts.append(tpv[s_in])
                    ip_te_parts.append(tsv[s_in])
                    ip_p_parts.append(sol_sel[s_in])
            if len(gath_sel):
                gi0 = codes_np[gath_sel] >> 3
                zg = (gather_t[gi0] == 0.0) & (remaining[gi0] == 0)
                if zg.any():
                    tgz = times_np[gath_sel]
                    tpz = tgz + solve_t[gi0]
                    cz = zg & (tpz < horizon)
                    if cz.any():
                        ip_i_parts.append(gi0[cz])
                        ip_t_parts.append(tpz[cz])
                        ip_te_parts.append(tgz[cz])
                        ip_p_parts.append(gath_sel[cz])
                        gath_sel = gath_sel[~cz]

            npA = len(post_sel)
            if ip_i_parts:
                ip_i = np.concatenate(ip_i_parts)
                ip_t = np.concatenate(ip_t_parts)
                ip_te = np.concatenate(ip_te_parts)
                ip_p = np.concatenate(ip_p_parts)
                npB = len(ip_i)
            else:
                npB = 0
            npost = npA + npB

            # ---- phase B: fused POST fan-out ------------------------
            if npost:
                P_i = scr.i64("post_i", npost)
                P_t = scr.f64("post_t", npost)
                P_rows = scr.mat("post_rows", npost, KEY_COLS)
                if npA:
                    P_i[:npA] = codes_np[post_sel] >> 3
                    P_t[:npA] = times_np[post_sel]
                    P_rows[:npA, 0] = P_t[:npA]
                    P_rows[:npA, _P_COL] = post_sel
                if npB:
                    P_i[npA:] = ip_i
                    P_t[npA:] = ip_t
                    P_rows[npA:, 0] = ip_t
                    P_rows[npA:, 1] = 1.0
                    P_rows[npA:, 2] = ip_te
                    P_rows[npA:, _P_COL] = ip_p
                    internal += npB
                    bmax = float(ip_t.max())
                    if bmax > wmax:
                        wmax = bmax

                xv = (b_np[P_i] - left_sum[P_i]) / diag_np[P_i]
                x_np[P_i] = xv

                # Push-key tuples per POST: only tuple-keyed consumers
                # (traces, contended mini-sim fallbacks) pay for them.
                if not fast:
                    P_t_l = P_t.tolist()
                    P_i_l = P_i.tolist()
                    Ptup = _post_tuples(
                        npA, npB, P_t, post_sel,
                        ip_te if npB else None, ip_p if npB else None,
                    )
                    for j in range(npost):
                        i = P_i_l[j]
                        emits.append((Ptup[j], TRACE_SOLVE, g_l[i], i))
                else:
                    c_solve += npost

                loE = indptr_np[P_i] + 1
                fanv = indptr_np[P_i + 1] - loE
                nE = int(fanv.sum())
                if nE:
                    seg_id = np.repeat(
                        np.arange(npost, dtype=np.int64), fanv
                    )
                    ends = np.cumsum(fanv)
                    sub = np.arange(nE, dtype=np.int64) - np.repeat(
                        ends - fanv, fanv
                    )
                    er = sub + loE[seg_id]
                    e_contrib[er] = data_np[er] * xv[seg_id]
                    tpE = P_t[seg_id]
                    tdE = tpE + e_delay[er]
                    locE = local_np[er]
                    inwE = tdE < horizon
                    internal += nE

                    sel_in = locE & inwE
                    m_in = int(np.count_nonzero(sel_in))
                    if m_in:
                        # Delivery key: POST -> hop -> landing, i.e.
                        # (td, 1, (tp, 1, K_post, sub), 0).
                        R = scr.mat("dl_post", m_in, 19)
                        sj = seg_id[sel_in]
                        R[:, 0] = tdE[sel_in]
                        R[:, 1] = 1.0
                        R[:, 2] = tpE[sel_in]
                        R[:, 3] = 1.0
                        R[:, 4:8] = P_rows[sj, 0:4]
                        R[:, _P_COL] = P_rows[sj, _P_COL]
                        R[:, _S_BASE - 1] = sub[sel_in]
                        R[:, 18] = er[sel_in]
                        dl_mats.append(R)
                        internal += m_in
                        dmax = float(tdE[sel_in].max())
                        if dmax > wmax:
                            wmax = dmax
                    sel_out = locE & ~inwE
                    m_out = int(np.count_nonzero(sel_out))
                    if m_out:
                        # Escape pushed by the hop: (tp, 1, K_post, sub)
                        E = scr.mat("esc_post", m_out, 20)
                        sj = seg_id[sel_out]
                        E[:, 0] = tpE[sel_out]
                        E[:, 1] = 1.0
                        E[:, 2:6] = P_rows[sj, 0:4]
                        E[:, _P_COL] = P_rows[sj, _P_COL]
                        E[:, _S_BASE] = sub[sel_out]
                        E[:, 18] = tdE[sel_out]
                        E[:, 19] = -1 - er[sel_out]
                        esc_mats.append(E)
                    cross_j = np.nonzero(~locE)[0]
                    if len(cross_j):
                        cl_e = er[cross_j]
                        cl_t = tpE[cross_j]
                        cl_seg = seg_id[cross_j]
                        cl_sub = sub[cross_j]
                        cl_lk = elink_np[cl_e]
                        if not fast:
                            sub_l = cl_sub.tolist()
                            er_l = cl_e.tolist()
                            seg_l = cl_seg.tolist()
                            for j in range(len(er_l)):
                                s = seg_l[j]
                                e = er_l[j]
                                link_ops.setdefault(
                                    elink_l[e], []
                                ).append((
                                    (P_t_l[s], 1, Ptup[s], sub_l[j]),
                                    _OP_CLAIM, e,
                                ))

                # Releases: in-window ones join the pool sims, the
                # rest escape with the POST itself as pusher.
                trel = P_t + uc_tot[P_i]
                fz = fanv == 0
                rel_in = (~fz) & (trel < horizon)
                rel_out = (~fz) & ~rel_in
                fz_j = np.nonzero(fz)[0]
                rin_j = np.nonzero(rel_in)[0]
                if fast:
                    fz_g = gpu_of[P_i[fz_j]]
                    rin_g = gpu_of[P_i[rin_j]]
                else:
                    for j in fz_j.tolist():
                        i = P_i_l[j]
                        gpu_ops.setdefault(g_l[i], []).append(
                            (Ptup[j], -1, i)
                        )
                    if len(rin_j):
                        trel_l = trel.tolist()
                        fan_l = fanv.tolist()
                        for j in rin_j.tolist():
                            i = P_i_l[j]
                            gpu_ops.setdefault(g_l[i], []).append(
                                (
                                    (trel_l[j], 1, Ptup[j], fan_l[j]),
                                    _OP_REL, i,
                                )
                            )
                if len(rin_j):
                    internal += len(rin_j)
                    rmax = float(trel[rin_j].max())
                    if rmax > wmax:
                        wmax = rmax
                m_out = int(np.count_nonzero(rel_out))
                if m_out:
                    E = scr.mat("esc_rel", m_out, 20)
                    E[:, 0:KEY_COLS] = P_rows[rel_out]
                    E[:, 18] = trel[rel_out]
                    E[:, 19] = (P_i[rel_out] << 3) | COMP_RELEASE
                    esc_mats.append(E)

            # ---- phase C: per-link transfer playout -----------------
            # Fast path: a link with no boundary stragglers, no parked
            # waiters, and capacity for the epoch's whole claim wave
            # grants FIFO with zero queueing — claims, retires and
            # deliveries then reduce to pure array arithmetic.  The
            # occupancy check is a sorted-merge high-water mark that
            # counts a tie as claim-before-retire, so it can only
            # overestimate; any overflow falls back to the tuple sim.
            if fast and cl_e is not None:
                for link in np.unique(cl_lk).tolist():
                    msk = cl_lk == link
                    lt = cl_t[msk]
                    e_grp = cl_e[msk]
                    m = len(lt)
                    runmax = -1
                    if link not in tuple_links and not r_q[link]:
                        if r_used[link] + m <= r_cap[link]:
                            # Even granting every claim with no retire
                            # fits; skip the sorted high-water scan.
                            runmax = r_used[link] + m
                        else:
                            ts_s = np.sort(lt)
                            freed = np.searchsorted(
                                ts_s + ewire_np[int(e_grp[0])], ts_s,
                                side="left",
                            )
                            runmax = r_used[link] + int((
                                np.arange(1, m + 1, dtype=np.int64)
                                - freed
                            ).max())
                    if runmax < 0 or runmax > r_cap[link]:
                        # Contended (or straggler-shared): replay the
                        # exact FIFO interleaving on the tuple sim.
                        stats.link_fallbacks += 1
                        if Ptup is None:
                            Ptup = _post_tuples(
                                npA, npB, P_t, post_sel,
                                ip_te if npB else None,
                                ip_p if npB else None,
                            )
                        lst = link_ops.setdefault(link, [])
                        lt_l = lt.tolist()
                        sg_l = cl_seg[msk].tolist()
                        sb_l = cl_sub[msk].tolist()
                        eg_l = e_grp.tolist()
                        for j in range(m):
                            lst.append((
                                (lt_l[j], 1, Ptup[sg_l[j]], sb_l[j]),
                                _OP_CLAIM, eg_l[j],
                            ))
                        continue
                    # Every claim grants on arrival; the queue stays
                    # empty, so retires never wake and sub2 == 0.
                    sg = cl_seg[msk]
                    sb = cl_sub[msk]
                    tr = lt + ewire_np[e_grp]
                    c_xb += m
                    r_tot[link] += m
                    if runmax > r_peak[link]:
                        r_peak[link] = runmax
                    rin = tr < horizon
                    n_rin = int(np.count_nonzero(rin))
                    r_used[link] += m - n_rin
                    if m - n_rin:
                        # Escaping wires: pusher is the claim key
                        # (t, 1, K_post, sub) — depth <= 3.
                        C = np.zeros((m - n_rin, 20))
                        so = sg[~rin]
                        C[:, 0] = lt[~rin]
                        C[:, 1] = 1.0
                        C[:, 2:6] = P_rows[so, 0:4]
                        C[:, _P_COL] = P_rows[so, _P_COL]
                        C[:, _S_BASE] = sb[~rin]
                        C[:, 18] = tr[~rin]
                        C[:, 19] = m8 + (
                            (e_grp[~rin] << 2) | XFER_RETIRE
                        )
                        esc_mats.append(C)
                    if n_rin:
                        c_xe += n_rin
                        internal += n_rin
                        trm = float(tr[rin].max())
                        if trm > wmax:
                            wmax = trm
                        e_in = e_grp[rin]
                        s_in2 = sg[rin]
                        sb_in = sb[rin]
                        tc_in = lt[rin]
                        tr_in = tr[rin]
                        td = tr_in + e_delay[e_in]
                        din = td < horizon
                        n_din = int(np.count_nonzero(din))
                        if n_din:
                            internal += n_din
                            tdm = float(td[din].max())
                            if tdm > wmax:
                                wmax = tdm
                            # Delivery key (td, 1, retire, 0) with
                            # retire = (tr, 1, claim, 0) — depth <= 5.
                            DD = np.zeros((n_din, 19))
                            si = s_in2[din]
                            DD[:, 0] = td[din]
                            DD[:, 1] = 1.0
                            DD[:, 2] = tr_in[din]
                            DD[:, 3] = 1.0
                            DD[:, 4] = tc_in[din]
                            DD[:, 5] = 1.0
                            DD[:, 6:10] = P_rows[si, 0:4]
                            DD[:, _P_COL] = P_rows[si, _P_COL]
                            DD[:, _S_BASE - 2] = sb_in[din]
                            DD[:, 18] = e_in[din]
                            dl_mats.append(DD)
                        if n_din < n_rin:
                            dout = ~din
                            so2 = s_in2[dout]
                            R2 = np.zeros((n_rin - n_din, 20))
                            R2[:, 0] = tr_in[dout]
                            R2[:, 1] = 1.0
                            R2[:, 2] = tc_in[dout]
                            R2[:, 3] = 1.0
                            R2[:, 4:8] = P_rows[so2, 0:4]
                            R2[:, _P_COL] = P_rows[so2, _P_COL]
                            R2[:, _S_BASE - 1] = sb_in[dout]
                            R2[:, 18] = td[dout]
                            R2[:, 19] = -1.0 - e_in[dout]
                            esc_mats.append(R2)

            for link, ops in link_ops.items():
                heapify(ops)
                q = r_q[link]
                while ops:
                    key, op, e = heappop(ops)
                    tk = key[0]
                    if op == _OP_CLAIM:
                        if q or r_used[link] >= r_cap[link]:
                            q.append(m8 + ((e << 2) | wire_state))
                            continue
                        u = r_used[link] + 1
                        r_used[link] = u
                        r_tot[link] += 1
                        if u > r_peak[link]:
                            r_peak[link] = u
                    if op != _OP_RETIRE:
                        # Wire step (granted claim, woken waiter, or a
                        # stray gen0 wire token).
                        if emits is not None:
                            emits.append((
                                key, TRACE_XFER_BEGIN, srcg_l[e],
                                (srcg_l[e], dstg_l[e], idx_l[e]),
                            ))
                        else:
                            c_xb += 1
                        tr = tk + ewire_l[e]
                        if tr < horizon:
                            heappush(
                                ops, ((tr, 1, key, 0), _OP_RETIRE, e)
                            )
                            if tr > wmax:
                                wmax = tr
                            internal += 1
                        else:
                            code2 = m8 + ((e << 2) | XFER_RETIRE)
                            kr = key_to_row(key)
                            if kr is None:
                                esc_rare.append((tr, key, code2))
                            else:
                                esc_append(
                                    (*kr[0], tr, float(code2))
                                )
                        continue
                    # Retire: end the transfer, hand over, land update.
                    if emits is not None:
                        emits.append((
                            key, TRACE_XFER_END, srcg_l[e],
                            (srcg_l[e], dstg_l[e], idx_l[e]),
                        ))
                    else:
                        c_xe += 1
                    sub2 = 0
                    if q:
                        r_tot[link] += 1
                        woken = q.popleft()
                        e2 = (woken - m8) >> 2
                        heappush(ops, ((tk, 1, key, 0), _OP_WIRE, e2))
                        internal += 1
                        sub2 = 1
                    else:
                        r_used[link] -= 1
                    td = tk + e_delay_l[e]
                    if td < horizon:
                        dk = (td, 1, key, sub2)
                        kr = key_to_row(dk)
                        if kr is None:
                            rare_deliv.append((dk, e))
                        else:
                            dl_one.append((*kr[0], float(e)))
                        if td > wmax:
                            wmax = td
                        internal += 1
                    else:
                        kr = key_to_row(key)
                        if kr is None:
                            esc_rare.append((td, key, -1 - e))
                        else:
                            esc_append((*kr[0], td, float(-1 - e)))

            # ---- phase D: assemble the epoch's delivery set ---------
            g0_p = np.nonzero(is_neg)[0]
            n_g0 = len(g0_p)
            if n_g0:
                G = scr.mat("dl_g0", n_g0, 19)
                G[:, 0] = times_np[is_neg]
                G[:, _P_COL] = g0_p
                G[:, 18] = -1 - codes_np[is_neg]
                dl_mats.append(G)
            if dl_one:
                dl_mats.append(np.array(dl_one))
            if dl_mats:
                n_bulk = sum(m.shape[0] for m in dl_mats)
                D = scr.mat("dl_all", n_bulk, 19)
                off = 0
                for m in dl_mats:
                    D[off : off + m.shape[0]] = m
                    off += m.shape[0]
                D_t = D[:, 0]
                D_m0 = D[:, 1]
                D_p = D[:, _P_COL]
                D_e = D[:, 18].astype(np.int64)
                D_dst = idx_np[D_e]
            else:
                n_bulk = 0

            # ---- phase E: gen0 GATHER resolution, landings, wakes ---
            ready_p = None
            if len(gath_sel):
                gi_v = codes_np[gath_sel] >> 3
                rem_v = remaining[gi_v]
                ready_mask = rem_v == 0
                pk = np.nonzero(rem_v > 0)[0]
                extra_p = np.empty(0, dtype=np.int64)
                if len(pk):
                    pk_pos = gath_sel[pk]
                    pk_i = gi_v[pk]
                    rems = rem_v[pk].copy()
                    if n_bulk:
                        # For each parked gather, count deliveries to
                        # its comp that key-sort strictly before the
                        # gather key (tg, 0, pos): rank the queries
                        # among the deliveries under the combined order
                        # (dst, t, marker, pos), then subtract the
                        # deliveries belonging to smaller dsts.  One
                        # lexsort replaces a per-gather mask scan.
                        nq = len(pk)
                        pk_t = times_np[pk_pos]
                        kt = np.concatenate((D_t, pk_t))
                        km = np.concatenate((D_m0, np.zeros(nq)))
                        kp = np.concatenate(
                            (D_p, pk_pos.astype(np.float64))
                        )
                        kd = np.concatenate((D_dst, pk_i))
                        order_q = np.lexsort((kp, km, kt, kd))
                        rank = np.empty(n_bulk + nq, dtype=np.int64)
                        rank[order_q] = np.arange(
                            n_bulk + nq, dtype=np.int64
                        )
                        q_rank = rank[n_bulk:]
                        sq = np.sort(q_rank)
                        before_q = np.searchsorted(
                            sq, q_rank, side="left"
                        )
                        cnt_lt = np.searchsorted(
                            np.sort(D_dst), pk_i, side="left"
                        )
                        rems -= (q_rank - before_q) - cnt_lt
                    if rare_deliv:
                        pos_l = pk_pos.tolist()
                        i_l = pk_i.tolist()
                        for j in np.nonzero(rems > 0)[0].tolist():
                            kg = (float(times_np[pos_l[j]]), 0, pos_l[j])
                            i = i_l[j]
                            for kdk, e2 in rare_deliv:
                                if idx_l[e2] == i and kdk < kg:
                                    rems[j] -= 1
                    park_sel = rems > 0
                    parked_ready[pk_i[park_sel]] = True
                    extra_p = pk_pos[~park_sel]
                ready_p = gath_sel[ready_mask]
                if len(extra_p):
                    ready_p = np.concatenate((ready_p, extra_p))
                if len(ready_p):
                    gii = codes_np[ready_p] >> 3
                    tgv = times_np[ready_p]
                    gv = gather_t[gii]
                    has_g = gv > 0.0
                    seg = scr.mat("esc_ready", len(ready_p), 20)
                    seg[:, 0] = tgv
                    seg[:, _P_COL] = ready_p
                    seg[:, 18] = np.where(
                        has_g, tgv + gv, tgv + solve_t[gii]
                    )
                    seg[:, 19] = np.where(
                        has_g,
                        (gii << 3) | COMP_SOLVE,
                        (gii << 3) | COMP_POST,
                    )
                    esc_mats.append(seg)

            if n_bulk or rare_deliv:
                if n_bulk:
                    sorder = _lexsort_rows(D)
                    SD = scr.mat("dl_sorted", n_bulk, 19)
                    np.take(D, sorder, axis=0, out=SD)
                    s_t = SD[:, 0]
                    s_e = SD[:, 18].astype(np.int64)
                else:
                    SD = None
                    s_t = np.empty(0)
                    s_e = np.empty(0, dtype=np.int64)
                r_final = None
                if rare_deliv:
                    rare_deliv.sort(key=itemgetter(0))

                    def _dkey(j):
                        return row_to_key(SD[j])

                    pos_list = []
                    for kd, _e2 in rare_deliv:
                        lo2, hi2 = 0, n_bulk
                        while lo2 < hi2:
                            mid = (lo2 + hi2) >> 1
                            if _dkey(mid) < kd:
                                lo2 = mid + 1
                            else:
                                hi2 = mid
                        pos_list.append(lo2)
                    pos_arr = np.array(pos_list, dtype=np.int64)
                    m_e = np.insert(
                        s_e, pos_arr,
                        np.array(
                            [e2 for _k, e2 in rare_deliv],
                            dtype=np.int64,
                        ),
                    )
                    m_t = np.insert(
                        s_t, pos_arr,
                        np.array([k[0] for k, _e2 in rare_deliv]),
                    )
                    r_final = pos_arr + np.arange(len(pos_arr))
                else:
                    m_e = s_e
                    m_t = s_t
                m_dst = idx_np[m_e]
                np.add.at(left_sum, m_dst, e_contrib[m_e])
                uniq_d, cnt_d = np.unique(m_dst, return_counts=True)
                remaining[uniq_d] -= cnt_d
                zero_sel = np.nonzero(remaining[uniq_d] == 0)[0]
                if len(zero_sel) and r_final is None:
                    # Bulk-only epoch: every zeroing delivery is a row
                    # of SD, so the wake rows build as one grouped
                    # child_row pass (per-depth column shifts).  Wake
                    # keys are unique (each wraps a distinct delivery
                    # key), so append order never reaches the final
                    # stable key sort.
                    perm = np.argsort(m_dst, kind="stable")
                    ends = np.cumsum(cnt_d) - 1
                    wake_ids = uniq_d[zero_sel]
                    wmask = parked_ready[wake_ids]
                    wsel = zero_sel[wmask]
                    if len(wsel):
                        wake_i = uniq_d[wsel]
                        parked_ready[wake_i] = False
                        internal += len(wsel)
                        z_arr = perm[ends[wsel]]
                        tz_arr = m_t[z_arr]
                        gv2 = gather_t[wake_i]
                        has_g2 = gv2 > 0.0
                        t_out_v = np.where(
                            has_g2, tz_arr + gv2,
                            tz_arr + solve_t[wake_i],
                        )
                        c_out_v = np.where(
                            has_g2,
                            (wake_i << 3) | COMP_SOLVE,
                            (wake_i << 3) | COMP_POST,
                        )
                        zrows = SD[z_arr]
                        markers = zrows[:, 1:2 * MAX_KEY_DEPTH:2]
                        depths = np.argmin(markers, axis=1) + 1
                        deep = depths >= MAX_KEY_DEPTH
                        if deep.any():
                            for jj in np.nonzero(deep)[0].tolist():
                                esc_rare.append((
                                    float(t_out_v[jj]),
                                    (float(tz_arr[jj]), 1,
                                     row_to_key(zrows[jj]), 0),
                                    int(c_out_v[jj]),
                                ))
                        sh = ~deep
                        nw = int(sh.sum())
                        if nw:
                            W = np.zeros((nw, 20))
                            wz = zrows[sh]
                            wd = depths[sh]
                            W[:, 0] = tz_arr[sh]
                            W[:, 1] = 1.0
                            W[:, _P_COL] = wz[:, _P_COL]
                            W[:, 18] = t_out_v[sh]
                            W[:, 19] = c_out_v[sh]
                            for dval in np.unique(wd).tolist():
                                m2 = wd == dval
                                W[m2, 2:2 + 2 * dval] = (
                                    wz[m2, 0:2 * dval]
                                )
                                for lvl in range(dval - 1):
                                    W[m2, _S_BASE - (lvl + 1)] = (
                                        wz[m2, _S_BASE - lvl]
                                    )
                            esc_mats.append(W)
                elif len(zero_sel):
                    perm = np.argsort(m_dst, kind="stable")
                    ends = np.cumsum(cnt_d) - 1
                    for j in zero_sel.tolist():
                        i = int(uniq_d[j])
                        if not parked_ready[i]:
                            continue
                        parked_ready[i] = False
                        z = int(perm[ends[j]])
                        tz = float(m_t[z])
                        jb = z
                        rare_k = None
                        if r_final is not None:
                            rb = int(np.searchsorted(r_final, z))
                            if (
                                rb < len(r_final)
                                and int(r_final[rb]) == z
                            ):
                                rare_k = rare_deliv[rb][0]
                            else:
                                jb = z - rb
                        internal += 1  # the wake GATHER event
                        gather = gather_l[i]
                        if gather > 0.0:
                            t_out2 = tz + gather
                            c_out2 = (i << 3) | COMP_SOLVE
                        else:
                            t_out2 = tz + solve_l[i]
                            c_out2 = (i << 3) | COMP_POST
                        if rare_k is not None:
                            esc_rare.append(
                                (t_out2, (tz, 1, rare_k, 0), c_out2)
                            )
                        else:
                            # Wake key: (tz, 1, zeroing delivery, 0).
                            zrow = SD[jb]
                            wrow = child_row(
                                zrow, row_depth(zrow), tz, 0.0
                            )
                            if wrow is None:
                                esc_rare.append((
                                    t_out2,
                                    (tz, 1, row_to_key(zrow), 0),
                                    c_out2,
                                ))
                            else:
                                esc_append(
                                    (*wrow, t_out2, float(c_out2))
                                )

            # ---- phase F: per-warp-pool playout ---------------------
            # Fast path mirrors phase C: a pool whose whole epoch wave
            # fits under the slot cap (tie counted acquire-first, so
            # the high-water mark only overestimates) grants every
            # acquire on arrival and no release ever wakes a waiter.
            # A release-free wave over a busy pool is still exact as a
            # prefix grant: acquires arrive in key order, so the first
            # free-slot ones grant and the rest park in that order.
            if fast:
                if npost:
                    rel_t_all = np.concatenate(
                        (rel0_t, P_t[fz_j], trel[rin_j])
                    )
                    rel_g_all = np.concatenate((rel0_g, fz_g, rin_g))
                else:
                    rel_t_all = rel0_t
                    rel_g_all = rel0_g
                pool_gs = np.unique(
                    np.concatenate((acq_g, rel_g_all))
                )
                for g in pool_gs.tolist():
                    q = r_q[g]
                    am = acq_g == g
                    ra = acq_t[am]
                    na = len(ra)
                    rmsk = rel_g_all == g
                    nrel = int(np.count_nonzero(rmsk))
                    if nrel == 0:
                        k = 0 if q else min(na, r_cap[g] - r_used[g])
                        if k:
                            c_dispatch += k
                            r_tot[g] += k
                            u = r_used[g] + k
                            r_used[g] = u
                            if u > r_peak[g]:
                                r_peak[g] = u
                            seg = np.zeros((k, 20))
                            seg[:, 0] = ra[:k]
                            seg[:, _P_COL] = acq_pos[am][:k]
                            seg[:, 18] = ra[:k] + t_disp
                            seg[:, 19] = (
                                (acq_i[am][:k] << 3) | COMP_GATHER
                            )
                            esc_mats.append(seg)
                        if na > k:
                            q.extend((
                                (acq_i[am][k:] << 3) | COMP_DISPATCH
                            ).tolist())
                        continue
                    ok = not q
                    if ok:
                        if not na:
                            runmax = r_used[g]
                        elif r_used[g] + na <= r_cap[g]:
                            # Fits even release-free; skip the sorted
                            # high-water scan.
                            runmax = r_used[g] + na
                        else:
                            ta_s = np.sort(ra)
                            tr_s = np.sort(rel_t_all[rmsk])
                            freed = np.searchsorted(
                                tr_s, ta_s, side="left"
                            )
                            runmax = r_used[g] + int((
                                np.arange(1, na + 1, dtype=np.int64)
                                - freed
                            ).max())
                        ok = runmax <= r_cap[g]
                    if ok:
                        c_dispatch += na
                        c_release += nrel
                        r_tot[g] += na
                        r_used[g] += na - nrel
                        if runmax > r_peak[g]:
                            r_peak[g] = runmax
                        if na:
                            seg = np.zeros((na, 20))
                            seg[:, 0] = ra
                            seg[:, _P_COL] = acq_pos[am]
                            seg[:, 18] = ra + t_disp
                            seg[:, 19] = (
                                (acq_i[am] << 3) | COMP_GATHER
                            )
                            esc_mats.append(seg)
                        continue
                    # Contended pool: rebuild the exact tuple op list
                    # (same insertion order as the traced path).
                    stats.pool_fallbacks += 1
                    if Ptup is None:
                        Ptup = _post_tuples(
                            npA, npB, P_t, post_sel,
                            ip_te if npB else None,
                            ip_p if npB else None,
                        )
                    ops = gpu_ops.setdefault(g, [])
                    r_sel = rel0_g == g
                    for tk, pos, i in zip(
                        rel0_t[r_sel].tolist(),
                        rel0_pos[r_sel].tolist(),
                        rel0_i[r_sel].tolist(),
                    ):
                        ops.append(((tk, 0, pos), _OP_REL, i))
                    for tk, pos, i in zip(
                        ra.tolist(),
                        acq_pos[am].tolist(),
                        acq_i[am].tolist(),
                    ):
                        ops.append(((tk, 0, pos), _OP_ACQ, i))
                    if npost:
                        for j in fz_j[fz_g == g].tolist():
                            ops.append((Ptup[j], -1, int(P_i[j])))
                        for j in rin_j[rin_g == g].tolist():
                            ops.append((
                                (float(trel[j]), 1, Ptup[j],
                                 int(fanv[j])),
                                _OP_REL, int(P_i[j]),
                            ))

            for g, ops in gpu_ops.items():
                ops.sort(key=itemgetter(0))
                q = r_q[g]
                for key, op, i in ops:
                    if op == _OP_ACQ:
                        if q or r_used[g] >= r_cap[g]:
                            q.append((i << 3) | COMP_DISPATCH)
                            continue
                        u = r_used[g] + 1
                        r_used[g] = u
                        r_tot[g] += 1
                        if u > r_peak[g]:
                            r_peak[g] = u
                        if emits is not None:
                            emits.append((key, TRACE_DISPATCH, g, i))
                        else:
                            c_dispatch += 1
                        kr = key_to_row(key)
                        esc_append((
                            *kr[0], key[0] + t_disp,
                            float((i << 3) | COMP_GATHER),
                        ))
                        continue
                    # Release (op == _OP_REL: its own event; op == -1:
                    # fall-through inside an empty-fan-out POST).
                    if emits is not None:
                        emits.append((key, TRACE_RELEASE, g, i))
                    else:
                        c_release += 1
                    if q:
                        r_tot[g] += 1
                        i2 = q.popleft() >> 3
                        tk = key[0]
                        internal += 1
                        if emits is not None:
                            emits.append(
                                ((tk, 1, key, 0), TRACE_DISPATCH, g, i2)
                            )
                        else:
                            c_dispatch += 1
                        dk = (tk, 1, key, 0)
                        kr = key_to_row(dk)
                        if kr is None:
                            esc_rare.append((
                                tk + t_disp, dk,
                                (i2 << 3) | COMP_GATHER,
                            ))
                        else:
                            esc_append((
                                *kr[0], tk + t_disp,
                                float((i2 << 3) | COMP_GATHER),
                            ))
                    else:
                        r_used[g] -= 1

            # ---- phase H: traces in key order, escapes into the
            # calendar in pusher-key order --------------------------
            if emits is not None:
                emits.sort(key=itemgetter(0))
                for key, kind, g, detail in emits:
                    emit(key[0], kind, gpu=g, detail=detail)

            if esc_one:
                esc_mats.append(np.array(esc_one))
            if esc_mats:
                n_esc = sum(m.shape[0] for m in esc_mats)
                E = scr.mat("esc_all", n_esc, 20)
                off = 0
                for m in esc_mats:
                    E[off : off + m.shape[0]] = m
                    off += m.shape[0]
            else:
                n_esc = 0
            if esc_rare and n_esc:
                comb = [
                    (row_to_key(E[j]), E[j, 18], int(E[j, 19]))
                    for j in range(n_esc)
                ]
                for t2, k, code in esc_rare:
                    comb.append((k, t2, code))
                comb.sort(key=itemgetter(0))
                et = np.array([r[1] for r in comb])
                ec = np.array([r[2] for r in comb], dtype=np.int64)
            elif n_esc:
                eorder = _lexsort_rows(E[:, :KEY_COLS])
                et = E[:, 18][eorder]
                ec = E[:, 19][eorder].astype(np.int64)
            elif esc_rare:
                esc_rare.sort(key=itemgetter(1))
                et = np.array([r[0] for r in esc_rare])
                ec = np.array(
                    [r[2] for r in esc_rare], dtype=np.int64
                )
            else:
                et = np.empty(0)
                ec = np.empty(0, dtype=np.int64)
            if len(ec):
                tins = np.argsort(et, kind="stable")
                seg_ts.append(et[tins])
                seg_cs.append(ec[tins])
                seg_cur.append(0)
            nevents += total + internal
            stats.epoch_events += total + internal
            if total + internal > stats.max_epoch_events:
                stats.max_epoch_events = total + internal
            now = wmax
    finally:
        if gc_was_enabled:
            gc.enable()

    if remaining.any():
        stuck: dict = {
            repr(("ready", i)): 1
            for i in range(plan.n)
            if parked_ready[i]
        }
        for rid, q in enumerate(r_q):
            if q:
                stuck[bank.names[rid]] = len(q)
        if stuck:
            raise DeadlockError(
                f"deadlock: {sum(stuck.values())} waiters with empty "
                f"event calendar; waiters per channel: {stuck}",
                blocked=stuck,
                diagnostics={
                    "now": now,
                    "events_processed": nevents,
                    "unsatisfied": int(np.count_nonzero(remaining)),
                },
            )
        raise SolverError("DES run finished with unsatisfied dependencies")
    if emit is None:
        trace.bulk_count(TRACE_DISPATCH, c_dispatch)
        trace.bulk_count(TRACE_SOLVE, c_solve)
        trace.bulk_count(TRACE_RELEASE, c_release)
        trace.bulk_count(TRACE_XFER_BEGIN, c_xb)
        trace.bulk_count(TRACE_XFER_END, c_xe)

    stats.events = nevents
    _LAST_STATS = stats.as_dict()
    return (x_np, now, trace, 0, nevents)
