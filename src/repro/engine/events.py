"""Event and command vocabulary of the discrete-event core.

Processes (Python generators) drive the simulation by yielding *commands*;
the :class:`~repro.engine.des.Simulator` interprets them:

* :class:`Timeout` — suspend for simulated time.
* :class:`Acquire` / :class:`Release` — claim / return one unit of a
  :class:`~repro.engine.resources.Resource` (warp slots, link channels).
* :class:`Wait` / :class:`Signal` — condition-variable style sleep/wake on
  a named channel (dependency counters reaching zero, page releases).

Events themselves are internal scheduler entries ordered by
``(time, seq)``; ``seq`` breaks ties deterministically in insertion order
so runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["Timeout", "Acquire", "Release", "Wait", "Signal", "ScheduledEvent"]


@dataclass(frozen=True)
class Timeout:
    """Suspend the yielding process for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative timeout {self.delay}")


@dataclass(frozen=True)
class Acquire:
    """Claim one unit of ``resource``; suspends until granted."""

    resource: "Any"  # repro.engine.resources.Resource (cycle-free typing)


@dataclass(frozen=True)
class Release:
    """Return one unit of ``resource``; never suspends."""

    resource: "Any"


@dataclass(frozen=True)
class Wait:
    """Sleep until another process signals ``channel``."""

    channel: Hashable


@dataclass(frozen=True)
class Signal:
    """Wake every process waiting on ``channel``; never suspends."""

    channel: Hashable


@dataclass(order=True)
class ScheduledEvent:
    """A reference-engine scheduler entry: resume ``process`` at ``time``.

    Ordering is ``(time, seq)`` — ``process`` never participates in
    comparisons.  The array engine does not allocate these; it keeps
    flat calendar rows instead (see :mod:`repro.engine.calendar`).
    """

    time: float
    seq: int
    process: Any = field(compare=False)
