"""Shared monotonic event-sequence counter for the DES engines.

Both simulator engines — the generator-based reference
(:class:`repro.engine.des.Simulator`) and the array-based fast path
(:mod:`repro.solvers.des_array`) — break heap ties at equal timestamps
with a monotone sequence number assigned at *schedule* time.  Trace
bit-equality across engines depends on the two assigning sequence
numbers identically, so the counter lives here, in one place, instead of
being re-implemented per engine.

The counter is deliberately minimal: ``next()`` returns the current
value and increments.  ``value`` exposes the next number to be issued
(useful for assertions in tests and for the array engine's batch
pre-assignment of the initial spawn block).
"""

from __future__ import annotations

__all__ = ["MonotonicSequence"]


class MonotonicSequence:
    """Monotone tie-break counter shared by the DES engines.

    >>> seq = MonotonicSequence()
    >>> seq.next(), seq.next(), seq.next()
    (0, 1, 2)
    >>> seq.value
    3
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next(self) -> int:
        """Issue the next sequence number (monotone, never reused)."""
        n = self._next
        self._next = n + 1
        return n

    def advance(self, count: int) -> int:
        """Reserve ``count`` consecutive numbers; return the first.

        The array engine uses this to pre-assign the initial spawn
        block's tie-breaks in one vectorised step while keeping the
        numbering identical to ``count`` individual :meth:`next` calls.
        """
        if count < 0:
            raise ValueError(f"cannot reserve {count} sequence numbers")
        first = self._next
        self._next = first + count
        return first

    @property
    def value(self) -> int:
        """The next number that :meth:`next` would return."""
        return self._next

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MonotonicSequence(next={self._next})"
