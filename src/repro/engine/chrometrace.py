"""Export DES traces in Chrome tracing format.

``chrome://tracing`` / Perfetto consume a simple JSON event list; this
module converts a :class:`~repro.engine.trace.Trace` (plus the component
metadata needed to reconstruct durations) into that format, giving the
reproduction the same profiling artefact a CUDA run would produce with
nsys: one row per GPU, solve spans coloured by category, fault events as
instants.

Times are emitted in microseconds (the format's native unit).
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.trace import Trace

__all__ = ["trace_to_chrome", "write_chrome_trace"]


def trace_to_chrome(
    trace: Trace,
    n_gpus: int,
    process_name: str = "simulated-node",
    solve_duration_us: float = 1.0,
) -> list[dict[str, Any]]:
    """Convert a trace to Chrome tracing events.

    Solve records become duration ("X") events of ``solve_duration_us``
    ending at their timestamp (the DES records completion times); fault
    and get records become instant ("i") events on their GPU row.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    for g in range(n_gpus):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": g,
                "args": {"name": f"GPU {g}"},
            }
        )
    for rec in trace.records:
        ts_us = rec.time * 1e6
        tid = rec.gpu if 0 <= rec.gpu < n_gpus else n_gpus
        if rec.kind == "solve":
            events.append(
                {
                    "name": f"solve x{rec.detail}",
                    "cat": "solve",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": max(ts_us - solve_duration_us, 0.0),
                    "dur": solve_duration_us,
                    "args": {"component": rec.detail},
                }
            )
        else:
            events.append(
                {
                    "name": rec.kind,
                    "cat": rec.kind,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "ts": ts_us,
                    "args": {"detail": rec.detail},
                }
            )
    return events


def write_chrome_trace(
    path: str,
    trace: Trace,
    n_gpus: int,
    **kwargs,
) -> int:
    """Write a trace as a Chrome tracing JSON file; returns event count."""
    events = trace_to_chrome(trace, n_gpus, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)
