"""Export DES traces in Chrome tracing format.

``chrome://tracing`` / Perfetto consume a simple JSON event list; this
module converts a :class:`~repro.engine.trace.Trace` (plus the component
metadata needed to reconstruct durations) into that format, giving the
reproduction the same profiling artefact a CUDA run would produce with
nsys: one row per GPU, solve spans coloured by category, fault events as
instants.

Times are emitted in microseconds (the format's native unit).
"""

from __future__ import annotations

import json
from typing import Any

from repro.engine.trace import Trace

__all__ = ["trace_to_chrome", "write_chrome_trace"]


def trace_to_chrome(
    trace: Trace,
    n_gpus: int,
    process_name: str = "simulated-node",
    solve_duration_us: float = 1.0,
) -> list[dict[str, Any]]:
    """Convert a trace to Chrome tracing events.

    Solve records become duration ("X") events of ``solve_duration_us``
    ending at their timestamp (the DES records completion times); fault
    and get records become instant ("i") events on their GPU row.

    Resilience records get first-class rendering: ``inject`` / ``retry``
    / ``recovered`` / ``msg_lost`` instants carry their edge and attempt
    in ``args``, ``gpu_fail`` is a global-scope instant, and flow arrows
    (``ph`` "s"/"t"/"f") chain each edge's inject → retry → recovered
    sequence and each ``gpu_fail`` to the ``remap`` events it caused, so
    a recovery episode reads as one connected arc in Perfetto.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    ]
    for g in range(n_gpus):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": g,
                "args": {"name": f"GPU {g}"},
            }
        )
    # Flow bookkeeping: per-edge recovery chains ("s" at the first
    # inject, "t" at intermediate hops, "f" at recovered/msg_lost) and
    # one arrow per gpu_fail -> remap pair.  Flow ids must be unique per
    # chain, so edge chains use the edge id directly and failure arrows
    # allocate above the edge-id space.
    open_chain: dict[int, bool] = {}
    fail_point: dict[int, tuple[float, int]] = {}
    next_fail_flow = 1 << 40

    def _flow(ph: str, flow_id: int, ts: float, tid: int) -> dict[str, Any]:
        ev = {
            "name": "recovery",
            "cat": "resilience",
            "ph": ph,
            "id": flow_id,
            "pid": 0,
            "tid": tid,
            "ts": ts,
        }
        if ph in ("t", "f"):
            ev["bp"] = "e"
        return ev

    def _edge_hop(e: int, last: bool, ts: float, tid: int) -> None:
        if not open_chain.get(e):
            open_chain[e] = True
            events.append(_flow("s", e, ts, tid))
        elif last:
            open_chain[e] = False
            events.append(_flow("f", e, ts, tid))
        else:
            events.append(_flow("t", e, ts, tid))

    def _instant(name, cat, ts, tid, args, scope="t"):
        events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": scope,
                "pid": 0,
                "tid": tid,
                "ts": ts,
                "args": args,
            }
        )

    for rec in trace.records:
        ts_us = rec.time * 1e6
        tid = rec.gpu if 0 <= rec.gpu < n_gpus else n_gpus
        kind, detail = rec.kind, rec.detail
        if kind == "solve":
            events.append(
                {
                    "name": f"solve x{detail}",
                    "cat": "solve",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": max(ts_us - solve_duration_us, 0.0),
                    "dur": solve_duration_us,
                    "args": {"component": detail},
                }
            )
        elif kind == "inject":
            tag, e, attempt = detail
            _instant(
                f"inject {tag} e{e}",
                "resilience",
                ts_us,
                tid,
                {"fault": tag, "edge": e, "attempt": attempt},
            )
            _edge_hop(int(e), False, ts_us, tid)
        elif kind == "retry":
            e, attempt, backoff = detail
            _instant(
                f"retry e{e}",
                "resilience",
                ts_us,
                tid,
                {"edge": e, "attempt": attempt, "backoff": backoff},
            )
            _edge_hop(int(e), False, ts_us, tid)
        elif kind == "recovered":
            e, attempts = detail
            _instant(
                f"recovered e{e}",
                "resilience",
                ts_us,
                tid,
                {"edge": e, "attempts": attempts},
            )
            _edge_hop(int(e), True, ts_us, tid)
        elif kind == "msg_lost":
            e, dst = detail
            _instant(
                f"msg_lost e{e}",
                "resilience",
                ts_us,
                tid,
                {"edge": e, "component": dst},
            )
            _edge_hop(int(e), True, ts_us, tid)
        elif kind == "gpu_fail":
            fail_point[int(detail)] = (ts_us, tid)
            _instant(
                f"gpu_fail {detail}",
                "resilience",
                ts_us,
                tid,
                {"gpu": detail},
                scope="g",
            )
        elif kind == "remap":
            comp, old_g = detail
            _instant(
                f"remap x{comp}",
                "resilience",
                ts_us,
                tid,
                {"component": comp, "from_gpu": old_g},
            )
            if int(old_g) in fail_point:
                f_ts, f_tid = fail_point[int(old_g)]
                events.append(_flow("s", next_fail_flow, f_ts, f_tid))
                events.append(_flow("f", next_fail_flow, ts_us, tid))
                next_fail_flow += 1
        else:
            _instant(kind, kind, ts_us, tid, {"detail": detail})
    return events


def write_chrome_trace(
    path: str,
    trace: Trace,
    n_gpus: int,
    **kwargs,
) -> int:
    """Write a trace as a Chrome tracing JSON file; returns event count."""
    events = trace_to_chrome(trace, n_gpus, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
    return len(events)
