"""Counted resources with FIFO queueing for the DES core.

A :class:`Resource` models anything with finite concurrent capacity —
GPU warp slots, a link's message channels, the single owner of a managed
page.  Processes interact with it only through the ``Acquire``/``Release``
commands; direct method calls exist for the simulator's use.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError

__all__ = ["Resource"]


@dataclass
class Resource:
    """A counted resource with a FIFO wait queue.

    Parameters
    ----------
    name:
        Diagnostic name (appears in deadlock reports).
    capacity:
        Number of units that may be held concurrently.
    """

    name: str
    capacity: int
    in_use: int = field(default=0, init=False)
    _queue: deque = field(default_factory=deque, init=False)
    # Statistics
    total_acquisitions: int = field(default=0, init=False)
    peak_in_use: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(f"resource {self.name!r} needs capacity >= 1")

    # Called by the simulator -------------------------------------------------
    def try_acquire(self, process: Any) -> bool:
        """Grant a unit if available, else enqueue ``process``."""
        if self.in_use < self.capacity and not self._queue:
            self._grant()
            return True
        self._queue.append(process)
        return False

    def release(self) -> Any | None:
        """Return a unit; pop and return the next waiter (if any).

        The returned process must be resumed by the simulator *with the
        grant already applied* (capacity is handed over directly, so a
        release-acquire pair cannot be stolen by a barging process).
        """
        if self.in_use <= 0:
            raise SimulationError(
                f"release of {self.name!r} with no outstanding acquisition"
            )
        if self._queue:
            # Hand the unit straight to the head waiter: in_use unchanged.
            self.total_acquisitions += 1
            return self._queue.popleft()
        self.in_use -= 1
        return None

    def _grant(self) -> None:
        self.in_use += 1
        self.total_acquisitions += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)

    # Introspection -----------------------------------------------------------
    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} used, "
            f"{len(self._queue)} queued)"
        )
