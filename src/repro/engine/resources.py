"""Counted resources with FIFO queueing for the DES core.

A :class:`Resource` models anything with finite concurrent capacity —
GPU warp slots, a link's message channels, the single owner of a managed
page.  Processes interact with it only through the ``Acquire``/``Release``
commands; direct method calls exist for the simulator's use.

:class:`ResourceBank` is the pooled counterpart for the array engine:
every warp-slot pool and link channel of a run lives as one *row* of
flat parallel arrays (capacity, in-use count, stats) plus a FIFO waiter
queue of integer process ids — no per-pool object, no per-acquire
allocation.  Grant/hand-over semantics are identical to
:class:`Resource`, which is what keeps the two engines' schedules
bit-comparable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError

__all__ = ["Resource", "ResourceBank"]


@dataclass
class Resource:
    """A counted resource with a FIFO wait queue.

    Parameters
    ----------
    name:
        Diagnostic name (appears in deadlock reports).
    capacity:
        Number of units that may be held concurrently.
    """

    name: str
    capacity: int
    in_use: int = field(default=0, init=False)
    _queue: deque = field(default_factory=deque, init=False)
    # Statistics
    total_acquisitions: int = field(default=0, init=False)
    peak_in_use: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(f"resource {self.name!r} needs capacity >= 1")

    # Called by the simulator -------------------------------------------------
    def try_acquire(self, process: Any) -> bool:
        """Grant a unit if available, else enqueue ``process``."""
        if self.in_use < self.capacity and not self._queue:
            self._grant()
            return True
        self._queue.append(process)
        return False

    def release(self) -> Any | None:
        """Return a unit; pop and return the next waiter (if any).

        The returned process must be resumed by the simulator *with the
        grant already applied* (capacity is handed over directly, so a
        release-acquire pair cannot be stolen by a barging process).
        """
        if self.in_use <= 0:
            raise SimulationError(
                f"release of {self.name!r} with no outstanding acquisition"
            )
        if self._queue:
            # Hand the unit straight to the head waiter: in_use unchanged.
            self.total_acquisitions += 1
            return self._queue.popleft()
        self.in_use -= 1
        return None

    def _grant(self) -> None:
        self.in_use += 1
        self.total_acquisitions += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)

    def drain(self) -> list:
        """Evict every queued waiter (FIFO order) without granting.

        Used by the resilience layer when the resource's owner fails
        (a dead GPU's warp-slot pool): the evicted processes must be
        resumed by the caller so they can observe the failure and exit —
        they were never granted a unit, so they must not release one.
        """
        waiters = list(self._queue)
        self._queue.clear()
        return waiters

    # Introspection -----------------------------------------------------------
    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity} used, "
            f"{len(self._queue)} queued)"
        )


class ResourceBank:
    """Pooled counted resources addressed by integer row id.

    One bank replaces a run's whole population of :class:`Resource`
    objects: :meth:`add` allocates a row (name, capacity, in-use count,
    acquisition stats, FIFO waiter queue) and returns its id; the array
    engine then acquires/releases by ``(row id, process id)`` with plain
    integer bookkeeping.  Semantics match :class:`Resource` exactly —
    FIFO waiters, capacity handed straight to the head waiter on release
    so a barging process can never steal a release-acquire pair.
    """

    __slots__ = (
        "names",
        "capacity",
        "in_use",
        "total_acquisitions",
        "peak_in_use",
        "_queues",
    )

    def __init__(self) -> None:
        self.names: list[str] = []
        self.capacity: list[int] = []
        self.in_use: list[int] = []
        self.total_acquisitions: list[int] = []
        self.peak_in_use: list[int] = []
        self._queues: list[deque] = []

    def add(self, name: str, capacity: int) -> int:
        """Allocate one pooled resource row; returns its id."""
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        rid = len(self.names)
        self.names.append(name)
        self.capacity.append(capacity)
        self.in_use.append(0)
        self.total_acquisitions.append(0)
        self.peak_in_use.append(0)
        self._queues.append(deque())
        return rid

    def try_acquire(self, rid: int, pid: int) -> bool:
        """Grant a unit of row ``rid`` if available, else enqueue ``pid``."""
        if self.in_use[rid] < self.capacity[rid] and not self._queues[rid]:
            used = self.in_use[rid] + 1
            self.in_use[rid] = used
            self.total_acquisitions[rid] += 1
            if used > self.peak_in_use[rid]:
                self.peak_in_use[rid] = used
            return True
        self._queues[rid].append(pid)
        return False

    def release(self, rid: int) -> int | None:
        """Return a unit of row ``rid``; pop and return the next waiter.

        As with :class:`Resource.release`, a returned process id must be
        resumed with the grant already applied (``in_use`` is unchanged
        on hand-over).
        """
        if self.in_use[rid] <= 0:
            raise SimulationError(
                f"release of {self.names[rid]!r} with no outstanding "
                "acquisition"
            )
        queue = self._queues[rid]
        if queue:
            self.total_acquisitions[rid] += 1
            return queue.popleft()
        self.in_use[rid] -= 1
        return None

    def queue_length(self, rid: int) -> int:
        return len(self._queues[rid])

    def __len__(self) -> int:
        return len(self.names)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResourceBank({len(self.names)} pooled resources)"
