"""Discrete-event simulation core: simulator, commands, resources, traces.

:mod:`repro.engine.protocol` additionally holds the engine-agnostic
SpTRSV execution protocol (lifecycle tables, token layout, timing rules,
delivery/fail-stop decision trees) that both DES engines interpret.
"""

from repro.engine.calendar import CalendarQueue
from repro.engine.chrometrace import trace_to_chrome, write_chrome_trace
from repro.engine.des import Process, Simulator
from repro.engine.events import (
    Acquire,
    Release,
    ScheduledEvent,
    Signal,
    Timeout,
    Wait,
)
from repro.engine.protocol import (
    ALL_TRACE_KINDS,
    COMPONENT_LIFECYCLE,
    TRANSFER_LIFECYCLE,
    DesignHooks,
    StateRule,
    TokenLayout,
    delivery_action,
    design_hooks,
)
from repro.engine.resources import Resource, ResourceBank
from repro.engine.sequence import MonotonicSequence
from repro.engine.trace import Trace, TraceRecord

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Acquire",
    "Release",
    "Wait",
    "Signal",
    "ScheduledEvent",
    "Resource",
    "ResourceBank",
    "CalendarQueue",
    "MonotonicSequence",
    "Trace",
    "TraceRecord",
    "trace_to_chrome",
    "write_chrome_trace",
    "StateRule",
    "TokenLayout",
    "DesignHooks",
    "COMPONENT_LIFECYCLE",
    "TRANSFER_LIFECYCLE",
    "ALL_TRACE_KINDS",
    "delivery_action",
    "design_hooks",
]
