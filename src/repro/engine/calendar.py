"""Flat event calendar for the DES engines.

The reference simulator keeps one ``heapq`` of ``(time, seq, process)``
tuples; at scale the per-event cost is dominated by tuple allocation
and Python-level comparisons.  :class:`CalendarQueue` replaces that
with an exact-time calendar:

* a dict maps each **distinct timestamp to a FIFO bucket** (a plain
  list of payloads) and a small heap orders the distinct timestamps;
* the initial spawn front (one event per component, times known
  upfront) is ingested with one vectorised stable argsort via
  :meth:`bulk_push`;
* pops drain the earliest bucket front-to-back, then advance to the
  next timestamp.

Why a FIFO bucket needs no intra-bucket ordering: the DES engines
assign their tie-break sequence numbers monotonically *at push time*,
and every push lands at ``time >= now``.  A payload appended to a
bucket therefore always carries a larger sequence number than every
payload already in it — insertion order **is** ``(time, seq)`` order.
That invariant is what makes the calendar bit-compatible with the
reference engine's ``(time, seq)`` heap while never materialising a
sequence number or an entry tuple (see ``tests/test_des_array.py`` for
the cross-engine golden equality this enables).

Clients that cannot guarantee push-order monotonicity (or that push
into the past) use ``mode="heap"``: a single tuple heap with an
internal :class:`~repro.engine.sequence.MonotonicSequence` breaking
timestamp ties in insertion order — the same helper the reference
simulator uses, so the tie-break rule lives in exactly one place.

The hot loop of :mod:`repro.solvers.des_array` inlines the FIFO
structure (dict + time heap + bucket cursor) into local variables
rather than calling :meth:`push`/:meth:`pop` a million times; the
class is the reference implementation of that structure and the unit
of test for its ordering rules.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.engine.sequence import MonotonicSequence

__all__ = ["CalendarQueue"]


class CalendarQueue:
    """Pending-event set drained in ``(time, insertion)`` order.

    Parameters
    ----------
    mode:
        ``"fifo"`` (default) — the exact-time calendar: payloads pushed
        at the same timestamp come back in insertion order, and pushes
        must never target a timestamp earlier than the latest popped
        one (the DES contract: delays are non-negative).  ``"heap"`` —
        general fallback on one tuple heap with a shared
        :class:`MonotonicSequence` tie-break; accepts pushes in any
        time order.
    """

    __slots__ = (
        "_mode",
        "_heap",
        "_seq",
        "_buckets",
        "_times",
        "_cur_time",
        "_cur",
        "_cur_pos",
        "_count",
    )

    def __init__(self, *, mode: str = "fifo"):
        if mode not in ("fifo", "heap"):
            raise ValueError(f"mode must be 'fifo' or 'heap', got {mode!r}")
        self._mode = mode
        self._heap: list[tuple] = []
        self._seq = MonotonicSequence()
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        self._cur_time: float | None = None
        self._cur: list | None = None
        self._cur_pos = 0
        self._count = 0

    # ------------------------------------------------------------- ingest
    def bulk_push(self, times: np.ndarray, payloads: np.ndarray) -> None:
        """Ingest a batch of events in one vectorised sort.

        Payload order within equal times follows the batch order (the
        stable sort keeps it), matching what sequential :meth:`push`
        calls would produce.
        """
        times = np.asarray(times, dtype=np.float64)
        payloads = np.asarray(payloads)
        order = np.argsort(times, kind="stable")
        if self._mode == "heap":
            for t, p in zip(times[order].tolist(), payloads[order].tolist()):
                heapq.heappush(self._heap, (t, self._seq.next(), p))
            self._count += len(times)
            return
        t_sorted = times[order]
        p_sorted = payloads[order].tolist()
        uniq, starts = np.unique(t_sorted, return_index=True)
        bounds = starts.tolist()
        bounds.append(len(p_sorted))
        uniq_l = uniq.tolist()
        buckets = self._buckets
        fresh = []
        for j, t in enumerate(uniq_l):
            bucket = buckets.get(t)
            if bucket is None:
                buckets[t] = p_sorted[bounds[j] : bounds[j + 1]]
                fresh.append(t)
            else:
                bucket.extend(p_sorted[bounds[j] : bounds[j + 1]])
        if fresh:
            self._times.extend(fresh)
            heapq.heapify(self._times)
        self._count += len(p_sorted)

    def push(self, time: float, payload) -> None:
        """Insert one event."""
        if self._mode == "heap":
            heapq.heappush(self._heap, (time, self._seq.next(), payload))
            self._count += 1
            return
        if time == self._cur_time:
            self._cur.append(payload)
        else:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [payload]
                heapq.heappush(self._times, time)
            else:
                bucket.append(payload)
        self._count += 1

    # ------------------------------------------------------------- drain
    def pop(self) -> tuple:
        """Remove and return the earliest ``(time, payload)``.

        Raises :class:`IndexError` when empty, so drain loops can use a
        bare ``try``/``except IndexError`` with no emptiness check.
        """
        count = self._count
        if not count:
            raise IndexError("pop from empty CalendarQueue")
        self._count = count - 1
        if self._mode == "heap":
            t, _, payload = heapq.heappop(self._heap)
            return (t, payload)
        cur = self._cur
        if cur is not None and self._cur_pos < len(cur):
            pos = self._cur_pos
            self._cur_pos = pos + 1
            return (self._cur_time, cur[pos])
        t, bucket = self._next_bucket()
        self._cur_time = t
        self._cur = bucket
        self._cur_pos = 1
        return (t, bucket[0])

    def pop_bucket(self) -> tuple:
        """Remove and return the earliest ``(time, bucket)`` whole.

        Ownership of the bucket list transfers to the caller, which
        drains it front-to-back — including any payload appended by
        :meth:`push` at the same timestamp while draining.  This is the
        batch form the array engine's hot loop uses: one heap operation
        per *distinct timestamp* instead of per event.
        """
        if self._mode == "heap":
            raise ValueError("pop_bucket requires mode='fifo'")
        if self._cur is not None and self._cur_pos < len(self._cur):
            t = self._cur_time
            bucket = self._cur[self._cur_pos :]
            self._cur = None
            self._cur_time = None
            self._count -= len(bucket)
            return (t, bucket)
        t, bucket = self._next_bucket()
        self._count -= len(bucket)
        return (t, bucket)

    def drain_time_batch(self) -> tuple:
        """Remove every payload at the earliest timestamp, as an array.

        Returns ``(time, payloads)`` where ``payloads`` is a numpy array
        of the equal-time batch in exactly the order repeated
        :meth:`pop` calls would have produced — insertion order for
        ``"fifo"``, ``(time, seq)`` order for ``"heap"``.  Unlike
        :meth:`pop_bucket` the batch is a snapshot: later pushes at the
        same timestamp open a fresh bucket instead of appending to the
        drained one, which is the contract batch engines want (a window
        is classified once, atomically).  Payloads must be homogeneous
        scalars (the token codes of the array/vector engines) for the
        array conversion to be meaningful.

        Raises :class:`IndexError` when empty.
        """
        if not self._count:
            raise IndexError("drain from empty CalendarQueue")
        if self._mode == "heap":
            heap = self._heap
            t = heap[0][0]
            out = []
            while heap and heap[0][0] == t:
                out.append(heapq.heappop(heap)[2])
            self._count -= len(out)
            return (t, np.asarray(out))
        cur = self._cur
        if cur is not None and self._cur_pos < len(cur):
            t = self._cur_time
            batch = cur[self._cur_pos :]
            self._cur = None
            self._cur_time = None
            self._count -= len(batch)
            return (t, np.asarray(batch))
        t, batch = self._next_bucket()
        self._count -= len(batch)
        return (t, np.asarray(batch))

    def _next_bucket(self) -> tuple:
        times = self._times
        if self._cur_time is not None:
            self._buckets.pop(self._cur_time, None)
            self._cur = None
            self._cur_time = None
        if not times:
            raise IndexError("pop from empty CalendarQueue")
        t = heapq.heappop(times)
        return (t, self._buckets.pop(t))

    def peek(self) -> tuple | None:
        """Earliest pending ``(time, payload)`` without removal."""
        if not self._count:
            return None
        if self._mode == "heap":
            t, _, payload = self._heap[0]
            return (t, payload)
        cur = self._cur
        if cur is not None and self._cur_pos < len(cur):
            return (self._cur_time, cur[self._cur_pos])
        t = self._times[0]
        return (t, self._buckets[t][0])

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CalendarQueue({self._count} pending, mode={self._mode!r})"
