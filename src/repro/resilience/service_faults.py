"""Service-level fault plans for the solve service (:mod:`repro.serve`).

PR 4's :class:`~repro.resilience.faults.FaultPlan` injects faults *inside*
one simulated solve — links, messages, GPUs.  A session server has its
own fault surface above any single solve: worker processes die, the
dispatch path stalls, clients stop reading their responses.  This module
names those faults the same way the solve-level plans do — a declarative
spec list materialised into an injector the service consults at its hook
points — so the service chaos suite can drive both layers through one
vocabulary.

Kinds
-----
``worker_kill``
    Kill ``count`` workers once the plan's clock passes ``at``.  In the
    inline pool the victim job raises
    :class:`~repro.errors.WorkerCrashError`; in the process pool a real
    child is SIGKILLed.  Either way the service's retry loop (backoff +
    jitter, pool rebuild) must recover.
``queue_stall``
    The dispatch loop sleeps through ``[at, at + duration)``: queued
    requests age toward their deadlines, exercising cooperative
    cancellation and the typed
    :class:`~repro.errors.DeadlineExceededError` path.
``slow_client``
    Response consumers add ``delay`` seconds per read inside
    ``[at, at + duration)`` (``duration`` 0 = forever).  The TCP
    front-end's bounded write path must drop the laggard instead of
    buffering without bound.

Determinism: all windows are relative to the injector's build time, so a
scenario replays identically against a fresh service.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import FaultInjectionError

__all__ = [
    "ServiceFaultKind",
    "ServiceFaultSpec",
    "ServiceFaultPlan",
    "ServiceFaultInjector",
]


class ServiceFaultKind(str, Enum):
    """The injectable service-level fault classes."""

    WORKER_KILL = "worker_kill"
    QUEUE_STALL = "queue_stall"
    SLOW_CLIENT = "slow_client"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One declarative service fault.

    Attributes
    ----------
    kind:
        The fault class (coerced from its string value).
    at:
        Seconds after injector build when the fault arms.
    duration:
        Window length for ``queue_stall`` / ``slow_client``
        (``slow_client`` treats 0 as "until shutdown").
    count:
        Workers to kill (``worker_kill`` only).
    delay:
        Per-read client delay in seconds (``slow_client`` only).
    """

    kind: ServiceFaultKind
    at: float = 0.0
    duration: float = 0.0
    count: int = 1
    delay: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "kind", ServiceFaultKind(self.kind))
        if self.at < 0.0:
            raise FaultInjectionError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0.0:
            raise FaultInjectionError(
                f"fault duration must be >= 0, got {self.duration}"
            )
        if self.kind is ServiceFaultKind.WORKER_KILL and self.count < 1:
            raise FaultInjectionError(
                f"worker_kill count must be >= 1, got {self.count}"
            )
        if self.kind is ServiceFaultKind.SLOW_CLIENT and self.delay <= 0.0:
            raise FaultInjectionError(
                f"slow_client delay must be > 0, got {self.delay}"
            )


@dataclass(frozen=True)
class ServiceFaultPlan:
    """Immutable list of service faults; ``build`` arms an injector."""

    specs: tuple = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "specs",
            tuple(
                s if isinstance(s, ServiceFaultSpec) else ServiceFaultSpec(**s)
                for s in self.specs
            ),
        )

    @property
    def is_null(self) -> bool:
        return not self.specs

    @classmethod
    def single(cls, kind, **kwargs) -> "ServiceFaultPlan":
        """Plan with one spec (the chaos suite's common case)."""
        return cls(specs=(ServiceFaultSpec(kind=kind, **kwargs),))

    def build(self, clock=time.monotonic) -> "ServiceFaultInjector":
        """Arm the plan against ``clock`` (injectable for tests)."""
        return ServiceFaultInjector(self, clock=clock)


@dataclass
class ServiceFaultInjector:
    """Armed service-fault state the service polls at its hook points.

    Counters (``kills_delivered``, ``stalls_served``,
    ``client_delays_served``) let the chaos suite assert a scenario
    actually fired rather than passing vacuously.
    """

    plan: ServiceFaultPlan
    clock: object = time.monotonic
    t0: float = field(init=False)
    kills_delivered: int = 0
    stalls_served: int = 0
    client_delays_served: int = 0
    _kills_pending: int = field(init=False, default=0)

    def __post_init__(self):
        self.t0 = self.clock()
        self._kills_pending = sum(
            s.count
            for s in self.plan.specs
            if s.kind is ServiceFaultKind.WORKER_KILL
        )

    @property
    def active(self) -> bool:
        return not self.plan.is_null

    def _elapsed(self) -> float:
        return self.clock() - self.t0

    # ----------------------------------------------------------- hook points
    def take_worker_kill(self) -> bool:
        """True exactly ``count`` times once a ``worker_kill`` spec arms."""
        if self._kills_pending <= 0:
            return False
        now = self._elapsed()
        for s in self.plan.specs:
            if s.kind is ServiceFaultKind.WORKER_KILL and now >= s.at:
                self._kills_pending -= 1
                self.kills_delivered += 1
                return True
        return False

    def dispatch_stall(self) -> float:
        """Remaining seconds of an armed ``queue_stall`` window (else 0)."""
        now = self._elapsed()
        for s in self.plan.specs:
            if (
                s.kind is ServiceFaultKind.QUEUE_STALL
                and s.at <= now < s.at + s.duration
            ):
                self.stalls_served += 1
                return s.at + s.duration - now
        return 0.0

    def client_delay(self) -> float:
        """Per-read delay of an armed ``slow_client`` window (else 0)."""
        now = self._elapsed()
        for s in self.plan.specs:
            if s.kind is ServiceFaultKind.SLOW_CLIENT and now >= s.at:
                if s.duration and now >= s.at + s.duration:
                    continue
                self.client_delays_served += 1
                return s.delay
        return 0.0
