"""Recovery policies and post-solve repair for faulted DES runs.

Three mechanisms, mirroring the layers "Elasticity in Parallel Sparse
Triangular Solve" identifies as sufficient for SpTRSV to tolerate
degraded communication:

* **bounded retry with exponential backoff** — a delivery the injector
  drops (or checksums as corrupted) is re-sent after
  ``retry_timeout * backoff**attempt``; :class:`RecoveryPolicy` bounds
  the attempts, and exhausting them raises a typed
  :class:`~repro.errors.RecoveryExhaustedError` instead of starving the
  dependant silently;
* **graceful degradation** — a ``gpu_fail`` fault hands the dead rank's
  unsolved components to
  :func:`repro.tasks.schedule.remap_failed_components`, which deals them
  over the survivors; the engines re-launch them after
  ``detect_latency``;
* **residual check + selective component replay** — silent corruption
  (an undetected ``left.sum`` bit-flip) survives the run but not
  :func:`residual_repair`: rows whose componentwise backward error
  exceeds the ceiling are recomputed, the fix propagated through their
  forward closure in dependency order, and a still-failing system raises
  :class:`RecoveryExhaustedError` rather than returning a wrong ``x``.

:func:`repro.runtime.session.resilient_run` composes all three around
:func:`repro.solvers.des_solver.des_execute` and is what the chaos
harness drives; :func:`resilient_execute` remains here as a deprecation
shim for it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RecoveryExhaustedError
from repro.sparse.csc import CscMatrix
from repro.sparse.validate import residual_norm

__all__ = [
    "RecoveryPolicy",
    "ResilientResult",
    "residual_repair",
    "resilient_execute",
    "stale_validate",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for every recovery mechanism (all on by default).

    Attributes
    ----------
    retry:
        Re-send dropped / corrupt-detected deliveries.  Off, a lost
        message starves its dependant and the deadlock detector fires.
    retry_timeout:
        Base re-send delay (the per-remote-get timeout).
    backoff:
        Exponential backoff factor; attempt ``a`` waits
        ``retry_timeout * backoff**a``.
    max_retries:
        Bounded retry: attempts past this raise
        :class:`RecoveryExhaustedError`.
    detect_corruption:
        Checksum deliveries: a bit-flipped contribution is detected at
        the receiver and re-sent like a drop.  Off, the corrupted value
        lands in ``left.sum`` (and only :func:`residual_repair` can
        catch it).
    remap_on_failure:
        Remap a failed GPU's unsolved components onto survivors.  Off,
        the failure starves every dependant (loud deadlock).
    detect_latency:
        Simulated time between a GPU failing and the survivors
        re-launching its work (failure-detector delay).
    residual_check:
        Run :func:`residual_repair` on the finished solution.
    residual_ceiling:
        Componentwise backward-error ceiling for the check (matches the
        conformance harness's differential oracle).
    """

    retry: bool = True
    retry_timeout: float = 1e-4
    backoff: float = 2.0
    max_retries: int = 8
    detect_corruption: bool = True
    remap_on_failure: bool = True
    detect_latency: float = 1e-5
    residual_check: bool = True
    residual_ceiling: float = 1e-8

    def retry_delay(self, attempt: int) -> float:
        """Backoff before re-sending delivery ``attempt`` (0-based)."""
        return self.retry_timeout * self.backoff**attempt


def _row_backward_errors(
    lower: CscMatrix, x: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Componentwise scaled residual per row (vector form of
    :func:`repro.sparse.validate.residual_norm`)."""
    r = lower.matvec(x) - b
    scale_mat = CscMatrix(
        lower.indptr, lower.indices, np.abs(lower.data), lower.shape
    )
    scale = scale_mat.matvec(np.abs(x)) + np.abs(b)
    scale[scale == 0.0] = 1.0
    return np.abs(r) / scale


def residual_repair(
    lower: CscMatrix,
    b: np.ndarray,
    x: np.ndarray,
    ceiling: float = 1e-8,
) -> tuple[np.ndarray, list[int]]:
    """Detect and repair silently corrupted components of ``x``.

    Rows whose componentwise backward error exceeds ``ceiling`` are the
    *suspects* (a corrupted ``left.sum`` makes exactly the victim row
    inconsistent); their forward closure — every component whose value
    was derived, directly or transitively, from a suspect — is replayed
    in dependency (ascending-index) order from the surviving clean
    values.  Returns ``(x_repaired, replayed_components)``; the input is
    not modified.  Raises :class:`RecoveryExhaustedError` when the
    repaired system still fails the ceiling (the corruption was not of
    the repairable single-component kind).
    """
    b = np.asarray(b, dtype=np.float64)
    errs = _row_backward_errors(lower, x, b)
    suspects = np.nonzero(errs > ceiling)[0]
    if len(suspects) == 0:
        return x, []

    x_fixed, replayed = _closure_replay(lower, b, x, suspects)
    final = residual_norm(lower, x_fixed, b)
    if final > ceiling:
        raise RecoveryExhaustedError(
            f"selective replay of {len(replayed)} components left backward "
            f"error {final:.3e} above ceiling {ceiling:.1e}",
            context={
                "suspects": [int(i) for i in suspects],
                "replayed": int(len(replayed)),
                "residual": final,
            },
        )
    return x_fixed, [int(i) for i in replayed]


def _closure_replay(
    lower: CscMatrix, b: np.ndarray, x: np.ndarray, suspects
) -> tuple[np.ndarray, np.ndarray]:
    """Forward-closure selective replay shared by :func:`residual_repair`
    and :func:`stale_validate`.

    Expands ``suspects`` to their forward closure over the dependency
    DAG (CSC column = out-edges), then re-solves the closure by partial
    forward substitution — left sums seeded from the clean columns,
    replayed in ascending order so each repaired value feeds its
    affected dependants.  Returns ``(x_fixed, replayed_indices)``; the
    input ``x`` is not modified.
    """
    n = lower.shape[0]
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    affected = np.zeros(n, dtype=bool)
    stack = [int(i) for i in suspects]
    while stack:
        i = stack.pop()
        if affected[i]:
            continue
        affected[i] = True
        for e in range(int(indptr[i]) + 1, int(indptr[i + 1])):
            j = int(indices[e])
            if not affected[j]:
                stack.append(j)

    x_fixed = np.asarray(x, dtype=np.float64).copy()
    left = np.zeros(n)
    for i in range(n):
        if affected[i]:
            continue
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        rows = indices[lo + 1 : hi]
        mask = affected[rows]
        if np.any(mask):
            left[rows[mask]] += data[lo + 1 : hi][mask] * x_fixed[i]
    replayed = np.nonzero(affected)[0]
    for i in replayed.tolist():
        lo, hi = int(indptr[i]), int(indptr[i + 1])
        x_fixed[i] = (b[i] - left[i]) / data[lo]
        rows = indices[lo + 1 : hi]
        mask = affected[rows]
        if np.any(mask):
            left[rows[mask]] += data[lo + 1 : hi][mask] * x_fixed[i]
    return x_fixed, replayed


def stale_validate(
    lower: CscMatrix,
    b,
    x: np.ndarray,
    ceiling: float,
) -> tuple[np.ndarray, list[int], list[int]]:
    """Post-hoc validation pass of the ``stale_sync`` design.

    A component that launched on a bounded-stale partial sum and never
    saw the late contributions land is exactly as inconsistent as a
    silently corrupted ``left.sum``: its own row's componentwise
    backward error equals the missing mass.  Rows above ``ceiling`` are
    the suspects; their forward closure is replayed from the clean
    values (:func:`residual_repair` machinery).  Returns
    ``(x_validated, suspects, replayed)`` — both index lists ascending,
    ``replayed`` a superset of ``suspects`` — and raises
    :class:`RecoveryExhaustedError` when the replayed system still
    fails the ceiling.
    """
    b = np.asarray(b, dtype=np.float64)
    errs = _row_backward_errors(lower, x, b)
    suspects = np.nonzero(errs > ceiling)[0]
    if len(suspects) == 0:
        return x, [], []
    x_fixed, replayed = _closure_replay(lower, b, x, suspects)
    final = residual_norm(lower, x_fixed, b)
    if final > ceiling:
        raise RecoveryExhaustedError(
            f"stale-read replay of {len(replayed)} components left "
            f"backward error {final:.3e} above ceiling {ceiling:.1e}",
            context={
                "suspects": [int(i) for i in suspects],
                "replayed": int(len(replayed)),
                "residual": final,
            },
        )
    return x_fixed, [int(i) for i in suspects], [int(i) for i in replayed]


@dataclass(frozen=True)
class ResilientResult:
    """Outcome of one :func:`resilient_execute` run."""

    x: np.ndarray
    execution: object  # repro.solvers.des_solver.DesExecution
    repaired: tuple[int, ...]
    residual: float


def resilient_execute(
    lower: CscMatrix,
    b,
    dist,
    machine,
    design,
    *,
    plan=None,
    recovery: RecoveryPolicy | None = None,
    watchdog=None,
    engine: str = "auto",
    trace_enabled: bool = True,
) -> ResilientResult:
    """Deprecated shim: use :func:`repro.runtime.session.resilient_run`
    (or a configured :class:`~repro.runtime.session.SolverSession`).

    The pipeline body moved to the runtime facade; this wrapper emits
    the documented ``repro.runtime shim`` DeprecationWarning and
    delegates unchanged.  Scheduled for removal in
    :data:`repro.runtime.shims.DEFAULT_REMOVAL_VERSION` (2.0.0).
    """
    from repro.runtime.session import resilient_run
    from repro.runtime.shims import shim_warn

    shim_warn(
        "repro.resilience.recovery.resilient_execute",
        "repro.runtime.resilient_run",
    )
    return resilient_run(
        lower,
        b,
        dist,
        machine,
        design,
        plan=plan,
        recovery=recovery,
        watchdog=watchdog,
        engine=engine,
        trace_enabled=trace_enabled,
    )
