"""Fault injection, recovery, and chaos testing for the DES solver stack.

The paper's synchronization-free execution model (Alg. 2/3) busy-waits
on ``in.degree`` / ``left.sum`` signals: one lost, delayed, or corrupted
inter-GPU message and the solve deadlocks or silently returns a wrong
``x``.  This subsystem makes those failure modes injectable,
survivable, and — above all — *loud*:

* :mod:`repro.resilience.faults` — a deterministic, seed-driven
  :class:`FaultPlan` / :class:`FaultInjector` that both DES engines
  consult at event-dispatch time (link outages, bandwidth degradation,
  dropped / delayed NVSHMEM messages, straggler SMs, whole-GPU
  failures, transient ``left.sum`` bit-flips);
* :mod:`repro.resilience.recovery` — per-message timeout with
  exponential backoff and bounded retry, GPU-failure remap onto
  survivors, and post-solve residual check + selective component
  replay for silent data corruption;
* :mod:`repro.resilience.watchdog` — a no-progress stall detector the
  engines poll as simulated time advances, raising a typed
  :class:`~repro.errors.DeadlockError` with a diagnostic trace instead
  of spinning forever;
* :mod:`repro.resilience.chaos` — the chaos harness: a fault-scenario
  matrix across designs and distributions asserting every cell either
  recovers to a bit-correct solution or fails with a typed
  :class:`~repro.errors.ReproError` — never hangs, never silently
  wrong;
* :mod:`repro.resilience.service_faults` — the same declarative
  vocabulary one layer up: worker kills, dispatch stalls, and slow
  clients injected into the :mod:`repro.serve` session server's own
  hook points (its chaos suite holds the *service* to the solve-level
  contract: typed error, certified degraded result, or bitwise
  recovery).

Determinism contract: a :class:`FaultPlan` materialises into pure
per-edge / per-component decision tables keyed by stable identities
(edge id, component id, delivery attempt), never by call order — which
is what lets the reference and array engines stay bit-identical under
fault injection, and an all-``none`` plan stay bit-identical to the
un-instrumented engines.
"""

from repro.resilience.chaos import (
    ChaosCell,
    ChaosReport,
    default_scenarios,
    run_chaos_matrix,
)
from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    flip_mantissa_bit,
)
from repro.resilience.recovery import (
    RecoveryPolicy,
    ResilientResult,
    resilient_execute,
    residual_repair,
)
from repro.resilience.service_faults import (
    ServiceFaultInjector,
    ServiceFaultKind,
    ServiceFaultPlan,
    ServiceFaultSpec,
)
from repro.resilience.watchdog import Watchdog

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "flip_mantissa_bit",
    "RecoveryPolicy",
    "ResilientResult",
    "resilient_execute",
    "residual_repair",
    "Watchdog",
    "ServiceFaultKind",
    "ServiceFaultSpec",
    "ServiceFaultPlan",
    "ServiceFaultInjector",
    "ChaosCell",
    "ChaosReport",
    "default_scenarios",
    "run_chaos_matrix",
]
