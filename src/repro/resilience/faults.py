"""Deterministic, seed-driven fault plans and the engine-facing injector.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries
plus a seed.  :meth:`FaultPlan.build` materialises it against one
concrete run (matrix + distribution) into a :class:`FaultInjector`: flat
per-edge and per-component decision tables that both DES engines consult
at event-dispatch time.

Two properties carry the whole subsystem:

* **Determinism** — every decision is drawn once, in a fixed order, from
  ``numpy.random.default_rng(seed)`` during :meth:`~FaultPlan.build`.
  The same ``(plan, matrix, distribution)`` always yields the identical
  fault schedule, so a chaos scenario is exactly reproducible from its
  seed.
* **Purity** — injector queries are pure functions of stable identities
  (edge id, component id, delivery attempt, current simulated time) and
  never of call order or engine internals.  The reference and array
  engines interleave their bookkeeping differently; keying decisions on
  identities rather than sequence is what keeps their faulted playouts
  bit-identical (``tests/test_des_array.py`` enforces it).

Fault vocabulary
----------------
``link_down``
    A directed PE pair's fabric is out for ``[t_start, t_end)``: a
    message putting its bits on the wire inside the window is held at
    the sender until the outage lifts, then pays the normal wire time.
``bandwidth``
    The pair's wire time is multiplied by ``factor`` inside the window
    (congestion / degraded NVLink).
``msg_drop``
    A seeded fraction (``rate``) of cross-GPU deliveries is lost
    ``repeats`` times; with a retry policy the sender re-sends after
    timeout + exponential backoff, without one the dependant starves
    and the deadlock detector fires.
``msg_delay``
    A seeded fraction of cross-GPU deliveries arrives ``extra_delay``
    late (out-of-order delivery stress for the busy-wait protocol).
``bitflip``
    ``count`` seeded deliveries have one mantissa bit of their
    ``left.sum`` contribution flipped — detected at delivery when the
    recovery policy checksums messages (then re-sent), or delivered
    silently corrupted otherwise (then caught by the post-solve
    residual check).
``straggler``
    Components on ``gpu`` pay ``factor`` times their solve cost inside
    the window (one slow SM / thermally throttled die).
``gpu_fail``
    GPU ``gpu`` fail-stops at ``t_start``: its unsolved components are
    remapped onto survivors when the recovery policy allows, otherwise
    every dependant starves loudly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.engine.protocol import FATE_CORRUPT, FATE_DELAY, FATE_DROP
from repro.errors import FaultInjectionError

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "flip_mantissa_bit",
    "FATE_DROP",
    "FATE_DELAY",
    "FATE_CORRUPT",
]

_INF = float("inf")


class FaultKind(str, Enum):
    """The injectable fault classes."""

    LINK_DOWN = "link_down"
    BANDWIDTH = "bandwidth"
    MSG_DROP = "msg_drop"
    MSG_DELAY = "msg_delay"
    BITFLIP = "bitflip"
    STRAGGLER = "straggler"
    GPU_FAIL = "gpu_fail"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Only the fields relevant to ``kind`` are read; see the module
    docstring for the per-kind semantics.  ``src_pe``/``dst_pe`` of -1
    mean "any pair"; windows default to "the whole run".
    """

    kind: FaultKind
    src_pe: int = -1
    dst_pe: int = -1
    gpu: int = -1
    t_start: float = 0.0
    t_end: float = _INF
    factor: float = 1.0
    rate: float = 0.0
    extra_delay: float = 0.0
    repeats: int = 1
    count: int = 1
    bit: int = 20

    def __post_init__(self) -> None:
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if self.t_end < self.t_start:
            raise FaultInjectionError(
                f"{kind}: window end {self.t_end} before start {self.t_start}"
            )
        if kind in (FaultKind.MSG_DROP, FaultKind.MSG_DELAY):
            if not 0.0 <= self.rate <= 1.0:
                raise FaultInjectionError(f"{kind}: rate must be in [0, 1]")
        if kind in (FaultKind.BANDWIDTH, FaultKind.STRAGGLER):
            if self.factor < 1.0:
                raise FaultInjectionError(
                    f"{kind}: factor must be >= 1.0 (got {self.factor})"
                )
        if kind in (FaultKind.STRAGGLER, FaultKind.GPU_FAIL) and self.gpu < 0:
            raise FaultInjectionError(f"{kind}: needs a target gpu")
        if kind is FaultKind.BITFLIP and not 0 <= self.bit <= 51:
            raise FaultInjectionError(
                f"bitflip: bit must be a mantissa bit in [0, 51]"
            )
        if self.repeats < 1 or self.count < 1:
            raise FaultInjectionError(f"{kind}: repeats/count must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded collection of faults, independent of any concrete run."""

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The null plan: consulted everywhere, changes nothing."""
        return cls(seed=seed, specs=())

    @classmethod
    def single(cls, kind: FaultKind | str, seed: int = 0, **fields) -> "FaultPlan":
        """Convenience: a plan with one spec of ``kind``."""
        return cls(seed=seed, specs=(FaultSpec(kind=FaultKind(kind), **fields),))

    @property
    def is_null(self) -> bool:
        return not self.specs

    def build(self, lower, dist) -> "FaultInjector":
        """Materialise the plan against one run into a `FaultInjector`.

        ``lower`` is the CSC system matrix, ``dist`` the
        :class:`~repro.tasks.schedule.Distribution`.  All random draws
        happen here, in spec order, from one ``default_rng(seed)``.
        """
        return FaultInjector(self, lower, dist)


def flip_mantissa_bit(value: float, bit: int) -> float:
    """Flip one mantissa bit of a binary64 value (pure, both engines).

    Bit 0 is the least-significant mantissa bit; bits 52+ (exponent /
    sign) are rejected at plan validation so a flip perturbs, never
    explodes, the value.
    """
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    return struct.unpack("<d", struct.pack("<Q", bits ^ (1 << bit)))[0]


# Delivery-fate tags returned by FaultInjector.delivery_fate are defined
# once in the protocol core (see the header import) and re-exported here.


class FaultInjector:
    """Materialised per-run decision tables; the engines' query surface.

    Built by :meth:`FaultPlan.build`; all attributes are read-only from
    the engines' point of view.

    Query surface (each pure in its arguments):

    * :meth:`wire_time` — effective wire time of a message starting its
      transfer at ``now`` (link outages, bandwidth degradation);
    * :meth:`delivery_fate` — what happens to delivery ``attempt`` of
      edge ``e``: ``None`` (clean), ``("drop",)``, ``("delay", extra)``
      or ``("corrupt", bit)``;
    * :meth:`solve_scale` — multiplier applied to component ``i``'s
      solve cost when it starts solving at ``now`` (stragglers);
    * :attr:`gpu_failures` — ``[(t_fail, gpu), ...]`` sorted by time.
    """

    def __init__(self, plan: FaultPlan, lower, dist):
        self.plan = plan
        n = lower.shape[0]
        indptr = lower.indptr
        nnz = int(indptr[-1])
        gpu_of = dist.gpu_of
        col_nnz = np.diff(indptr)
        col_of = np.repeat(np.arange(n, dtype=np.int64), col_nnz)
        src_pe_e = gpu_of[col_of]
        dst_pe_e = gpu_of[lower.indices]
        is_diag = lower.indices == col_of
        cross = (src_pe_e != dst_pe_e) & ~is_diag
        off_diag = ~is_diag

        rng = np.random.default_rng(plan.seed)

        # Link-window tables: list of (src, dst, t0, t1, factor-or-None)
        # per kind; scanned linearly (plans are tiny).
        self._outages: list[tuple[int, int, float, float]] = []
        self._degrades: list[tuple[int, int, float, float, float]] = []
        # Per-edge delivery fates: edge -> list of per-attempt fates
        # (attempts past the list are clean).
        self._fates: dict[int, list[tuple]] = {}
        # Per-component straggler windows: comp-array of factors + window.
        self._stragglers: list[tuple[int, float, float, float]] = []
        self.gpu_failures: list[tuple[float, int]] = []

        def _pair_edges(spec, mask):
            sel = mask.copy()
            if spec.src_pe >= 0:
                sel &= src_pe_e == spec.src_pe
            if spec.dst_pe >= 0:
                sel &= dst_pe_e == spec.dst_pe
            return np.nonzero(sel)[0]

        for spec in plan.specs:
            kind = spec.kind
            if kind is FaultKind.LINK_DOWN:
                self._outages.append(
                    (spec.src_pe, spec.dst_pe, spec.t_start, spec.t_end)
                )
            elif kind is FaultKind.BANDWIDTH:
                self._degrades.append(
                    (
                        spec.src_pe,
                        spec.dst_pe,
                        spec.t_start,
                        spec.t_end,
                        spec.factor,
                    )
                )
            elif kind is FaultKind.MSG_DROP:
                edges = _pair_edges(spec, cross)
                hit = edges[rng.random(len(edges)) < spec.rate]
                for e in hit.tolist():
                    fates = self._fates.setdefault(e, [])
                    fates.extend([(FATE_DROP,)] * spec.repeats)
            elif kind is FaultKind.MSG_DELAY:
                edges = _pair_edges(spec, cross)
                hit = edges[rng.random(len(edges)) < spec.rate]
                for e in hit.tolist():
                    self._fates.setdefault(e, []).append(
                        (FATE_DELAY, float(spec.extra_delay))
                    )
            elif kind is FaultKind.BITFLIP:
                edges = np.nonzero(off_diag)[0]
                if len(edges) == 0:
                    continue
                k = min(spec.count, len(edges))
                hit = rng.choice(edges, size=k, replace=False)
                for e in sorted(int(v) for v in hit):
                    self._fates.setdefault(e, []).append(
                        (FATE_CORRUPT, spec.bit)
                    )
            elif kind is FaultKind.STRAGGLER:
                self._stragglers.append(
                    (spec.gpu, spec.factor, spec.t_start, spec.t_end)
                )
            elif kind is FaultKind.GPU_FAIL:
                self.gpu_failures.append((spec.t_start, spec.gpu))
            else:  # pragma: no cover - enum is closed
                raise FaultInjectionError(f"unhandled fault kind {kind!r}")
        self.gpu_failures.sort()

        self.has_link_faults = bool(self._outages or self._degrades)
        self.has_delivery_faults = bool(self._fates)
        self.has_stragglers = bool(self._stragglers)
        self.has_gpu_failures = bool(self.gpu_failures)
        #: Whether the engines need any instrumented branches at all.
        self.active = (
            self.has_link_faults
            or self.has_delivery_faults
            or self.has_stragglers
            or self.has_gpu_failures
        )

    # ------------------------------------------------------------------
    def wire_time(
        self, src_pe: int, dst_pe: int, now: float, base: float
    ) -> tuple[float, str | None]:
        """Effective wire time of a transfer starting at ``now``.

        Returns ``(wire, tag)``; ``tag`` is ``None`` when untouched, or
        the fault kind that applied (for trace emission).  When no fault
        matches, ``base`` is returned *unchanged* (no arithmetic), so a
        null plan is bit-transparent.
        """
        wire = base
        tag = None
        for src, dst, t0, t1 in self._outages:
            if (src < 0 or src == src_pe) and (dst < 0 or dst == dst_pe):
                if t0 <= now < t1:
                    # Held at the sender until the outage lifts.
                    wire = (t1 - now) + wire
                    tag = FaultKind.LINK_DOWN.value
        for src, dst, t0, t1, factor in self._degrades:
            if (src < 0 or src == src_pe) and (dst < 0 or dst == dst_pe):
                if t0 <= now < t1:
                    wire = wire * factor
                    tag = FaultKind.BANDWIDTH.value
        return wire, tag

    def delivery_fate(self, e: int, attempt: int) -> tuple | None:
        """Fate of delivery ``attempt`` (0-based) of edge ``e``."""
        fates = self._fates.get(e)
        if fates is None or attempt >= len(fates):
            return None
        return fates[attempt]

    def solve_scale(self, i_gpu: int, now: float, base: float) -> float:
        """Solve cost of a component on ``i_gpu`` starting at ``now``."""
        cost = base
        for gpu, factor, t0, t1 in self._stragglers:
            if gpu == i_gpu and t0 <= now < t1:
                cost = cost * factor
        return cost

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able materialised schedule (determinism tests, artefacts)."""
        return {
            "seed": self.plan.seed,
            "outages": list(self._outages),
            "degrades": list(self._degrades),
            "fates": {
                str(e): [list(f) for f in fates]
                for e, fates in sorted(self._fates.items())
            },
            "stragglers": list(self._stragglers),
            "gpu_failures": list(self.gpu_failures),
        }
