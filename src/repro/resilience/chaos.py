"""Chaos harness: fault-scenario matrix over designs × distributions.

Sweeps a deterministic fault-scenario matrix (≥5 fault kinds) across
execution designs (``unified`` / ``zerocopy`` / ``stale``) and task
distributions (``block`` / ``taskpool`` / ``costaware``), asserting the
resilience contract cell by cell: every run either **recovers to a
bit-correct solution** or **fails with a typed**
:class:`~repro.errors.ReproError` — never hangs, never returns a
silently wrong answer.

Bitwise oracle
--------------
The workload is :func:`repro.workloads.generators.forest_lower`: every
row has at most one off-diagonal entry, so ``left.sum`` is a single
product and no fault-induced delivery reordering can reassociate a
floating-point sum.  A recovered run must therefore match the serial
forward substitution — and the cell's own unfaulted baseline — *bit for
bit*; ``"close enough"`` does not exist here, which is exactly what
keeps silent corruption from hiding behind round-off.  The one
principled exception is the ``"certify"`` expectation: a silent
corruption whose backward error sits below the recovery policy's
residual ceiling is provably invisible to any residual test, so those
cells accept "bitwise, or certified within the ceiling".  The
``stale`` design gets the same treatment against its (much tighter)
:class:`~repro.engine.protocol.StalePolicy` ceiling: a sub-ceiling
stale read is deliberately not replayed, so a faulted run may land on
a different — equally certified — sub-ceiling solution than the
unfaulted baseline.

Scenario windows scale with the cell's unfaulted makespan ``T`` so the
same scenario list stresses every design/distribution at comparable
phases of the solve.  In full (non-``quick``) mode every cell is run on
*both* DES engines and the pair must agree bitwise (solution, makespan,
event count) or on the same typed error — the fault-injection paths are
held to the same bit-equality contract as the clean ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import (
    DeadlockError,
    RecoveryExhaustedError,
    ReproError,
    SolverError,
)
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.resilience.recovery import RecoveryPolicy
from repro.resilience.watchdog import Watchdog

__all__ = [
    "ChaosScenario",
    "ChaosCell",
    "ChaosReport",
    "axes_from_config",
    "default_scenarios",
    "run_chaos_matrix",
]

#: Scenario subset exercised by ``run_chaos_matrix(quick=True)`` (CI).
QUICK_SCENARIOS = (
    "msg_drop",
    "bitflip_silent",
    "gpu_fail_remap",
    "drop_noretry",
    "livelock_watchdog",
)

#: Designs under test: exact unified-memory page table, the read-only
#: zero-copy NVSHMEM design (the paper's two endpoints), and its
#: stale-synchronous variant with post-hoc validation.
DESIGNS = ("unified", "zerocopy", "stale")
#: Distributions under test: contiguous blocks, the paper's task pool,
#: and the cost-aware LPT placement.
DISTRIBUTIONS = ("block", "taskpool", "costaware")


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault scenario.

    ``plan_of`` maps the cell's unfaulted makespan ``T`` to a
    :class:`FaultPlan`, so windows and failure times land at comparable
    solve phases across designs/distributions.  ``expect`` is
    ``"recover"`` (bit-correct solution required), ``"certify"``
    (bit-correct, or — for silent corruption the residual check provably
    cannot see — backward error within the recovery policy's ceiling),
    or ``"error"`` (one of ``expected_errors`` must be raised).
    """

    name: str
    plan_of: Callable[[float], FaultPlan]
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    expect: str = "recover"
    expected_errors: tuple = (ReproError,)


def default_scenarios(quick: bool = False) -> list[ChaosScenario]:
    """The standard scenario list (all seven fault kinds + loud-failure
    and watchdog cells); ``quick`` selects the CI subset."""
    s = []

    def add(name, plan_of, expect="recover", recovery=None, errors=None):
        s.append(
            ChaosScenario(
                name=name,
                plan_of=plan_of,
                recovery=recovery if recovery is not None else RecoveryPolicy(),
                expect=expect,
                expected_errors=tuple(errors) if errors else (ReproError,),
            )
        )

    add(
        "link_down",
        lambda T: FaultPlan.single(
            FaultKind.LINK_DOWN, t_start=0.05 * T, t_end=0.35 * T
        ),
    )
    add(
        "bandwidth_x8",
        lambda T: FaultPlan.single(FaultKind.BANDWIDTH, factor=8.0),
    )
    add(
        "msg_drop",
        lambda T: FaultPlan.single(FaultKind.MSG_DROP, rate=0.3, seed=11),
    )
    add(
        "msg_delay",
        lambda T: FaultPlan.single(
            FaultKind.MSG_DELAY, rate=0.3, extra_delay=0.25 * T, seed=12
        ),
    )
    add(
        "bitflip_checksum",
        lambda T: FaultPlan.single(FaultKind.BITFLIP, count=2, bit=23, seed=13),
    )
    # Silent corruption is only repairable when it is *detectable*: a
    # flip on a contribution that is tiny relative to its row's scale
    # sits below any backward-error ceiling, so the contract here is
    # "certify", not unconditional bitwise recovery.
    add(
        "bitflip_silent",
        lambda T: FaultPlan.single(FaultKind.BITFLIP, count=1, bit=30, seed=14),
        recovery=RecoveryPolicy(detect_corruption=False),
        expect="certify",
    )
    add(
        "straggler_x16",
        lambda T: FaultPlan.single(
            FaultKind.STRAGGLER, gpu=1, factor=16.0, t_start=0.0, t_end=0.6 * T
        ),
    )
    add(
        "gpu_fail_remap",
        lambda T: FaultPlan.single(FaultKind.GPU_FAIL, gpu=2, t_start=0.25 * T),
    )
    # Loud-failure cells: recovery deliberately hobbled — the contract is
    # a typed error, never a hang and never a wrong answer.
    add(
        "drop_noretry",
        lambda T: FaultPlan.single(FaultKind.MSG_DROP, rate=1.0, seed=15),
        expect="error",
        recovery=RecoveryPolicy(retry=False),
        errors=(DeadlockError, SolverError),
    )
    add(
        "gpu_fail_noremap",
        lambda T: FaultPlan.single(FaultKind.GPU_FAIL, gpu=1, t_start=0.05 * T),
        expect="error",
        recovery=RecoveryPolicy(remap_on_failure=False),
        errors=(DeadlockError, SolverError),
    )
    add(
        "retry_exhausted",
        lambda T: FaultPlan.single(
            FaultKind.MSG_DROP, rate=1.0, repeats=12, seed=16
        ),
        expect="error",
        recovery=RecoveryPolicy(max_retries=4),
        errors=(RecoveryExhaustedError,),
    )
    # The watchdog itself under test: a permanent outage turns the
    # busy-wait protocol into a livelock only the stall detector can end.
    add(
        "livelock_watchdog",
        lambda T: FaultPlan.single(FaultKind.LINK_DOWN, t_start=0.02 * T),
        expect="error",
        errors=(DeadlockError,),
    )
    if quick:
        s = [sc for sc in s if sc.name in QUICK_SCENARIOS]
    return s


@dataclass(frozen=True)
class ChaosCell:
    """Outcome of one (scenario × design × distribution) cell."""

    scenario: str
    design: str
    dist: str
    engine: str
    expect: str
    outcome: str
    ok: bool
    error_type: str = ""
    error: str = ""
    repaired: int = 0
    residual: float = 0.0
    events: int = 0
    total_time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "design": self.design,
            "dist": self.dist,
            "engine": self.engine,
            "expect": self.expect,
            "outcome": self.outcome,
            "ok": self.ok,
            "error_type": self.error_type,
            "error": self.error,
            "repaired": self.repaired,
            "residual": self.residual,
            "events": self.events,
            "total_time": self.total_time,
        }


@dataclass(frozen=True)
class ChaosReport:
    """Full scenario-matrix result (JSON-able CI artefact)."""

    n: int
    seed: int
    quick: bool
    cells: tuple[ChaosCell, ...]

    @property
    def green(self) -> bool:
        return all(c.ok for c in self.cells)

    @property
    def failed(self) -> tuple[ChaosCell, ...]:
        return tuple(c for c in self.cells if not c.ok)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "seed": self.seed,
            "quick": self.quick,
            "green": self.green,
            "cells": [c.to_dict() for c in self.cells],
        }

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)

    def summary_lines(self) -> list[str]:
        lines = []
        for c in self.cells:
            mark = "ok " if c.ok else "RED"
            if c.outcome == "recovered":
                extra = f"x bit-correct, residual {c.residual:.2e}"
            elif c.outcome == "certified":
                extra = f"sub-ceiling corruption, residual {c.residual:.2e}"
            else:
                extra = f"{c.error_type}: {c.error[:60]}"
            lines.append(
                f"[{mark}] {c.scenario:18s} {c.design:8s} {c.dist:9s} "
                f"{c.engine:9s} -> {c.outcome:15s} {extra}"
            )
        ok = sum(1 for c in self.cells if c.ok)
        lines.append(f"{ok}/{len(self.cells)} cells green")
        return lines


def _distributions(lower, n_gpus: int, machine) -> dict:
    from repro.tasks.schedule import (
        block_distribution,
        costaware_distribution,
        round_robin_distribution,
    )

    n = lower.shape[0]
    return {
        "block": block_distribution(n, n_gpus),
        "taskpool": round_robin_distribution(n, n_gpus, tasks_per_gpu=2),
        # One pricing (the default read-only design) serves every cell:
        # placement is a heuristic, correctness is placement-invariant.
        "costaware": costaware_distribution(lower, n_gpus, machine),
    }


def _design(name: str):
    from repro.exec_model.costmodel import Design

    return {
        "unified": Design.UNIFIED,
        "zerocopy": Design.SHMEM_READONLY,
        "stale": Design.STALE_SYNC,
    }[name]


def axes_from_config(config) -> dict:
    """Map a :class:`~repro.runtime.RunConfig` onto chaos-matrix axes.

    The config's single-valued knobs pin the matching axis to a
    one-element tuple: ``design`` → ``designs``, ``distribution`` →
    ``dists``, ``engine`` → ``engines`` (``"auto"`` keeps the default
    per-mode engine axis).  Designs the matrix has no vocabulary for
    (``shmem_naive``) raise :class:`~repro.errors.ConfigurationError`.
    """
    from repro.errors import ConfigurationError
    from repro.exec_model.costmodel import Design

    design_names = {
        Design.UNIFIED: "unified",
        Design.SHMEM_READONLY: "zerocopy",
        Design.STALE_SYNC: "stale",
    }
    if config.design not in design_names:
        raise ConfigurationError(
            f"chaos matrix has no axis for design {config.design.value!r}; "
            "valid choices: unified, zerocopy, stale",
            parameter="design",
            value=config.design.value,
            choices=tuple(d.value for d in design_names),
        )
    axes: dict = {
        "designs": (design_names[config.design],),
        "dists": (config.distribution,),
    }
    if config.engine != "auto":
        axes["engines"] = (config.engine,)
    return axes


def _run_one(lower, b, dist, machine, design, scenario, T, engine, wall_limit):
    """One faulted, recovered run; returns (result, error)."""
    from repro.runtime.session import resilient_run

    watchdog = Watchdog(
        stall_horizon=max(50.0 * T, 1.0), wall_limit=wall_limit
    )
    try:
        res = resilient_run(
            lower,
            b,
            dist,
            machine,
            design,
            plan=scenario.plan_of(T),
            recovery=scenario.recovery,
            watchdog=watchdog,
            engine=engine,
            trace_enabled=False,
        )
        return res, None
    except ReproError as err:
        return None, err


def _judge(
    scenario, x_base, res, err, stale_ceiling=None
) -> tuple[str, bool, dict]:
    """Classify one run against the scenario's expectation.

    ``stale_ceiling`` (set for ``stale_sync`` cells) additionally
    certifies non-bitwise solutions whose backward error sits below the
    stale policy's ceiling: faults move the stale-read set, and
    sub-ceiling stale reads are deliberately left unreplayed.
    """
    info: dict = {}
    if err is not None:
        info["error_type"] = type(err).__name__
        info["error"] = str(err)
        if isinstance(err, scenario.expected_errors):
            ok = scenario.expect == "error"
            return "typed_error", ok, info
        return "unexpected_error", False, info
    info["repaired"] = len(res.repaired)
    info["residual"] = float(res.residual)
    info["events"] = int(res.execution.events)
    info["total_time"] = float(res.execution.total_time)
    if scenario.expect == "error" and stale_ceiling is None:
        return "recovered_unexpectedly", False, info
    # The stale design may legitimately outlive loud failures that
    # deadlock the strict designs: a component missing <= k
    # contributions launches anyway, and the validation pass replays
    # whatever the failure left wrong — so a loud-failure cell is green
    # on a typed error *or* a bitwise/certified recovery.
    if res.x.tobytes() == x_base.tobytes():
        return "recovered", True, info
    # Sub-ceiling corruption is numerically invisible to any
    # backward-error test, so it can only be certified, not repaired.
    ceiling = 0.0
    if scenario.expect == "certify":
        ceiling = scenario.recovery.residual_ceiling
    if stale_ceiling is not None:
        ceiling = max(ceiling, stale_ceiling)
    if ceiling and res.residual <= ceiling:
        return "certified", True, info
    return "bit_mismatch", False, info


def run_chaos_matrix(
    n: int = 64,
    seed: int = 7,
    quick: bool = False,
    n_gpus: int = 4,
    scenarios: Sequence[ChaosScenario] | None = None,
    designs: Sequence[str] = DESIGNS,
    dists: Sequence[str] = DISTRIBUTIONS,
    wall_limit: float = 60.0,
    engines: Sequence[str] | None = None,
) -> ChaosReport:
    """Run the chaos matrix and return the per-cell report.

    ``quick`` shrinks both axes for CI: the :data:`QUICK_SCENARIOS`
    subset, a smaller system, and the ``auto`` engine per cell.  A full
    run executes every cell on *both* engines and requires them to agree
    bitwise (or on the same typed error), folding the engine-parity
    contract into the chaos sweep itself.  ``engines`` overrides the
    per-cell engine axis (``tools/chaos.py --config`` pins one engine
    through it).

    Never hangs: every run carries a fresh :class:`Watchdog` with a
    simulated-time stall horizon and a ``wall_limit`` real-seconds guard.
    """
    from repro.machine.node import dgx1
    from repro.solvers.serial import serial_forward
    from repro.workloads.generators import forest_lower

    if quick:
        n = min(n, 40)
    lower = forest_lower(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.uniform(-1.0, 1.0, size=n)
    x_serial = serial_forward(lower, b)
    machine = dgx1(n_gpus)
    if scenarios is None:
        scenarios = default_scenarios(quick=quick)
    if engines is None:
        engines = (
            ("auto",) if quick else ("reference", "array", "vector")
        )
    else:
        engines = tuple(engines)

    cells: list[ChaosCell] = []
    dist_map = _distributions(lower, n_gpus, machine)
    for dist_name in dists:
        dist = dist_map[dist_name]
        # Loud-failure scenarios drop cross-GPU traffic with rate 1.0;
        # a distribution with no cross edge would quietly pass them.
        src = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(lower.indptr)
        )
        cross = int(
            np.sum(
                (dist.gpu_of[src] != dist.gpu_of[lower.indices])
            )
        )
        if cross == 0:
            raise SolverError(
                f"chaos matrix misconfigured: distribution {dist_name!r} "
                "has no cross-GPU edge to fault"
            )
        for design_name in designs:
            design = _design(design_name)
            stale_ceiling = None
            if design_name == "stale":
                from repro.engine.protocol import DEFAULT_STALE_POLICY

                stale_ceiling = DEFAULT_STALE_POLICY.ceiling
            # Unfaulted baseline per engine: the bitwise reference each
            # recovered run must reproduce.  On the forest workload it
            # must itself match serial forward substitution bit-for-bit
            # — except under the stale design, where a sub-ceiling stale
            # read is deliberately left unreplayed and the baseline is
            # instead certified against the (tight) stale ceiling.
            base: dict = {}
            for engine in engines:
                from repro.runtime.session import resilient_run

                base[engine] = resilient_run(
                    lower,
                    b,
                    dist,
                    machine,
                    design,
                    plan=None,
                    engine=engine,
                    trace_enabled=False,
                )
                if base[engine].x.tobytes() != x_serial.tobytes():
                    certified = (
                        stale_ceiling is not None
                        and base[engine].residual <= stale_ceiling
                    )
                    if not certified:
                        raise SolverError(
                            "chaos harness invariant broken: unfaulted "
                            f"{engine} DES solve differs bitwise from the "
                            "serial oracle on a forest system"
                        )
            for scenario in scenarios:
                runs = {}
                for engine in engines:
                    T = float(base[engine].execution.total_time)
                    res, err = _run_one(
                        lower, b, dist, machine, design,
                        scenario, T, engine, wall_limit,
                    )
                    outcome, ok, info = _judge(
                        scenario, base[engine].x, res, err,
                        stale_ceiling=stale_ceiling,
                    )
                    runs[engine] = (outcome, ok, info)
                # Cross-engine agreement (full mode): every engine must
                # match the first one — same outcome, and bit-identical
                # observables on recovered runs.
                (o0, ok0, i0) = runs[engines[0]]
                for other in engines[1:]:
                    (o1, _ok1, i1) = runs[other]
                    agree = o0 == o1 and i0.get("error_type") == i1.get(
                        "error_type"
                    )
                    if agree and o0 in ("recovered", "certified"):
                        agree = (
                            i0["events"] == i1["events"]
                            and i0["total_time"] == i1["total_time"]
                        )
                    if not agree:
                        o0, ok0 = "engine_divergence", False
                        i0 = {
                            "error": (
                                f"{engines[0]}={runs[engines[0]]} "
                                f"{other}={runs[other]}"
                            )
                        }
                        break
                cells.append(
                    ChaosCell(
                        scenario=scenario.name,
                        design=design_name,
                        dist=dist_name,
                        engine="+".join(engines),
                        expect=scenario.expect,
                        outcome=o0,
                        ok=ok0,
                        error_type=i0.get("error_type", ""),
                        error=i0.get("error", ""),
                        repaired=i0.get("repaired", 0),
                        residual=i0.get("residual", 0.0),
                        events=i0.get("events", 0),
                        total_time=i0.get("total_time", 0.0),
                    )
                )
    return ChaosReport(n=n, seed=seed, quick=quick, cells=tuple(cells))
