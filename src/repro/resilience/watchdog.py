"""No-progress watchdog for the sync-free DES playouts.

The paper's execution model busy-waits: a component spins on its
``in.degree`` until the last dependency's notification lands.  Lose one
notification and nothing crashes — the solve just never finishes.  Two
detectors close that hole:

* the engines' end-of-run *quiescent-with-waiters* check (event calendar
  empty, processes still blocked) raises
  :class:`~repro.errors.DeadlockError` — that catches true deadlocks;
* this :class:`Watchdog` catches *livelocks*: simulated time keeps
  advancing (retry storms, backoff loops) but no component ever solves.

Design constraint: the watchdog must not perturb the simulation.  It is
therefore not a process — the engines call :meth:`check` whenever the
clock advances to a new timestamp and :meth:`progress` at every solve,
so it adds zero events, zero timestamps, and zero floating-point
operations to the playout.  Both engines poll it at the same points,
keeping faulted runs bit-identical across engines, and a run with no
watchdog bit-identical to one whose watchdog never fires.

An optional wall-clock limit backs the simulated-time horizon: if the
host process itself burns real seconds without the simulation finishing
(a bug in the engine rather than the workload), the watchdog raises
rather than letting CI hit its hard timeout with no diagnostics.
"""

from __future__ import annotations

import time
from collections import deque

from repro.errors import DeadlockError

__all__ = ["Watchdog"]


class Watchdog:
    """Raise :class:`DeadlockError` when solve progress stalls.

    Parameters
    ----------
    stall_horizon:
        Maximum simulated time allowed between consecutive solve-progress
        marks before the run is declared stalled.  Deterministic: both
        engines trip at the same simulated timestamp.
    wall_limit:
        Optional real-seconds budget for the whole run (checked on the
        same clock-advance polls).  Non-deterministic by nature; it is a
        belt-and-braces guard under the chaos CI job's hard timeout.
    """

    def __init__(
        self, stall_horizon: float, wall_limit: float | None = None
    ):
        if stall_horizon <= 0:
            raise ValueError(f"stall_horizon must be > 0, got {stall_horizon}")
        self.stall_horizon = stall_horizon
        self.wall_limit = wall_limit
        self.last_progress: float = 0.0
        self.progress_marks: int = 0
        self._recent: deque = deque(maxlen=8)
        self._wall_start = time.monotonic()

    # ------------------------------------------------------------------
    def progress(self, now: float, detail=None) -> None:
        """Mark forward progress (the engines call this at every solve)."""
        self.last_progress = now
        self.progress_marks += 1
        self._recent.append((now, detail))

    def check(self, now: float) -> None:
        """Poll at a clock advance; raises on stall or wall overrun."""
        if now - self.last_progress > self.stall_horizon:
            raise DeadlockError(
                f"no-progress stall: simulated clock reached {now:.6g} with "
                f"no solve since {self.last_progress:.6g} "
                f"(horizon {self.stall_horizon:.6g})",
                diagnostics=self._diagnostics(now, "stall"),
            )
        if (
            self.wall_limit is not None
            and time.monotonic() - self._wall_start > self.wall_limit
        ):
            raise DeadlockError(
                f"watchdog wall-clock limit {self.wall_limit}s exceeded at "
                f"simulated time {now:.6g}",
                diagnostics=self._diagnostics(now, "wall"),
            )

    def _diagnostics(self, now: float, reason: str) -> dict:
        return {
            "reason": reason,
            "now": now,
            "last_progress": self.last_progress,
            "progress_marks": self.progress_marks,
            "recent_progress": list(self._recent),
            "stall_horizon": self.stall_horizon,
        }
