"""Correctness tooling: conformance oracles and schedule causality checks.

Two independent audits gate every solver in the package:

* the **conformance matrix** (:mod:`repro.verify.registry`,
  :mod:`repro.verify.oracles`) — every concrete
  :class:`~repro.solvers.base.TriangularSolver` is auto-discovered and
  run through a differential oracle plus metamorphic relations over the
  workload generators;
* the **causality checker** (:mod:`repro.verify.causality`) — a race
  detector for both simulation tiers, replaying DES traces and captured
  fast-model schedules against dependency order, warp-slot capacity,
  and link topology.

``tools/verify_solvers.py`` drives both from the command line;
``tests/test_conformance.py`` wires them into pytest.
"""

from repro.verify.causality import (
    CausalityReport,
    Violation,
    check_des_execution,
    check_des_trace,
    check_timeline_schedule,
    validate_captured_schedule,
)
from repro.verify.oracles import (
    ConformanceReport,
    Finding,
    RELATIONS,
    default_generators,
    quick_generators,
    random_topological_permutation,
    run_conformance,
)
from repro.verify.registry import (
    ConformanceCase,
    ConformanceRegistry,
    PlanSolver,
    default_registry,
    discover_solver_classes,
)

__all__ = [
    "CausalityReport",
    "Violation",
    "check_des_execution",
    "check_des_trace",
    "check_timeline_schedule",
    "validate_captured_schedule",
    "ConformanceReport",
    "Finding",
    "default_generators",
    "quick_generators",
    "random_topological_permutation",
    "run_conformance",
    "ConformanceCase",
    "ConformanceRegistry",
    "PlanSolver",
    "default_registry",
    "discover_solver_classes",
]
