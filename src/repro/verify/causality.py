"""Schedule causality checking for both simulation tiers.

A simulated SpTRSV execution is only evidence if its schedule could have
happened on the machine it claims to model.  This module is a race
detector for the two tiers:

* :func:`check_des_trace` replays the event-granular tier's
  :class:`~repro.engine.trace.Trace` (``dispatch``/``solve``/``release``
  and ``xfer_begin``/``xfer_end`` records) and asserts dependency order,
  warp-slot occupancy, per-GPU dispatch order, and link-level physics
  (transfers only between P2P-reachable GPUs, bounded in-flight messages
  per link pair).
* :func:`check_timeline_schedule` re-runs the fast model with
  ``schedule_out=`` capture and audits the per-component schedule
  arrays: every ``finish`` must be exactly reconstructible from its
  predecessors' ``finish`` + notify latencies, dispatch must respect the
  kernel-launch floor, and interval occupancy per GPU must never exceed
  the warp-slot capacity.

Checks accumulate :class:`Violation` records instead of raising, so a
single audit reports *every* causality breach (tests assert
``report.ok``; the CLI prints the lot).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dag import DependencyDag
from repro.engine.trace import Trace
from repro.exec_model.artefacts import get_artefacts
from repro.exec_model.costmodel import Design
from repro.machine.node import MachineConfig
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import Distribution

__all__ = [
    "Violation",
    "CausalityReport",
    "check_des_trace",
    "check_des_execution",
    "validate_captured_schedule",
    "check_timeline_schedule",
]

#: Abort a single audit after this many violations — a corrupted schedule
#: trips thousands of identical breaches and the first few tell the story.
MAX_VIOLATIONS = 50


@dataclass(frozen=True)
class Violation:
    """One causality breach found while auditing a schedule."""

    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.rule}] {self.detail}"


@dataclass
class CausalityReport:
    """Outcome of one schedule audit."""

    subject: str
    n_components: int = 0
    n_checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def flag(self, rule: str, detail: str) -> None:
        if len(self.violations) < MAX_VIOLATIONS:
            self.violations.append(Violation(rule, detail))

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [
            f"{self.subject}: {status} "
            f"({self.n_components} components, {self.n_checks} checks)"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


# ======================================================================
# DES trace audit
# ======================================================================
def check_des_trace(
    trace: Trace,
    dag: DependencyDag,
    dist: Distribution,
    machine: MachineConfig,
    design: Design | str = Design.SHMEM_READONLY,
    *,
    stale=None,
) -> CausalityReport:
    """Audit an event-granular trace against the machine's physics.

    Rules
    -----
    ``solve-coverage``
        Exactly one ``solve`` record per component, on the GPU the
        distribution placed it on.
    ``dependency-order``
        For every DAG edge ``u -> v``, component ``v`` solves strictly
        after ``u`` (its contribution must be produced, shipped, and
        consumed first).
    ``slot-occupancy``
        Replaying ``dispatch``/``release`` as +1/-1 events, per-GPU
        occupancy never exceeds ``warp_slots``, never goes negative, and
        every acquired slot is released.
    ``dispatch-order``
        Warp slots are FIFO per GPU: dispatch records appear in
        ascending component order.
    ``link-topology``
        ``xfer_begin`` endpoints are distinct PEs whose physical GPUs
        are P2P connected — or fallback-reachable, except under the
        NVSHMEM designs when ``shmem_over_fallback`` is off (the
        CUDA-10-era P2P-only restriction behind the paper's 4-GPU
        DGX-1 limit).
    ``link-occupancy``
        In-flight messages per directed PE pair never exceed the pair's
        physical budget (``links * MESSAGES_IN_FLIGHT_PER_LINK``), and
        every ``xfer_begin`` is matched by an ``xfer_end``.
    ``stale-bound``
        ``stale_launch`` records appear only under the ``stale_sync``
        design, at most once per component, and always with
        ``0 < missing <= k`` for the policy's staleness bound ``k``
        (``stale=`` overrides the default policy).  Under ``stale_sync``
        the ``dependency-order`` rule relaxes per component to "at most
        the recorded missing count of predecessors may solve late";
        components with no stale record stay strict.
    ``validate-order``
        ``replay`` records require exactly one ``validate`` record, no
        replay precedes it, and the validate record's replayed count
        matches the number of replay records.
    ``replay-closure``
        The replayed set is closed under DAG out-edges: repairing a
        component invalidates every successor's gathered sum, so each
        successor of a replayed component must itself be replayed.
    """
    from repro.engine.protocol import (
        TRACE_REPLAY,
        TRACE_STALE_LAUNCH,
        TRACE_VALIDATE,
        resolve_stale_policy,
    )
    from repro.engine.protocol import fallback_legal
    from repro.solvers.des_solver import MESSAGES_IN_FLIGHT_PER_LINK

    design = Design(design)
    if design is Design.STALE_SYNC:
        stale = resolve_stale_policy(design, stale)
    rep = CausalityReport(subject=f"des-trace[{design.value}]")
    n = dag.n
    rep.n_components = n
    gpu_of = dist.gpu_of
    topo = machine.topology

    # Fault-aware replay: a ``remap`` record moves a component's
    # placement mid-run (GPU failure recovery), and a fail-stopped GPU
    # legitimately dies holding warp slots it can never release.
    remap_to: dict[int, int] = {}
    for r in trace.of_kind("remap"):
        remap_to[int(r.detail[0])] = int(r.gpu)
    dead_gpus = {int(r.detail) for r in trace.of_kind("gpu_fail")}

    # ------------------------------------------------ stale bound
    stale_missing: dict[int, int] = {}
    for r in trace.of_kind(TRACE_STALE_LAUNCH):
        i, missing = int(r.detail[0]), int(r.detail[1])
        if design is not Design.STALE_SYNC:
            rep.flag(
                "stale-bound",
                f"stale_launch record for component {i} under strict "
                f"design {design.value}",
            )
            continue
        if i in stale_missing:
            rep.flag(
                "stale-bound",
                f"component {i} has multiple stale_launch records",
            )
            continue
        if missing < 1 or missing > stale.k:
            rep.flag(
                "stale-bound",
                f"component {i} launched with {missing} missing "
                f"contribution(s), outside (0, k={stale.k}]",
            )
        stale_missing[i] = missing
        rep.n_checks += 1

    # ------------------------------------------------ solve coverage
    solve_t = np.full(n, np.nan)
    seen = np.zeros(n, dtype=np.int64)
    for r in trace.of_kind("solve"):
        i = int(r.detail)
        if not 0 <= i < n:
            rep.flag("solve-coverage", f"solve record for unknown component {i}")
            continue
        seen[i] += 1
        solve_t[i] = r.time
        expected_gpu = remap_to.get(i, int(gpu_of[i]))
        if r.gpu != expected_gpu:
            rep.flag(
                "solve-coverage",
                f"component {i} solved on GPU {r.gpu}, "
                f"expected GPU {expected_gpu}",
            )
    for i in np.flatnonzero(seen != 1)[:MAX_VIOLATIONS]:
        rep.flag(
            "solve-coverage",
            f"component {int(i)} has {int(seen[i])} solve records (want 1)",
        )
    rep.n_checks += n

    # ------------------------------------------------ dependency order
    in_ptr, in_idx = dag.in_ptr, dag.in_idx
    if not np.any(seen != 1):
        preds = in_idx
        comps = np.repeat(np.arange(n), np.diff(in_ptr))
        late = solve_t[comps] <= solve_t[preds]
        is_stale = np.zeros(n, dtype=bool)
        allowed = np.zeros(n, dtype=np.int64)
        for i, m in stale_missing.items():
            is_stale[i] = True
            allowed[i] = m
        strict_late = late & ~is_stale[comps]
        for e in np.flatnonzero(strict_late)[:MAX_VIOLATIONS]:
            u, v = int(preds[e]), int(comps[e])
            rep.flag(
                "dependency-order",
                f"component {v} solved at {solve_t[v]:.3e} but its "
                f"predecessor {u} only at {solve_t[u]:.3e}",
            )
        if stale_missing:
            # A stale launch may run ahead of at most the number of
            # contributions it recorded as missing — no more.
            late_counts = np.bincount(comps[late], minlength=n)
            over = np.flatnonzero(is_stale & (late_counts > allowed))
            for i in over[:MAX_VIOLATIONS]:
                rep.flag(
                    "dependency-order",
                    f"component {int(i)} solved before "
                    f"{int(late_counts[i])} predecessor(s) but recorded "
                    f"only {int(allowed[i])} missing at stale launch",
                )
        rep.n_checks += int(len(preds))

    # ------------------------------------------------ warp-slot occupancy
    slot_events: dict[int, list[tuple[float, int, int]]] = defaultdict(list)
    for r in trace.of_kind("dispatch"):
        slot_events[r.gpu].append((r.time, +1, int(r.detail)))
    for r in trace.of_kind("release"):
        slot_events[r.gpu].append((r.time, -1, int(r.detail)))
    cap = machine.gpu.warp_slots
    for g, events in sorted(slot_events.items()):
        # Releases sort before dispatches at equal timestamps: the
        # simulator may record a woken acquirer before another
        # same-instant release it does not depend on, but the slot pool
        # itself never exceeds capacity — the sweep must use the
        # retire-then-reacquire convention to match.
        events.sort(key=lambda e: (e[0], e[1]))
        occ = 0
        dispatched: list[int] = []
        for t, delta, i in events:
            occ += delta
            if occ > cap:
                rep.flag(
                    "slot-occupancy",
                    f"GPU {g} holds {occ} warp slots at t={t:.3e} "
                    f"(capacity {cap})",
                )
            if occ < 0:
                rep.flag(
                    "slot-occupancy",
                    f"GPU {g} released more slots than it acquired "
                    f"at t={t:.3e} (component {i})",
                )
            if delta > 0:
                dispatched.append(i)
        if occ != 0 and g not in dead_gpus:
            rep.flag(
                "slot-occupancy",
                f"GPU {g} ends with {occ} unreleased warp slot(s)",
            )
        # Remapped components re-dispatch at their respawn time, out of
        # band with the setup-time FIFO; the FIFO rule binds the rest.
        native = [i for i in dispatched if i not in remap_to]
        if any(a >= b for a, b in zip(native, native[1:])):
            rep.flag(
                "dispatch-order",
                f"GPU {g} dispatched components out of ascending order",
            )
        rep.n_checks += len(events)

    # ------------------------------------------------ link transfers
    budget: dict[tuple[int, int], int] = {}
    xfer_events: list[tuple[float, int, tuple[int, int]]] = []
    for r in trace.records:
        if r.kind not in ("xfer_begin", "xfer_end"):
            continue
        src_pe, dst_pe, comp = r.detail
        key = (int(src_pe), int(dst_pe))
        if r.kind == "xfer_begin":
            if key[0] == key[1]:
                rep.flag(
                    "link-topology",
                    f"transfer to self on PE {key[0]} (component {comp})",
                )
                continue
            ga = machine.active_gpus[key[0]]
            gb = machine.active_gpus[key[1]]
            # Shared protocol rule: a fallback-tier hop is legal only
            # when the design may ride the fallback transport (one-sided
            # NVSHMEM needs ``shmem_over_fallback`` — the IB RDMA path).
            reachable = topo.connected(ga, gb) or fallback_legal(design, topo)
            if not reachable:
                rep.flag(
                    "link-topology",
                    f"transfer PE {key[0]} (GPU {ga}) -> PE {key[1]} "
                    f"(GPU {gb}) has no usable path under {design.value} "
                    f"on {topo.name}",
                )
            if key not in budget:
                n_links = int(topo.link_count[ga, gb])
                budget[key] = max(n_links, 1) * MESSAGES_IN_FLIGHT_PER_LINK
            xfer_events.append((r.time, +1, key))
        else:
            xfer_events.append((r.time, -1, key))
        rep.n_checks += 1
    # Ends sort before begins at equal timestamps (retire-then-reacquire,
    # as for warp slots above).
    xfer_events.sort(key=lambda e: (e[0], e[1]))
    inflight: Counter = Counter()
    for t, delta, key in xfer_events:
        inflight[key] += delta
        if delta > 0 and inflight[key] > budget.get(key, 0):
            rep.flag(
                "link-occupancy",
                f"{inflight[key]} messages in flight on PE pair "
                f"{key[0]}->{key[1]} at t={t:.3e} "
                f"(budget {budget.get(key, 0)})",
            )
        elif inflight[key] < 0:
            rep.flag(
                "link-occupancy",
                f"xfer_end without matching begin on PE pair "
                f"{key[0]}->{key[1]} at t={t:.3e}",
            )
    for key, cnt in inflight.items():
        if cnt > 0:
            rep.flag(
                "link-occupancy",
                f"{cnt} transfer(s) on PE pair {key[0]}->{key[1]} "
                "never completed",
            )

    # ------------------------------------------------ validation pass
    validates = list(trace.of_kind(TRACE_VALIDATE))
    replays = list(trace.of_kind(TRACE_REPLAY))
    if len(validates) > 1:
        rep.flag(
            "validate-order",
            f"{len(validates)} validate records (want at most 1)",
        )
    if replays and not validates:
        rep.flag(
            "validate-order",
            f"{len(replays)} replay record(s) with no validate record",
        )
    if validates:
        v = validates[0]
        n_replayed = int(v.detail[1])
        if n_replayed != len(replays):
            rep.flag(
                "validate-order",
                f"validate record claims {n_replayed} replay(s) but "
                f"{len(replays)} replay records follow",
            )
        for r in replays:
            if r.time < v.time:
                rep.flag(
                    "validate-order",
                    f"component {int(r.detail)} replayed at "
                    f"{r.time:.3e}, before validation at {v.time:.3e}",
                )
        rep.n_checks += 1 + len(replays)

    replayed = {int(r.detail) for r in replays}
    for i in sorted(replayed):
        for j in dag.successors(i):
            if int(j) not in replayed:
                rep.flag(
                    "replay-closure",
                    f"component {i} was replayed but its successor "
                    f"{int(j)} was not — its gathered sum is stale",
                )
        rep.n_checks += 1
    return rep


def check_des_execution(
    execution,
    lower: CscMatrix,
    dist: Distribution,
    machine: MachineConfig,
    design: Design | str = Design.SHMEM_READONLY,
    *,
    stale=None,
) -> CausalityReport:
    """Convenience wrapper: audit a :class:`DesExecution`'s trace."""
    dag = get_artefacts(lower).dag
    return check_des_trace(
        execution.trace, dag, dist, machine, design, stale=stale
    )


# ======================================================================
# Fast-model schedule audit
# ======================================================================
def validate_captured_schedule(
    schedule: dict,
    *,
    subject: str = "timeline-schedule",
) -> CausalityReport:
    """Audit a schedule captured via ``simulate_execution(schedule_out=...)``.

    The capture is self-contained (finish/dispatch/ready arrays plus the
    DAG in-edge structure, placement, and warp-slot capacity), so this is
    a pure-array replay with no access to the scheduler internals:

    ``ready-reconstruction``
        ``ready[i]`` equals the max over in-edges of
        ``finish[pred] + in_notify[edge]`` — bit-exact, since max is
        order-independent.
    ``finish-reconstruction``
        ``finish[i] == (max(dispatch[i], ready[i]) + comm[i]) + solve[i]``
        in the reference loop's exact IEEE operation order.
    ``dispatch-floor``
        No component dispatches before its task's kernel-launch time.
    ``slot-occupancy``
        Sweeping ``[dispatch, finish)`` intervals per GPU (release
        before acquire on ties), occupancy never exceeds ``warp_slots``.
    """
    finish = np.asarray(schedule["finish"])
    dispatch = np.asarray(schedule["dispatch"])
    ready = np.asarray(schedule["ready"])
    comm = np.asarray(schedule["comm"])
    solve = np.asarray(schedule["solve"])
    not_before = np.asarray(schedule["comp_not_before"])
    in_notify = np.asarray(schedule["in_notify"])
    in_ptr = np.asarray(schedule["in_ptr"])
    in_idx = np.asarray(schedule["in_idx"])
    gpu_of = np.asarray(schedule["gpu_of"])
    cap = int(schedule["warp_slots"])
    n = len(finish)

    rep = CausalityReport(subject=subject, n_components=n)

    # ---------------------------------------------- ready reconstruction
    counts = np.diff(in_ptr)
    expected_ready = np.zeros(n)
    if len(in_idx):
        vals = finish[in_idx] + in_notify
        nonempty = np.flatnonzero(counts > 0)
        expected_ready[nonempty] = np.maximum.reduceat(
            vals, in_ptr[nonempty]
        )
    bad = np.flatnonzero(ready != expected_ready)
    for i in bad[:MAX_VIOLATIONS]:
        rep.flag(
            "ready-reconstruction",
            f"component {int(i)}: ready {ready[i]!r} != max over "
            f"predecessors {expected_ready[i]!r}",
        )
    rep.n_checks += n

    # ---------------------------------------------- finish reconstruction
    start = np.maximum(dispatch, ready)
    expected_finish = (start + comm) + solve
    bad = np.flatnonzero(finish != expected_finish)
    for i in bad[:MAX_VIOLATIONS]:
        rep.flag(
            "finish-reconstruction",
            f"component {int(i)}: finish {finish[i]!r} != "
            f"start+comm+solve {expected_finish[i]!r}",
        )
    rep.n_checks += n

    # ---------------------------------------------- dispatch floor
    bad = np.flatnonzero(dispatch < not_before)
    for i in bad[:MAX_VIOLATIONS]:
        rep.flag(
            "dispatch-floor",
            f"component {int(i)} dispatched at {dispatch[i]!r} before "
            f"its kernel launch at {not_before[i]!r}",
        )
    rep.n_checks += n

    # ---------------------------------------------- warp-slot occupancy
    for g in range(int(gpu_of.max(initial=-1)) + 1):
        mine = np.flatnonzero(gpu_of == g)
        if not len(mine):
            continue
        # +1 at dispatch, -1 at finish; on ties the release sorts first
        # (a slot retired at t is immediately reusable at t).
        times = np.concatenate([dispatch[mine], finish[mine]])
        deltas = np.concatenate(
            [np.ones(len(mine), np.int64), -np.ones(len(mine), np.int64)]
        )
        order = np.lexsort((deltas, times))
        occ = np.cumsum(deltas[order])
        peak = int(occ.max(initial=0))
        if peak > cap:
            t_at = times[order][int(np.argmax(occ))]
            rep.flag(
                "slot-occupancy",
                f"GPU {g} holds {peak} warp slots at t={t_at:.3e} "
                f"(capacity {cap})",
            )
        rep.n_checks += len(mine)
    return rep


def check_timeline_schedule(
    lower: CscMatrix,
    dist: Distribution,
    machine: MachineConfig,
    design: Design | str = Design.SHMEM_READONLY,
    *,
    scheduler: str = "auto",
) -> CausalityReport:
    """Price an execution, capture its schedule, and audit it.

    Also cross-checks the captured schedule against the returned
    :class:`~repro.exec_model.timeline.ExecutionReport` aggregates
    (``gpu-finish-aggregate``, ``solve-time-bound``).
    """
    from repro.exec_model.timeline import simulate_execution

    captured: dict = {}
    report = simulate_execution(
        lower, dist, machine, design,
        scheduler=scheduler, schedule_out=captured,
    )
    rep = validate_captured_schedule(
        captured,
        subject=f"timeline[{Design(design).value}/{scheduler}]",
    )
    finish = np.asarray(captured["finish"])
    gpu_of = np.asarray(captured["gpu_of"])
    for g in range(machine.n_gpus):
        mine = np.flatnonzero(gpu_of == g)
        local_max = float(finish[mine].max()) if len(mine) else 0.0
        if report.gpu_finish[g] != local_max:
            rep.flag(
                "gpu-finish-aggregate",
                f"GPU {g}: report gpu_finish {report.gpu_finish[g]!r} != "
                f"max component finish {local_max!r}",
            )
        rep.n_checks += 1
    if report.solve_time < float(finish.max(initial=0.0)):
        rep.flag(
            "solve-time-bound",
            f"solve_time {report.solve_time!r} below last component "
            f"finish {float(finish.max())!r}",
        )
    rep.n_checks += 1
    return rep
