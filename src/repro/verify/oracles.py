"""Differential and metamorphic oracles for the conformance matrix.

Each relation is a function ``(solver, case, mat, seed) -> None`` that
raises :class:`AssertionError` on a conformance breach.  ``mat`` is
lower-triangular for forward cases and upper-triangular (the
anti-transpose of the generated workload) for backward cases, so every
relation sees exactly what the solver under test expects.

Relations
---------
``differential``
    The solver's ``x`` matches a manufactured true solution, the serial
    reference substitution, and has a small componentwise backward error.
``permutation`` (forward only)
    Renumbering components along a *random topological linear extension*
    of the dependency DAG keeps ``P L P^T`` lower-triangular and must not
    change the solution: ``x'[perm] == x``.  This is the paper's
    reordering experiment as an oracle — scheduling changes, numerics
    must not.
``row_scaling``
    Scaling row ``i`` of the matrix and ``b[i]`` by the same ``d_i > 0``
    leaves ``x`` unchanged (each row's equation is scaled through).
``rhs_linearity``
    ``solve(a*b1 + c*b2) == a*solve(b1) + c*solve(b2)`` — substitution
    is a linear map; any state leaking between solves breaks this.
``multi_rhs`` (forward only)
    :func:`~repro.solvers.multirhs.solve_multi_rhs` columns are
    independent (solving a block equals solving each column alone,
    bitwise) and column 0 agrees with the case solver.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.dag import build_dag
from repro.solvers.backward import anti_transpose
from repro.solvers.base import TriangularSolver
from repro.solvers.serial import serial_backward, serial_forward
from repro.sparse.csc import CscMatrix
from repro.sparse.triangular import permute_symmetric, require_lower_triangular
from repro.sparse.validate import (
    assert_solutions_close,
    random_rhs_for_solution,
    residual_norm,
)
from repro.verify.registry import ConformanceCase, ConformanceRegistry
from repro.workloads.generators import (
    banded_lower,
    dag_profile_matrix,
    grid_graph_lower,
    random_lower,
    tridiagonal_lower,
)

__all__ = [
    "Finding",
    "ConformanceReport",
    "random_topological_permutation",
    "default_generators",
    "quick_generators",
    "run_conformance",
]

#: Backward-error ceiling for the differential oracle (componentwise,
#: scaled — see :func:`repro.sparse.validate.residual_norm`).
RESIDUAL_CEILING = 1e-8


# ======================================================================
# workload generators
# ======================================================================
def default_generators() -> list[tuple[str, Callable[[int], CscMatrix]]]:
    """The full workload matrix: one generator per dependency regime.

    Sizes are kept small (n <= 240) so the entire conformance matrix —
    including the Python DES tier — stays CI-friendly.
    """
    return [
        ("chain", lambda seed: tridiagonal_lower(96, seed=seed)),
        ("banded", lambda seed: banded_lower(160, 5, fill=0.7, seed=seed)),
        ("grid", lambda seed: grid_graph_lower(10, 12, seed=seed)),
        ("random", lambda seed: random_lower(180, 3.5, seed=seed)),
        (
            "level-major",
            lambda seed: dag_profile_matrix(
                200, 10, 3.0, "uniform", 0.5, 0.0, 0.0, seed=seed
            ),
        ),
        (
            "scattered",
            lambda seed: dag_profile_matrix(
                200, 8, 2.5, "uniform", 0.5, 0.3, 0.8, seed=seed
            ),
        ),
        ("diagonal", _diagonal_matrix),
    ]


def quick_generators() -> list[tuple[str, Callable[[int], CscMatrix]]]:
    """A 4-generator subset covering the extreme regimes (CLI ``--quick``)."""
    full = dict(default_generators())
    return [(k, full[k]) for k in ("chain", "random", "level-major", "scattered")]


def _diagonal_matrix(seed: int) -> CscMatrix:
    """Pure-diagonal system: every component is a root (no edges at all)."""
    n = 40
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.5, 2.0, n)
    return CscMatrix(
        np.arange(n + 1, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        data,
        (n, n),
    )


# ======================================================================
# relation helpers
# ======================================================================
def random_topological_permutation(
    lower: CscMatrix, rng: np.random.Generator
) -> np.ndarray:
    """A random linear extension of the dependency DAG, as ``perm[old] = new``.

    Kahn's algorithm with randomised heap priorities: every prefix of
    the new numbering is dependency-closed, so the symmetric permutation
    ``P L P^T`` is again lower-triangular — a different schedule for the
    *same* equations.
    """
    dag = build_dag(lower)
    n = dag.n
    prio = rng.permutation(n)
    indeg = dag.in_degree.copy()
    heap = [(int(prio[i]), i) for i in range(n) if indeg[i] == 0]
    heapq.heapify(heap)
    perm = np.empty(n, dtype=np.int64)
    nxt = 0
    while heap:
        _, i = heapq.heappop(heap)
        perm[i] = nxt
        nxt += 1
        for j in dag.successors(i):
            indeg[j] -= 1
            if indeg[j] == 0:
                heapq.heappush(heap, (int(prio[j]), int(j)))
    if nxt != n:  # pragma: no cover - generators produce DAGs
        raise ValueError("dependency graph is cyclic")
    return perm


def _scale_rows(mat: CscMatrix, d: np.ndarray) -> CscMatrix:
    """Left-multiply by ``diag(d)`` (CSC stores row ids in ``indices``)."""
    return CscMatrix(mat.indptr, mat.indices, mat.data * d[mat.indices], mat.shape)


def _reference(case: ConformanceCase, mat: CscMatrix, b: np.ndarray) -> np.ndarray:
    if case.kind == "backward":
        return serial_backward(mat, b)
    return serial_forward(mat, b)


# ======================================================================
# relations
# ======================================================================
def _rel_differential(
    solver: TriangularSolver, case: ConformanceCase, mat: CscMatrix, seed: int
) -> None:
    b, x_true = random_rhs_for_solution(mat, seed=seed)
    x = solver.solve(mat, b).x
    assert_solutions_close(
        x, x_true, rtol=max(case.rtol, 1e-9), context="manufactured solution"
    )
    assert_solutions_close(
        x, _reference(case, mat, b), rtol=case.rtol, context="serial reference"
    )
    res = residual_norm(mat, x, b)
    ceiling = max(RESIDUAL_CEILING, case.rtol)
    assert res <= ceiling, (
        f"backward error {res:.3e} exceeds ceiling {ceiling:.1e}"
    )


def _rel_permutation(
    solver: TriangularSolver, case: ConformanceCase, mat: CscMatrix, seed: int
) -> None:
    rng = np.random.default_rng(seed + 1)
    b, _ = random_rhs_for_solution(mat, seed=seed)
    perm = random_topological_permutation(mat, rng)
    permuted = permute_symmetric(mat, perm)
    require_lower_triangular(permuted)
    b_p = np.empty_like(b)
    b_p[perm] = b
    x = solver.solve(mat, b).x
    x_p = solver.solve(permuted, b_p).x
    # Float ops per component are identical up to summation order of the
    # left-sum gathers; allow a small multiple of the case tolerance.
    assert_solutions_close(
        x_p[perm], x, rtol=case.rtol * 10, context="topological renumbering"
    )


def _rel_row_scaling(
    solver: TriangularSolver, case: ConformanceCase, mat: CscMatrix, seed: int
) -> None:
    rng = np.random.default_rng(seed + 2)
    b, _ = random_rhs_for_solution(mat, seed=seed)
    d = rng.uniform(0.5, 2.0, mat.shape[0])
    x = solver.solve(mat, b).x
    x_s = solver.solve(_scale_rows(mat, d), b * d).x
    assert_solutions_close(
        x_s, x, rtol=case.rtol * 10, context="diagonal row scaling"
    )


def _rel_rhs_linearity(
    solver: TriangularSolver, case: ConformanceCase, mat: CscMatrix, seed: int
) -> None:
    rng = np.random.default_rng(seed + 3)
    n = mat.shape[0]
    b1 = rng.uniform(-1.0, 1.0, n)
    b2 = rng.uniform(-1.0, 1.0, n)
    a, c = 2.0, -0.5  # exact in binary floating point
    x1 = solver.solve(mat, b1).x
    x2 = solver.solve(mat, b2).x
    x12 = solver.solve(mat, a * b1 + c * b2).x
    # Substitution is linear; rounding differs per path, so compare at a
    # loosened tolerance anchored on the case's own.
    assert_solutions_close(
        x12, a * x1 + c * x2, rtol=max(case.rtol * 100, 1e-7),
        context="rhs linearity",
    )


def _rel_multi_rhs(
    solver: TriangularSolver, case: ConformanceCase, mat: CscMatrix, seed: int
) -> None:
    from repro.machine.node import dgx1
    from repro.solvers.multirhs import solve_multi_rhs

    rng = np.random.default_rng(seed + 4)
    n = mat.shape[0]
    bb = rng.uniform(-1.0, 1.0, (n, 3))
    res = solve_multi_rhs(mat, bb, machine=dgx1(2))
    assert res.n_rhs == 3
    # Column independence: a column solved inside the block is bitwise
    # the column solved alone (the level sweep is elementwise per RHS).
    solo = solve_multi_rhs(mat, bb[:, :1], machine=dgx1(2))
    np.testing.assert_array_equal(
        res.x[:, 0], solo.x[:, 0], err_msg="multi-RHS column independence"
    )
    for k in range(3):
        assert_solutions_close(
            res.x[:, k],
            serial_forward(mat, bb[:, k]),
            rtol=1e-9,
            context=f"multi-RHS column {k} vs serial",
        )
    x0 = solver.solve(mat, bb[:, 0].copy()).x
    assert_solutions_close(
        res.x[:, 0], x0, rtol=max(case.rtol * 10, 1e-8),
        context="multi-RHS column 0 vs case solver",
    )


RELATIONS: dict[str, Callable] = {
    "differential": _rel_differential,
    "permutation": _rel_permutation,
    "row_scaling": _rel_row_scaling,
    "rhs_linearity": _rel_rhs_linearity,
    "multi_rhs": _rel_multi_rhs,
}


# ======================================================================
# runner
# ======================================================================
@dataclass(frozen=True)
class Finding:
    """Outcome of one (case, generator, relation) cell."""

    case: str
    generator: str
    relation: str
    ok: bool
    detail: str = ""
    elapsed: float = 0.0


@dataclass
class ConformanceReport:
    """All findings of one conformance run."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def failures(self) -> list[Finding]:
        return [f for f in self.findings if not f.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        n = len(self.findings)
        bad = self.failures
        lines = [f"conformance: {n - len(bad)}/{n} cells passed"]
        for f in bad:
            lines.append(
                f"  FAIL {f.case} × {f.generator} × {f.relation}: {f.detail}"
            )
        return "\n".join(lines)


def run_conformance(
    registry: ConformanceRegistry,
    generators: list[tuple[str, Callable[[int], CscMatrix]]] | None = None,
    *,
    seed: int = 0,
    cases: list[str] | None = None,
) -> ConformanceReport:
    """Run every registered case against every workload generator.

    Forward cases receive the generated lower-triangular matrix;
    backward cases receive its anti-transpose (upper).  A fresh solver
    is constructed per (case, generator) so state cannot leak across
    workloads.  Failures are collected, never raised.
    """
    if generators is None:
        generators = default_generators()
    report = ConformanceReport()
    for case in registry:
        if cases is not None and case.name not in cases:
            continue
        for gen_name, gen in generators:
            lower = gen(seed)
            if case.max_n is not None and lower.shape[0] > case.max_n:
                continue
            mat = anti_transpose(lower) if case.kind == "backward" else lower
            for rel_name in case.relations:
                rel = RELATIONS[rel_name]
                t0 = time.perf_counter()
                try:
                    rel(case.factory(), case, mat, seed)
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    report.findings.append(
                        Finding(
                            case.name, gen_name, rel_name,
                            ok=False,
                            detail=f"{type(exc).__name__}: {exc}",
                            elapsed=time.perf_counter() - t0,
                        )
                    )
                else:
                    report.findings.append(
                        Finding(
                            case.name, gen_name, rel_name,
                            ok=True,
                            elapsed=time.perf_counter() - t0,
                        )
                    )
    return report
