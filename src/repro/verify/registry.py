"""Solver conformance registry with subclass auto-discovery.

Every concrete :class:`~repro.solvers.base.TriangularSolver` in the
package must appear in the conformance matrix — the registry has teeth:
:meth:`ConformanceRegistry.coverage_gaps` walks the live subclass tree
(``TriangularSolver.__subclasses__`` recursively, restricted to
``repro.*`` modules) and reports any concrete solver class nobody
registered a :class:`ConformanceCase` for.  Adding a solver without a
conformance entry fails ``tests/test_conformance.py`` immediately.

Cases carry a factory (constructor arguments are part of the contract),
the solve *kind* (forward ``Lx=b`` or backward ``Ux=b``), a relative
tolerance, and the set of metamorphic relations from
:mod:`repro.verify.oracles` that apply to them.

Coverage has two more axes beyond solver classes: execution *designs*
(:class:`~repro.exec_model.costmodel.Design` values) and task
*distributions* (``repro.tasks.schedule.VALID_DISTRIBUTIONS``).  Cases
declare which design/distribution they exercise;
:meth:`ConformanceRegistry.design_coverage_gaps` and
:meth:`ConformanceRegistry.distribution_coverage_gaps` report required
axes nobody covers, so dropping e.g. the ``stale_sync`` case fails
``tests/test_conformance.py`` the same way an unregistered solver does.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.machine.node import dgx1
from repro.solvers.base import SolveResult, TriangularSolver

__all__ = [
    "ConformanceCase",
    "ConformanceRegistry",
    "PlanSolver",
    "discover_solver_classes",
    "default_registry",
    "FORWARD_RELATIONS",
    "BACKWARD_RELATIONS",
    "REQUIRED_DESIGNS",
    "REQUIRED_DISTRIBUTIONS",
]

#: Relations applied to forward (``Lx = b``) cases by default.
FORWARD_RELATIONS: tuple[str, ...] = (
    "differential",
    "permutation",
    "row_scaling",
    "rhs_linearity",
    "multi_rhs",
)

#: Backward cases skip relations that presuppose a lower-triangular
#: input (topological permutation, the multi-RHS forward kernel).
BACKWARD_RELATIONS: tuple[str, ...] = (
    "differential",
    "row_scaling",
    "rhs_linearity",
)

#: Execution designs the matrix must exercise (``Design`` values).
REQUIRED_DESIGNS: tuple[str, ...] = (
    "unified",
    "shmem_naive",
    "shmem_readonly",
    "stale_sync",
)

#: Task distributions the matrix must exercise.
REQUIRED_DISTRIBUTIONS: tuple[str, ...] = (
    "block",
    "taskpool",
    "costaware",
    "hierarchical",
)


@dataclass(frozen=True)
class ConformanceCase:
    """One registered solver configuration.

    Attributes
    ----------
    name:
        Unique case name (CLI/report key).
    factory:
        Zero-argument constructor; a fresh solver is built per workload
        so stateful solvers (refinement history, plan stats) cannot
        leak between checks.
    solver_cls:
        The class the case covers (for gap accounting).
    kind:
        ``"forward"`` solves ``Lx = b``; ``"backward"`` receives the
        anti-transposed upper system ``Ux = b``.
    rtol:
        Relative tolerance against the serial reference (looser for
        iterative-refinement solvers).
    max_n:
        Skip workloads larger than this (the DES tier is O(events) in
        Python).
    relations:
        Metamorphic relations to run, by name.
    design:
        Execution design this case exercises (a
        :class:`~repro.exec_model.costmodel.Design` value string), or
        ``None`` for solvers with no design axis.
    distribution:
        Task distribution this case exercises, or ``None`` when the
        solver has no distribution axis.
    """

    name: str
    factory: Callable[[], TriangularSolver]
    solver_cls: type
    kind: str = "forward"
    rtol: float = 1e-9
    max_n: int | None = None
    relations: tuple[str, ...] = FORWARD_RELATIONS
    design: str | None = None
    distribution: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("forward", "backward"):
            raise ValueError(f"unknown solve kind {self.kind!r}")


class ConformanceRegistry:
    """Named collection of conformance cases with coverage accounting."""

    def __init__(self) -> None:
        self._cases: dict[str, ConformanceCase] = {}

    def register(self, case: ConformanceCase) -> ConformanceCase:
        if case.name in self._cases:
            raise ValueError(f"duplicate conformance case {case.name!r}")
        self._cases[case.name] = case
        return case

    @property
    def cases(self) -> list[ConformanceCase]:
        return list(self._cases.values())

    def __len__(self) -> int:
        return len(self._cases)

    def __iter__(self):
        return iter(self._cases.values())

    def get(self, name: str) -> ConformanceCase:
        return self._cases[name]

    def covered_classes(self) -> set[type]:
        return {c.solver_cls for c in self._cases.values()}

    def coverage_gaps(self) -> list[type]:
        """Concrete ``repro.*`` solver classes with no registered case."""
        covered = self.covered_classes()
        return [
            cls for cls in discover_solver_classes() if cls not in covered
        ]

    def design_coverage_gaps(
        self, required: tuple[str, ...] = REQUIRED_DESIGNS
    ) -> list[str]:
        """Required execution designs no registered case exercises."""
        covered = {c.design for c in self._cases.values() if c.design}
        return [d for d in required if d not in covered]

    def distribution_coverage_gaps(
        self, required: tuple[str, ...] = REQUIRED_DISTRIBUTIONS
    ) -> list[str]:
        """Required task distributions no registered case exercises."""
        covered = {
            c.distribution for c in self._cases.values() if c.distribution
        }
        return [d for d in required if d not in covered]


def discover_solver_classes() -> list[type]:
    """Every concrete TriangularSolver subclass defined in ``repro.*``.

    Imports all ``repro.solvers`` submodules first so lazily-imported
    solvers still show up, then walks the subclass tree recursively.
    Abstract intermediates (with ``__abstractmethods__``) are skipped.
    """
    import repro.solvers as pkg

    for info in pkgutil.iter_modules(pkg.__path__):
        importlib.import_module(f"repro.solvers.{info.name}")

    found: list[type] = []
    stack = list(TriangularSolver.__subclasses__())
    seen: set[type] = set()
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
        if not cls.__module__.startswith("repro."):
            continue
        if getattr(cls, "__abstractmethods__", None):
            continue
        found.append(cls)
    return sorted(found, key=lambda c: (c.__module__, c.__qualname__))


class PlanSolver(TriangularSolver):
    """Adapter running :class:`~repro.solvers.plan.SpTrsvPlan` per solve.

    The plan API is analyse-once/solve-many and deliberately not a
    :class:`TriangularSolver`; this wrapper folds it into the
    conformance matrix so the plan's level-sweep kernel is audited by
    the same oracles as every direct solver.
    """

    name = "plan-adapter"

    def __init__(self, machine=None, tasks_per_gpu: int | None = 8):
        self.machine = machine if machine is not None else dgx1(4)
        self.tasks_per_gpu = tasks_per_gpu

    def solve(self, lower, b) -> SolveResult:
        from repro.solvers.plan import SpTrsvPlan

        plan = SpTrsvPlan(
            lower, machine=self.machine, tasks_per_gpu=self.tasks_per_gpu
        )
        res = plan.solve(np.asarray(b, dtype=np.float64))
        return SolveResult(x=res.x, report=res.report, solver=self.name)


def _cluster_des(engine: str):
    """DES solver on a 2-node x 2-GPU cluster with hierarchical placement.

    The smallest machine whose topology has a real fallback tier between
    nodes, so conformance runs exercise ``tier_of``/``fallback_legal``
    and the hierarchical node axis end to end.
    """
    from repro.machine.multinode import cluster
    from repro.solvers.des_solver import DesSolver

    return DesSolver(
        machine=cluster(2, 2),
        engine=engine,
        distribution="hierarchical",
        node_run=2,
    )


def default_registry() -> ConformanceRegistry:
    """The full conformance matrix: every solver class in the package."""
    from repro.machine.node import dgx2
    from repro.solvers.backward import BackwardSolver
    from repro.solvers.blocked import BlockedSolver
    from repro.solvers.cusparse import CusparseCsrsv2Solver
    from repro.solvers.des_solver import DesSolver
    from repro.solvers.levelset import LevelSetSolver
    from repro.solvers.mixedprec import MixedPrecisionSolver
    from repro.solvers.nvshmem import NaiveShmemSolver, ShmemSolver
    from repro.solvers.serial import SerialSolver
    from repro.solvers.syncfree import SyncFreeSolver
    from repro.solvers.threadlevel import ThreadLevelSolver
    from repro.solvers.unified import UnifiedMemorySolver
    from repro.solvers.zerocopy import ZeroCopySolver

    reg = ConformanceRegistry()
    add = reg.register
    add(ConformanceCase("serial", SerialSolver, SerialSolver, rtol=1e-12))
    add(ConformanceCase("levelset", LevelSetSolver, LevelSetSolver))
    add(
        ConformanceCase(
            "cusparse-csrsv2", CusparseCsrsv2Solver, CusparseCsrsv2Solver
        )
    )
    add(ConformanceCase("syncfree-1gpu", SyncFreeSolver, SyncFreeSolver))
    add(
        ConformanceCase(
            "threadlevel-1gpu", ThreadLevelSolver, ThreadLevelSolver
        )
    )
    add(ConformanceCase("blocked-supernodal", BlockedSolver, BlockedSolver))
    add(
        ConformanceCase(
            "mixed-precision",
            MixedPrecisionSolver,
            MixedPrecisionSolver,
            # Iterative refinement converges to ~1e-12 backward error;
            # metamorphic identities hold only to the refinement floor.
            rtol=1e-6,
        )
    )
    add(
        ConformanceCase(
            "unified-4gpu",
            UnifiedMemorySolver,
            UnifiedMemorySolver,
            design="unified",
        )
    )
    add(ConformanceCase("shmem-4gpu", ShmemSolver, ShmemSolver))
    add(
        ConformanceCase(
            "shmem-naive-4gpu",
            NaiveShmemSolver,
            NaiveShmemSolver,
            design="shmem_naive",
        )
    )
    add(
        ConformanceCase(
            "zerocopy-4gpu",
            ZeroCopySolver,
            ZeroCopySolver,
            design="shmem_readonly",
        )
    )
    add(
        ConformanceCase(
            "zerocopy-8gpu-dgx2",
            lambda: ZeroCopySolver(machine=dgx2(8)),
            ZeroCopySolver,
        )
    )
    add(
        ConformanceCase(
            "des-2gpu",
            # Pin the literal generator engine: this case is the oracle
            # the array engine is measured against, so it must never
            # silently switch implementation under the auto threshold.
            lambda: DesSolver(machine=dgx1(2), engine="reference"),
            DesSolver,
            # The DES tier replays every event in Python; cap workload
            # size and skip the solve-heavy multi-RHS relation.
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="shmem_readonly",
            distribution="block",
        )
    )
    add(
        ConformanceCase(
            "des-2gpu-array",
            # Force the array engine even below its auto threshold so
            # the flat state machines face the same oracle battery.
            lambda: DesSolver(machine=dgx1(2), engine="array"),
            DesSolver,
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="shmem_readonly",
            distribution="block",
        )
    )
    add(
        ConformanceCase(
            "des-2gpu-vector",
            # The batch-execution engine faces the same oracle battery
            # as the scalar engines (small workloads exercise both the
            # batched windows and the scalar-fallback boundary).
            lambda: DesSolver(machine=dgx1(2), engine="vector"),
            DesSolver,
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="shmem_readonly",
            distribution="block",
        )
    )
    add(
        ConformanceCase(
            "des-2gpu-stale",
            # Stale-synchronous design: components may launch on a
            # bounded-stale partial sum; the post-hoc validation pass
            # must repair every above-ceiling stale read, so the case
            # keeps the same oracle tolerance as the strict designs.
            lambda: DesSolver(machine=dgx1(2), design="stale_sync"),
            DesSolver,
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="stale_sync",
            distribution="block",
        )
    )
    add(
        ConformanceCase(
            "des-2gpu-costaware",
            # Cost-aware placement must be solution-invariant: any
            # task-to-GPU map yields the same x, only timings move.
            lambda: DesSolver(machine=dgx1(2), distribution="costaware"),
            DesSolver,
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="shmem_readonly",
            distribution="costaware",
        )
    )
    add(
        ConformanceCase(
            "des-cluster-2x2",
            # Multi-node fabric: two NVSwitch islands joined by an IB
            # tier.  Hierarchical placement keeps dependency runs on a
            # node; the causality replayer checks every transfer against
            # the tiered reachability rule (IB hops are legal only
            # because the cluster fabric sets ``shmem_over_fallback``).
            lambda: _cluster_des(engine="reference"),
            DesSolver,
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="shmem_readonly",
            distribution="hierarchical",
        )
    )
    add(
        ConformanceCase(
            "des-cluster-2x2-vector",
            # The epoch-compiled engine must stay bit-identical to the
            # reference generators on the multi-node fabric too — the
            # tier metadata prices inter-node edges but never changes
            # the arithmetic.
            lambda: _cluster_des(engine="vector"),
            DesSolver,
            max_n=300,
            relations=("differential", "permutation", "row_scaling"),
            design="shmem_readonly",
            distribution="hierarchical",
        )
    )
    add(
        ConformanceCase(
            "plan-adapter", PlanSolver, PlanSolver, distribution="taskpool"
        )
    )
    add(
        ConformanceCase(
            "backward-zerocopy",
            lambda: BackwardSolver(ZeroCopySolver()),
            BackwardSolver,
            kind="backward",
            relations=BACKWARD_RELATIONS,
        )
    )
    return reg
