"""Per-device memory model: allocation accounting + functional arrays.

The simulated ``cudaMalloc`` hands out real NumPy arrays (so solver
emulations compute real numbers) while book-keeping capacity against the
GPU's :attr:`~repro.machine.specs.GpuSpec.memory_bytes`.  The task
distributor consults :meth:`DeviceMemory.available` for its
"round-robin by available memory" placement rule (Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MemoryModelError
from repro.machine.specs import GpuSpec

__all__ = ["DeviceMemory"]


@dataclass
class DeviceMemory:
    """Memory of a single simulated GPU.

    Parameters
    ----------
    gpu_id:
        Owning GPU index.
    spec:
        The GPU's hardware sheet (capacity).
    """

    gpu_id: int
    spec: GpuSpec
    _used: int = field(default=0, init=False)
    _allocations: dict[str, np.ndarray] = field(default_factory=dict, init=False)

    def malloc(self, name: str, n_entries: int, dtype=np.float64) -> np.ndarray:
        """Allocate a named, zero-initialised device array.

        Raises :class:`MemoryModelError` on out-of-memory or duplicate
        name — mirroring how a real `cudaMalloc` failure would surface.
        """
        if name in self._allocations:
            raise MemoryModelError(
                f"GPU {self.gpu_id}: allocation {name!r} already exists"
            )
        nbytes = int(n_entries) * np.dtype(dtype).itemsize
        if self._used + nbytes > self.spec.memory_bytes:
            raise MemoryModelError(
                f"GPU {self.gpu_id}: out of memory allocating {name!r} "
                f"({nbytes} bytes, {self.available()} free)"
            )
        arr = np.zeros(int(n_entries), dtype=dtype)
        self._allocations[name] = arr
        self._used += nbytes
        return arr

    def free(self, name: str) -> None:
        """Release a named allocation."""
        try:
            arr = self._allocations.pop(name)
        except KeyError:
            raise MemoryModelError(
                f"GPU {self.gpu_id}: no allocation named {name!r}"
            ) from None
        self._used -= arr.nbytes

    def get(self, name: str) -> np.ndarray:
        """Look up an allocation by name."""
        try:
            return self._allocations[name]
        except KeyError:
            raise MemoryModelError(
                f"GPU {self.gpu_id}: no allocation named {name!r}"
            ) from None

    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    def available(self) -> int:
        """Bytes still free on this device."""
        return self.spec.memory_bytes - self._used

    def reset(self) -> None:
        """Free everything (end of a solver run)."""
        self._allocations.clear()
        self._used = 0
