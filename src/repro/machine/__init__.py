"""Simulated multi-GPU machine: GPUs, fabrics, unified memory, NVSHMEM.

This subpackage is the substitution for the paper's physical DGX-1/DGX-2
hardware (see DESIGN.md): it models the behaviours the evaluation is
sensitive to — warp occupancy, NVLink/NVSwitch connectivity and cost,
unified-memory page migration, and NVSHMEM one-sided semantics — while
carrying real NumPy data so solvers produce real numerics.
"""

from repro.machine.gpu import BatchWarpPool, GpuCounters, WarpScheduler, solve_cost
from repro.machine.link import LinkTracker
from repro.machine.memory import DeviceMemory
from repro.machine.mesh import (
    DeviceMesh,
    cluster_mesh,
    mesh_machine,
    mesh_topology,
)
from repro.machine.multinode import INFINIBAND, cluster, multinode_topology, node_of
from repro.machine.node import MachineConfig, dgx1, dgx2
from repro.machine.sm import SmWarpScheduler
from repro.machine.shmem import (
    SymmetricHeap,
    serial_reduction_time,
    warp_reduction_time,
)
from repro.machine.specs import (
    NVLINK2,
    NVSWITCH,
    PCIE3,
    SHMEM_DEFAULT,
    UM_DEFAULT,
    V100,
    GpuSpec,
    LinkSpec,
    ShmemSpec,
    UnifiedMemorySpec,
)
from repro.machine.topology import (
    Topology,
    dgx1_topology,
    dgx2_topology,
    pcie_topology,
)
from repro.machine.unified import ManagedArray, UnifiedMemory, expected_faults

__all__ = [
    "GpuCounters",
    "WarpScheduler",
    "BatchWarpPool",
    "SmWarpScheduler",
    "solve_cost",
    "LinkTracker",
    "DeviceMemory",
    "MachineConfig",
    "dgx1",
    "dgx2",
    "cluster",
    "multinode_topology",
    "node_of",
    "INFINIBAND",
    "DeviceMesh",
    "cluster_mesh",
    "mesh_topology",
    "mesh_machine",
    "SymmetricHeap",
    "warp_reduction_time",
    "serial_reduction_time",
    "GpuSpec",
    "LinkSpec",
    "ShmemSpec",
    "UnifiedMemorySpec",
    "V100",
    "NVLINK2",
    "NVSWITCH",
    "PCIE3",
    "UM_DEFAULT",
    "SHMEM_DEFAULT",
    "Topology",
    "dgx1_topology",
    "dgx2_topology",
    "pcie_topology",
    "ManagedArray",
    "UnifiedMemory",
    "expected_faults",
]
