"""Runtime link-traffic tracking and contention accounting.

The static :class:`~repro.machine.topology.Topology` answers "what would a
lone transfer cost"; this module tracks what a *workload* actually pushed
over each pair and derates bandwidth when multiple GPUs share fabric
capacity (DGX-1 cube-mesh) versus when they do not (DGX-2 NVSwitch).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.topology import Topology

__all__ = ["LinkTracker"]


@dataclass
class LinkTracker:
    """Accumulates per-pair traffic and computes contended transfer times.

    Attributes
    ----------
    topology:
        The fabric being tracked.
    bytes_sent:
        ``(n, n)`` matrix of payload bytes moved from row-GPU to col-GPU.
    transfers:
        ``(n, n)`` matrix of transfer counts (messages).
    busy_time:
        ``(n, n)`` matrix of accumulated serialisation time per pair.
    """

    topology: Topology
    bytes_sent: np.ndarray = field(init=False)
    transfers: np.ndarray = field(init=False)
    busy_time: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        n = self.topology.n_gpus
        self.bytes_sent = np.zeros((n, n))
        self.transfers = np.zeros((n, n), dtype=np.int64)
        self.busy_time = np.zeros((n, n))

    # ------------------------------------------------------------------
    def contention_factor(self, active_gpus: int) -> float:
        """Bandwidth derating when ``active_gpus`` GPUs communicate at once.

        NVSwitch fabrics keep per-GPU bandwidth constant (factor 1.0,
        Section VI-D); point-to-point meshes share each GPU's link budget
        across its concurrent peers.
        """
        if self.topology.switched or active_gpus <= 2:
            return 1.0
        return 1.0 + 0.18 * (active_gpus - 2)

    def record(self, src: int, dst: int, nbytes: int, active_gpus: int = 2) -> float:
        """Record a transfer and return its contended duration."""
        if src == dst:
            return 0.0
        base = self.topology.latency(src, dst)
        serial = nbytes / self.topology.peer_bandwidth(src, dst)
        t = base + serial * self.contention_factor(active_gpus)
        self.bytes_sent[src, dst] += nbytes
        self.transfers[src, dst] += 1
        self.busy_time[src, dst] += t
        return t

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> float:
        return float(self.bytes_sent.sum())

    @property
    def total_transfers(self) -> int:
        return int(self.transfers.sum())

    def per_gpu_bytes(self) -> np.ndarray:
        """Bytes each GPU injected into the fabric (row sums)."""
        return self.bytes_sent.sum(axis=1)

    def summary(self) -> dict[str, float]:
        return {
            "total_bytes": self.total_bytes,
            "total_transfers": float(self.total_transfers),
            "busy_time": float(self.busy_time.sum()),
        }
