"""Device-mesh layout: named axes over a hierarchical GPU fabric.

The paper stops at one DGX node; ROADMAP item 4 asks for "scale" as a
config axis.  A :class:`DeviceMesh` is the layout half of that axis: a
named, N-dimensional arrangement of GPU ranks (the same idea as PyTorch's
``DeviceMesh`` / JAX's mesh axes), with node-major C-order rank
numbering, coordinate and subgroup queries, and a *tier* function — how
many axis levels two ranks must cross to reach each other.  The fabric
half stays a plain :class:`~repro.machine.topology.Topology`:
:func:`mesh_topology` lowers a two-axis mesh onto NVSwitch islands
joined by an InfiniBand fallback tier, so every existing consumer —
cost models, engines, verifiers — prices the hierarchy without change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.machine.node import MachineConfig
from repro.machine.specs import NVSWITCH, GpuSpec, LinkSpec, V100
from repro.machine.topology import Topology

__all__ = [
    "DeviceMesh",
    "cluster_mesh",
    "mesh_topology",
    "mesh_machine",
]


@dataclass(frozen=True)
class DeviceMesh:
    """A named N-dimensional layout of GPU ranks.

    Attributes
    ----------
    axis_names:
        One name per axis, outermost first — ``("node", "gpu")`` for a
        cluster of NVSwitch islands.
    shape:
        Extent of each axis.  Ranks are numbered in C order (outermost
        axis slowest), so a ``(node, gpu)`` mesh is *node-major*: rank
        ``r`` lives on node ``r // gpus_per_node``.
    """

    axis_names: tuple[str, ...]
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        names = tuple(str(a) for a in self.axis_names)
        shape = tuple(int(s) for s in self.shape)
        if not names:
            raise TopologyError("a mesh needs at least one axis")
        if len(names) != len(set(names)):
            raise TopologyError(f"duplicate mesh axis names: {names}")
        if len(names) != len(shape):
            raise TopologyError(
                f"{len(names)} axis names for {len(shape)} axis extents"
            )
        if any(s < 1 for s in shape):
            raise TopologyError(f"every mesh axis needs extent >= 1: {shape}")
        object.__setattr__(self, "axis_names", names)
        object.__setattr__(self, "shape", shape)

    # ------------------------------------------------------------- geometry
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of ranks in the mesh."""
        return math.prod(self.shape)

    def axis(self, name: str) -> int:
        """Index of a named axis (typed error on unknown names)."""
        try:
            return self.axis_names.index(name)
        except ValueError:
            raise TopologyError(
                f"unknown mesh axis {name!r}; axes: {self.axis_names}"
            ) from None

    def rank(self, *coords: int) -> int:
        """Rank of a coordinate tuple (C order, outermost axis first)."""
        if len(coords) != self.ndim:
            raise TopologyError(
                f"expected {self.ndim} coordinates, got {len(coords)}"
            )
        for c, s, name in zip(coords, self.shape, self.axis_names):
            if not 0 <= c < s:
                raise TopologyError(
                    f"coordinate {c} out of range for axis {name!r} "
                    f"(extent {s})"
                )
        return int(np.ravel_multi_index(coords, self.shape))

    def coords(self, rank: int) -> tuple[int, ...]:
        """Coordinate tuple of a rank (inverse of :meth:`rank`)."""
        self._check(rank)
        return tuple(int(c) for c in np.unravel_index(rank, self.shape))

    def coord(self, rank: int, axis: str) -> int:
        """One named coordinate of a rank (e.g. its node index)."""
        return self.coords(rank)[self.axis(axis)]

    # ------------------------------------------------------------ subgroups
    def subgroup(self, rank: int, axis: str) -> tuple[int, ...]:
        """All ranks sharing every coordinate of ``rank`` except ``axis``.

        ``subgroup(r, "gpu")`` on a ``(node, gpu)`` mesh is the set of
        ranks on ``r``'s node — the communication group that stays on
        the fast intra-node fabric.
        """
        i = self.axis(axis)
        coords = list(self.coords(rank))
        members = []
        for c in range(self.shape[i]):
            coords[i] = c
            members.append(self.rank(*coords))
        return tuple(members)

    def groups(self, axis: str) -> tuple[tuple[int, ...], ...]:
        """Every communication group along ``axis`` (disjoint cover).

        Groups vary ``axis`` with all other coordinates fixed, ordered
        by the fixed coordinates; each rank appears in exactly one group.
        """
        i = self.axis(axis)
        other_shape = tuple(s for j, s in enumerate(self.shape) if j != i)
        if not other_shape:
            return (tuple(range(self.size)),)
        out = []
        for fixed in np.ndindex(*other_shape):
            coords = list(fixed[:i]) + [0] + list(fixed[i:])
            members = []
            for c in range(self.shape[i]):
                coords[i] = c
                members.append(self.rank(*coords))
            out.append(tuple(members))
        return tuple(out)

    # ----------------------------------------------------------------- tiers
    def tier(self, a: int, b: int) -> int:
        """Hierarchy distance of two ranks.

        0 for the rank itself; otherwise ``ndim - i`` where ``i`` is the
        outermost axis whose coordinates differ.  On a ``(node, gpu)``
        mesh: 1 for two GPUs on one node (they differ only along the
        innermost axis), 2 across nodes — matching
        :meth:`~repro.machine.topology.Topology.tier_of` on the lowered
        fabric.
        """
        ca, cb = self.coords(a), self.coords(b)
        for i, (x, y) in enumerate(zip(ca, cb)):
            if x != y:
                return self.ndim - i
        return 0

    def tier_matrix(self) -> np.ndarray:
        """``(size, size)`` tier of every rank pair (see :meth:`tier`)."""
        coords = np.stack(
            np.unravel_index(np.arange(self.size), self.shape), axis=1
        )
        differs = coords[:, None, :] != coords[None, :, :]
        # Outermost differing axis: first True along the last dimension.
        any_diff = differs.any(axis=2)
        first = differs.argmax(axis=2)
        return np.where(any_diff, self.ndim - first, 0).astype(np.int64)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise TopologyError(
                f"rank {rank} out of range for mesh {self.axis_names} "
                f"{self.shape}"
            )


def cluster_mesh(n_nodes: int, gpus_per_node: int) -> DeviceMesh:
    """The canonical two-axis cluster layout: ``(node, gpu)``."""
    return DeviceMesh(axis_names=("node", "gpu"), shape=(n_nodes, gpus_per_node))


def mesh_topology(
    mesh: DeviceMesh,
    tier_links: tuple[LinkSpec, ...] | None = None,
    name: str | None = None,
) -> Topology:
    """Lower a mesh onto a tiered :class:`Topology`.

    ``tier_links`` gives one :class:`LinkSpec` per non-local tier,
    innermost (fastest) first.  A one-axis mesh is a single all-to-all
    island; a two-axis mesh becomes NVSwitch-style islands along the
    innermost axis joined through the outer tier's link as the fallback
    path (NVSHMEM's RDMA transport, ``shmem_over_fallback=True``).  A
    :class:`Topology` carries exactly two link classes, so meshes deeper
    than two axes are rejected rather than silently collapsed.
    """
    from repro.machine.multinode import INFINIBAND

    if tier_links is None:
        tier_links = (NVSWITCH, INFINIBAND)[: mesh.ndim]
    if len(tier_links) != mesh.ndim:
        raise TopologyError(
            f"need one link per mesh tier: {mesh.ndim} axes, "
            f"{len(tier_links)} links"
        )
    if mesh.ndim > 2:
        raise TopologyError(
            "a Topology carries two link tiers (direct + fallback); "
            f"cannot lower a {mesh.ndim}-axis mesh"
        )
    tiers = mesh.tier_matrix()
    lc = (tiers == 1).astype(np.int64)
    if name is None:
        name = "cluster-" + "x".join(str(s) for s in mesh.shape)
    if mesh.ndim == 1:
        return Topology(
            name=name,
            n_gpus=mesh.size,
            link_count=lc,
            link=tier_links[0],
            fallback=None,
            switched=True,
            node_shape=(1, mesh.size),
        )
    return Topology(
        name=name,
        n_gpus=mesh.size,
        link_count=lc,
        link=tier_links[0],
        fallback=tier_links[1],
        switched=True,  # per-GPU bandwidth constant within each tier
        shmem_over_fallback=True,  # NVSHMEM's IB transport
        node_shape=(mesh.shape[0], mesh.shape[1]),
    )


def mesh_machine(
    mesh: DeviceMesh,
    gpu: GpuSpec = V100,
    tier_links: tuple[LinkSpec, ...] | None = None,
) -> MachineConfig:
    """A ready-to-run machine over every rank of a mesh.

    ``require_p2p`` is False: crossing the outer tier goes through the
    fallback transport instead of being rejected, in contrast to the
    strict single-node DGX-1 clique rule.
    """
    topo = mesh_topology(mesh, tier_links)
    return MachineConfig(
        topology=topo,
        active_gpus=tuple(range(topo.n_gpus)),
        gpu=gpu,
        require_p2p=False,
    )
