"""Atomic-operation emulation with scope-dependent cost.

The paper's algorithms rely on three atomic scopes:

* **device** — ``d.atomic.add/incr`` on GPU-private arrays (cheap HBM
  atomics);
* **system** — ``s.atomic.add/decr`` on unified memory (requires page
  residence, priced through :class:`~repro.machine.unified.UnifiedMemory`);
* **symmetric-local** — atomics on the PE's own symmetric heap (device
  cost; this is what makes the read-only model fast: remote information
  is *accumulated locally* and only ever *read* remotely).

Functionally each helper just performs the add/increment on the NumPy
array; the returned float is the simulated time the operation charges.
"""

from __future__ import annotations

import numpy as np

from repro.machine.specs import GpuSpec
from repro.machine.unified import ManagedArray, UnifiedMemory

__all__ = [
    "device_atomic_add",
    "device_atomic_incr",
    "system_atomic_add",
    "system_atomic_decr",
]


def device_atomic_add(
    arr: np.ndarray, index: int, value: float, spec: GpuSpec
) -> float:
    """Device-scope ``atomicAdd`` on a GPU-private array."""
    arr[index] += value
    return spec.t_atomic_device


def device_atomic_incr(arr: np.ndarray, index: int, spec: GpuSpec) -> float:
    """Device-scope ``atomicAdd(..., 1)`` on an integer array."""
    arr[index] += 1
    return spec.t_atomic_device


def system_atomic_add(
    um: UnifiedMemory,
    array: ManagedArray,
    index: int,
    value: float,
    gpu: int,
    sharers: int | None = None,
) -> tuple[float, bool]:
    """System-scope ``atomicAdd`` on managed memory.

    Pulls the page to ``gpu`` (potential fault) then updates.  Returns
    ``(time_cost, faulted)``.
    """
    cost, faulted = um.access(gpu, array, index, sharers=sharers)
    array.data[index] += value
    return cost, faulted


def system_atomic_decr(
    um: UnifiedMemory,
    array: ManagedArray,
    index: int,
    gpu: int,
    sharers: int | None = None,
) -> tuple[float, bool]:
    """System-scope decrement on managed memory (``s.atomic.decr``)."""
    cost, faulted = um.access(gpu, array, index, sharers=sharers)
    array.data[index] -= 1
    return cost, faulted
