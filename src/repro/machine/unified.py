"""CUDA Unified Memory model: managed arrays, page ownership, thrashing.

Two complementary interfaces, both backed by the same parameters
(:class:`~repro.machine.specs.UnifiedMemorySpec`):

* **Event-exact** — :class:`UnifiedMemory` hands out managed NumPy arrays
  and charges every access through :meth:`UnifiedMemory.access`, which
  migrates the containing page when the accessor differs from the current
  owner.  Page-fault counts are exact for the simulated access stream.
  Used by the DES tier and by tests.
* **Analytic** — :func:`expected_faults` estimates fault counts from
  per-GPU access totals per page, via the interleaving model: with
  access fractions ``f_g`` the probability that consecutive accesses come
  from different GPUs is ``1 - sum f_g^2``, so
  ``faults ≈ accesses * (1 - sum f_g^2)``.  Used by the fast timing model
  to reproduce Fig. 3a at scale.

The *thrashing feedback* of Section III (spinning consumers bounce the
page away from producers, inflating every fault) is modelled by
:meth:`UnifiedMemory.fault_service_time`, which scales the base fault
cost by the number of GPUs actively sharing the page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MemoryModelError
from repro.machine.specs import UnifiedMemorySpec
from repro.machine.topology import Topology

__all__ = ["UnifiedMemory", "ManagedArray", "expected_faults"]


@dataclass
class ManagedArray:
    """A managed allocation: real data + per-page ownership."""

    name: str
    data: np.ndarray
    page_owner: np.ndarray  # int per page, -1 = CPU/unpopulated
    entries_per_page: int

    def page_of(self, index: int) -> int:
        return int(index) // self.entries_per_page

    @property
    def n_pages(self) -> int:
        return len(self.page_owner)


@dataclass
class UnifiedMemory:
    """The node-wide managed-memory pool.

    Parameters
    ----------
    spec:
        Unified-memory parameter sheet.
    topology:
        Fabric used to price page DMA between owners.
    """

    spec: UnifiedMemorySpec
    topology: Topology
    _arrays: dict[str, ManagedArray] = field(default_factory=dict, init=False)
    fault_count: int = field(default=0, init=False)
    faults_per_gpu: np.ndarray = field(init=False)
    migrated_bytes: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.faults_per_gpu = np.zeros(self.topology.n_gpus, dtype=np.int64)

    # ------------------------------------------------------------------
    def malloc_managed(self, name: str, n_entries: int, dtype=np.float64) -> ManagedArray:
        """``cudaMallocManaged``: allocate a managed, zeroed array."""
        if name in self._arrays:
            raise MemoryModelError(f"managed allocation {name!r} already exists")
        epp = self.spec.entries_per_page
        n_pages = (int(n_entries) + epp - 1) // epp
        arr = ManagedArray(
            name=name,
            data=np.zeros(int(n_entries), dtype=dtype),
            page_owner=np.full(max(n_pages, 1), -1, dtype=np.int64),
            entries_per_page=epp,
        )
        self._arrays[name] = arr
        return arr

    def get(self, name: str) -> ManagedArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise MemoryModelError(f"no managed allocation named {name!r}") from None

    def free(self, name: str) -> None:
        if name not in self._arrays:
            raise MemoryModelError(f"no managed allocation named {name!r}")
        del self._arrays[name]

    # ------------------------------------------------------------------
    def fault_service_time(self, sharers: int) -> float:
        """Service time of one fault when ``sharers`` GPUs contend.

        ``fault_cost * (1 + thrash_coupling * (sharers - 1))``: each
        additional GPU spinning on the page re-steals it mid-service,
        which is the feedback loop behind Fig. 3b's degradation.
        """
        sharers = max(int(sharers), 1)
        return self.spec.fault_cost * (
            1.0 + self.spec.thrash_coupling * (sharers - 1)
        )

    def access(
        self,
        gpu: int,
        array: ManagedArray,
        index: int,
        sharers: int | None = None,
    ) -> tuple[float, bool]:
        """Touch ``array[index]`` from ``gpu``; migrate the page if needed.

        Returns ``(time_cost, faulted)``.  The caller performs the actual
        data read/write on ``array.data`` (the model does not distinguish
        load from store — both pull the page for atomic access, since
        system-scope atomics require local residence on Volta).
        """
        page = array.page_of(index)
        owner = int(array.page_owner[page])
        if owner == gpu:
            return (self.spec.atomic_system, False)
        # Page fault: migrate page to the accessor.
        array.page_owner[page] = gpu
        self.fault_count += 1
        self.faults_per_gpu[gpu] += 1
        cost = self.spec.atomic_system
        if owner >= 0:
            n_share = sharers if sharers is not None else 2
            cost += self.fault_service_time(n_share)
            cost += self.spec.page_bytes / self.topology.peer_bandwidth(owner, gpu)
            self.migrated_bytes += self.spec.page_bytes
        else:
            # First touch: populate from host, cheaper than a steal.
            cost += self.spec.fault_cost * 0.5
        return (cost, True)

    def reset_counters(self) -> None:
        self.fault_count = 0
        self.faults_per_gpu[:] = 0
        self.migrated_bytes = 0.0


def expected_faults(access_counts: np.ndarray) -> float:
    """Analytic fault estimate for one page.

    Parameters
    ----------
    access_counts:
        ``(n_gpus,)`` number of accesses each GPU makes to the page over
        the run.

    Returns
    -------
    float
        Expected number of ownership changes if the accesses interleave
        uniformly at random: ``total * (1 - sum(f_g^2))`` where ``f_g``
        are the per-GPU access fractions.  Grows with the number of
        sharing GPUs — the Fig. 3a trend.
    """
    counts = np.asarray(access_counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    f = counts / total
    return float(total * (1.0 - np.sum(f * f)))
