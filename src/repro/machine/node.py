"""Node-level machine configuration: which GPUs, which fabric, which specs.

A :class:`MachineConfig` bundles everything a solver run needs to price
its execution: the active GPU set (a P2P clique for NVSHMEM runs), the
fabric, and the per-subsystem parameter sheets.  Factory helpers build
the two platforms of the evaluation (Section VI-A):

* :func:`dgx1` — 8x V100, hybrid cube-mesh NVLink; NVSHMEM jobs are
  limited to the fully connected 4-GPU clique, exactly as in the paper.
* :func:`dgx2` — 16x V100, all-to-all NVSwitch; scales to 16 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import TopologyError
from repro.machine.memory import DeviceMemory
from repro.machine.specs import (
    SHMEM_DEFAULT,
    UM_DEFAULT,
    V100,
    GpuSpec,
    ShmemSpec,
    UnifiedMemorySpec,
)
from repro.machine.topology import Topology, dgx1_topology, dgx2_topology

__all__ = ["MachineConfig", "dgx1", "dgx2"]


@dataclass(frozen=True)
class MachineConfig:
    """Everything the execution models need to know about the machine.

    Attributes
    ----------
    topology:
        The full node fabric.
    active_gpus:
        Physical GPU ids participating in this run (PE rank ``r`` maps to
        ``active_gpus[r]``).
    gpu:
        Per-GPU hardware sheet (homogeneous node).
    um:
        Unified-memory parameters.
    shmem:
        NVSHMEM parameters.
    require_p2p:
        If True (NVSHMEM runs), constructing a config whose active set is
        not a P2P clique raises :class:`TopologyError`.
    """

    topology: Topology
    active_gpus: tuple[int, ...]
    gpu: GpuSpec = V100
    um: UnifiedMemorySpec = UM_DEFAULT
    shmem: ShmemSpec = SHMEM_DEFAULT
    require_p2p: bool = False

    def __post_init__(self) -> None:
        if not self.active_gpus:
            raise TopologyError("need at least one active GPU")
        for g in self.active_gpus:
            if not 0 <= g < self.topology.n_gpus:
                raise TopologyError(
                    f"GPU {g} out of range for {self.topology.name}"
                )
        if len(set(self.active_gpus)) != len(self.active_gpus):
            raise TopologyError("duplicate GPU ids in active set")
        if self.require_p2p:
            from itertools import combinations

            for a, b in combinations(self.active_gpus, 2):
                if not self.topology.connected(a, b):
                    raise TopologyError(
                        f"NVSHMEM requires P2P: GPUs {a} and {b} are not "
                        f"directly connected in {self.topology.name}"
                    )

    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        """Number of participating GPUs (PEs)."""
        return len(self.active_gpus)

    def gpu_of_pe(self, pe: int) -> int:
        """Physical GPU id of PE rank ``pe``."""
        return self.active_gpus[pe]

    def device_memories(self) -> list[DeviceMemory]:
        """Fresh per-GPU memory trackers for one run."""
        return [DeviceMemory(g, self.gpu) for g in self.active_gpus]

    def pe_latency(self, pe_a: int, pe_b: int) -> float:
        """Small-message latency between two PE ranks."""
        return self.topology.latency(self.gpu_of_pe(pe_a), self.gpu_of_pe(pe_b))

    def with_gpu(self, **kw) -> "MachineConfig":
        """Copy with GPU spec fields overridden (sensitivity studies)."""
        return replace(self, gpu=self.gpu.with_(**kw))

    def with_um(self, **kw) -> "MachineConfig":
        return replace(self, um=replace(self.um, **kw))

    def with_shmem(self, **kw) -> "MachineConfig":
        return replace(self, shmem=replace(self.shmem, **kw))


def dgx1(
    n_gpus: int = 4,
    gpu: GpuSpec = V100,
    require_p2p: bool = True,
) -> MachineConfig:
    """A DGX-1 run on ``n_gpus`` GPUs.

    For NVSHMEM designs (``require_p2p=True``) the active set is chosen
    as a fully connected NVLink clique, which caps ``n_gpus`` at 4 — the
    same restriction the paper reports.  Unified-memory runs may use up
    to all 8 GPUs (``require_p2p=False``).
    """
    topo = dgx1_topology()
    if require_p2p:
        active = tuple(topo.p2p_clique(n_gpus))
    else:
        if not 1 <= n_gpus <= topo.n_gpus:
            raise TopologyError(f"DGX-1 has 8 GPUs, requested {n_gpus}")
        active = tuple(range(n_gpus))
    return MachineConfig(
        topology=topo, active_gpus=active, gpu=gpu, require_p2p=require_p2p
    )


def dgx2(
    n_gpus: int = 4,
    gpu: GpuSpec = V100,
    require_p2p: bool = True,
) -> MachineConfig:
    """A DGX-2 run on ``n_gpus`` GPUs (all-to-all, up to 16)."""
    topo = dgx2_topology()
    if not 1 <= n_gpus <= topo.n_gpus:
        raise TopologyError(f"DGX-2 has 16 GPUs, requested {n_gpus}")
    return MachineConfig(
        topology=topo,
        active_gpus=tuple(range(n_gpus)),
        gpu=gpu,
        require_p2p=require_p2p,
    )
