"""Hardware parameter sheets for the simulated multi-GPU systems.

All timing constants live here, in seconds, so that every model in the
package draws from a single calibrated source.  The defaults describe a
**model-scale V100 node**: because the suite's stand-in matrices are
~50-400x smaller than the paper's SuiteSparse inputs (DESIGN.md), every
capacity and latency is shrunk by a comparable factor — warp slots,
page granularity, link latency, fault service — so that the *ratios*
between compute, communication, and fault costs match what a real
DGX-1/DGX-2 sees at full scale.  Those ratios (e.g. page-fault service
vs. one-sided get ≈ 8:1, device atomic vs. system atomic ≈ 1:4) are what
drive every normalized figure in the paper; the absolute microsecond
values are not meaningful and are never reported un-normalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "GpuSpec",
    "LinkSpec",
    "UnifiedMemorySpec",
    "ShmemSpec",
    "V100",
    "NVLINK2",
    "NVSWITCH",
    "PCIE3",
    "UM_DEFAULT",
    "SHMEM_DEFAULT",
]


@dataclass(frozen=True)
class GpuSpec:
    """Performance model of one GPU.

    Attributes
    ----------
    name:
        Human-readable device name.
    warp_slots:
        Number of component-solving warps that can be resident at once.
        A V100 sustains 80 SMs x 64 warps = 5120; the default is lower so
        occupancy effects surface at the scaled-down matrix sizes used in
        the reproduction (the paper's out-of-core inputs oversubscribe a
        real V100 the same way).
    t_warp_dispatch:
        Fixed cost to issue one component's warp (scheduling + prologue).
    t_per_nnz:
        Per-nonzero cost of the solve-update arithmetic (multiply-add,
        gather of x and val).
    t_atomic_device:
        Device-scope atomic add/incr on local HBM.
    t_kernel_launch:
        Host-side launch latency of one kernel (one task in the task
        model).
    analysis_parallelism:
        Effective number of concurrently retiring atomic lanes during the
        in-degree pre-pass (atomics to distinct addresses pipeline).
    n_sms:
        Streaming multiprocessors; ``warp_slots`` splits evenly across
        them when the SM-granular occupancy model is enabled
        (:class:`repro.machine.sm.SmWarpScheduler`).
    block_warps:
        Warps per thread block under the SM-granular model (blocks pin
        to one SM at launch).
    memory_bytes:
        Device memory capacity, used by the task distributor's
        "available memory" round-robin rule.
    """

    name: str = "V100-model-scale"
    warp_slots: int = 64
    t_warp_dispatch: float = 0.5e-6
    t_per_nnz: float = 60e-9
    t_atomic_device: float = 25e-9
    t_kernel_launch: float = 3.0e-6
    analysis_parallelism: int = 64
    n_sms: int = 8
    block_warps: int = 4
    memory_bytes: int = 16 * 2**30

    def with_(self, **kw) -> "GpuSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


@dataclass(frozen=True)
class LinkSpec:
    """One interconnect link class.

    Attributes
    ----------
    name:
        Link technology name.
    latency:
        One-way small-message latency (seconds).
    bandwidth:
        Per-direction bandwidth in bytes/second for one link.
    """

    name: str = "NVLink2"
    latency: float = 0.35e-6
    bandwidth: float = 25e9

    def transfer_time(self, nbytes: int) -> float:
        """Latency + serialisation time of an ``nbytes`` transfer."""
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class UnifiedMemorySpec:
    """CUDA Unified Memory model parameters.

    Attributes
    ----------
    page_bytes:
        Migration granularity (model-scale: shrunk with the matrices so
        pages-per-array matches a V100's 64 KiB pages on the full-size
        inputs).
    fault_cost:
        GPU-side service time of one page fault (fault handling + unmap on
        the previous owner + DMA of the page).  Measured values on
        Volta-class parts are 20-50 us; the DMA part is added separately
        from the link model.
    atomic_system:
        System-scope atomic on a managed page already resident locally.
    poll_interval:
        Re-check period of the lock-wait spin loop on a managed location.
    thrash_coupling:
        Dimensionless gain of the contention feedback: how strongly
        concurrent spin-polling from other GPUs inflates the effective
        fault service time.  Drives the super-linear degradation of
        Fig. 3b.
    fault_batching:
        Fraction of interleaved accesses that actually trigger a
        migration: when a GPU steals a page, *all* of its queued accesses
        to that page are served before the next steal, so the raw
        interleaving estimate (``1 - sum f_g^2``) over-counts ownership
        changes by roughly the burst length.
    poll_weight:
        How many page accesses one spinning consumer contributes to its
        page's contention mix, relative to a single producer update.  A
        consumer in the lock-wait loop re-touches the page every
        ``poll_interval`` for its whole wait, so it weighs several times
        a one-shot update — this is the feedback loop of Section III-A
        (the busy-wait "needs to access the value on unified memory
        continuously").
    consumer_fault_weight:
        Expected fraction of a full fault service the consumer's *final
        successful* poll pays (the producer's write just stole the page,
        so the read must pull it back; weight < 1 because the page is
        sometimes still resident).
    fault_serial:
        Serial occupancy of the GPU-side fault engine per fault (unmap +
        TLB shootdown).  Faults initiated by one GPU queue on its single
        fault path, bounding that GPU's makespan below by
        ``faults_initiated * fault_serial``.  Default 0 (folded into
        ``fault_cost``); exposed for sensitivity studies.
    task_warmup_weight:
        Fraction of a fault service each managed page of a task pays when
        the task's kernel launches (pages were evicted by other GPUs'
        activity between launches).  This cold-start term is what makes
        finer task interleaving counterproductive on unified memory
        (Fig. 7's Unified+8task scenario) while the same task model helps
        the zero-copy design.
    """

    page_bytes: int = 2048
    fault_cost: float = 3.0e-6
    atomic_system: float = 100e-9
    poll_interval: float = 0.3e-6
    thrash_coupling: float = 0.5
    fault_batching: float = 0.08
    poll_weight: float = 4.0
    consumer_fault_weight: float = 1.6
    fault_serial: float = 0.0
    task_warmup_weight: float = 0.5

    @property
    def entries_per_page(self) -> int:
        """8-byte entries (float64 left_sum / int64 in_degree) per page."""
        return self.page_bytes // 8


@dataclass(frozen=True)
class ShmemSpec:
    """NVSHMEM model parameters.

    Attributes
    ----------
    get_overhead:
        GPU-side software overhead of issuing one fine-grained get on top
        of the raw link latency.
    put_overhead:
        Same for put.
    fence_cost, quiet_cost:
        Ordering primitives.  ``quiet`` waits for completion of all
        outstanding puts/gets of the calling PE — expensive, and exactly
        what the naive Get-Update-Put design must pay per update.
    shfl_cost:
        One ``__shfl_down_sync`` step of the warp-level reduction.
    poll_interval:
        Re-poll period of the read-only lock-wait loop.
    """

    get_overhead: float = 0.08e-6
    put_overhead: float = 0.08e-6
    fence_cost: float = 0.2e-6
    quiet_cost: float = 0.6e-6
    shfl_cost: float = 10e-9
    poll_interval: float = 0.3e-6


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
V100 = GpuSpec()
NVLINK2 = LinkSpec(name="NVLink2", latency=0.35e-6, bandwidth=25e9)
NVSWITCH = LinkSpec(name="NVSwitch", latency=0.45e-6, bandwidth=50e9)
PCIE3 = LinkSpec(name="PCIe3x16", latency=1.0e-6, bandwidth=12e9)
UM_DEFAULT = UnifiedMemorySpec()
SHMEM_DEFAULT = ShmemSpec()
