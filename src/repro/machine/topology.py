"""Interconnect topologies: DGX-1 hybrid cube-mesh, DGX-2 NVSwitch, PCIe.

A :class:`Topology` is a multigraph over GPUs whose edges are
:class:`~repro.machine.specs.LinkSpec` instances.  It answers the two
questions every communication model asks: *can PE a reach PE b directly*
(NVSHMEM requires P2P connectivity — the reason the paper stops at 4 GPUs
on DGX-1), and *what does a transfer between them cost*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError
from repro.machine.specs import NVLINK2, NVSWITCH, PCIE3, LinkSpec

__all__ = [
    "Topology",
    "dgx1_topology",
    "dgx2_topology",
    "pcie_topology",
    "DGX1_NVLINK_EDGES",
]


# The twelve cube edges plus the diagonals of two opposite faces
# (Section III-B / Tartan): GPUs 0-3 and GPUs 4-7 each form a fully
# connected quad.  Pairs appearing twice are double links.
DGX1_NVLINK_EDGES: tuple[tuple[int, int], ...] = (
    # front face quad (fully connected)
    (0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (1, 2),
    # back face quad (fully connected)
    (4, 5), (4, 6), (5, 7), (6, 7), (4, 7), (5, 6),
    # cube edges between faces
    (0, 4), (1, 5), (2, 6), (3, 7),
    # double links on the high-traffic pairs
    (0, 3), (1, 2), (4, 7), (5, 6),
)


@dataclass(frozen=True)
class Topology:
    """Static interconnect description.

    Attributes
    ----------
    name:
        Topology name (reported by benches).
    n_gpus:
        Number of GPUs in the node.
    link_count:
        ``(n_gpus, n_gpus)`` symmetric integer matrix: number of direct
        links between each pair (0 = not P2P connected).
    link:
        The link class used for direct connections.
    fallback:
        Link class used when two GPUs are *not* directly connected
        (staging through PCIe/host).  ``None`` means such transfers are
        an error, matching NVSHMEM's P2P-only restriction.
    switched:
        True for NVSwitch-style fabrics where per-GPU bandwidth stays
        constant as more GPUs join (Section VI-D's observation about
        DGX-2 scaling).
    shmem_over_fallback:
        Whether NVSHMEM one-sided operations may route through the
        fallback path.  False for single-node fabrics (the paper's
        CUDA-10-era NVSHMEM is P2P-only — the 4-GPU DGX-1 limit); True
        for multi-node clusters whose fallback is an RDMA transport.
    node_shape:
        Optional ``(n_nodes, gpus_per_node)`` annotation for fabrics
        built from a :class:`~repro.machine.mesh.DeviceMesh` — the node
        axis of the hierarchy.  ``None`` means a single-node fabric;
        consumers treat it as ``(1, n_gpus)``.
    """

    name: str
    n_gpus: int
    link_count: np.ndarray
    link: LinkSpec
    fallback: LinkSpec | None = None
    switched: bool = False
    shmem_over_fallback: bool = False
    node_shape: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        lc = np.asarray(self.link_count, dtype=np.int64)
        if lc.shape != (self.n_gpus, self.n_gpus):
            raise TopologyError(
                f"link_count shape {lc.shape} != ({self.n_gpus}, {self.n_gpus})"
            )
        if not np.array_equal(lc, lc.T):
            raise TopologyError("link_count must be symmetric")
        if np.any(np.diag(lc) != 0):
            raise TopologyError("link_count diagonal must be zero")
        object.__setattr__(self, "link_count", lc)
        if self.node_shape is not None:
            shape = tuple(int(s) for s in self.node_shape)
            if len(shape) != 2 or any(s < 1 for s in shape):
                raise TopologyError(
                    f"node_shape must be (n_nodes, gpus_per_node), got "
                    f"{self.node_shape!r}"
                )
            if shape[0] * shape[1] != self.n_gpus:
                raise TopologyError(
                    f"node_shape {shape} does not cover {self.n_gpus} GPUs"
                )
            object.__setattr__(self, "node_shape", shape)

    # ------------------------------------------------------------------
    def connected(self, a: int, b: int) -> bool:
        """True if GPUs ``a`` and ``b`` are directly P2P connected."""
        self._check(a)
        self._check(b)
        return a == b or self.link_count[a, b] > 0

    def peer_bandwidth(self, a: int, b: int) -> float:
        """Aggregate one-direction bandwidth between ``a`` and ``b``."""
        if a == b:
            return float("inf")
        k = int(self.link_count[a, b])
        if k > 0:
            return k * self.link.bandwidth
        if self.fallback is None:
            raise TopologyError(
                f"GPU {a} and GPU {b} are not P2P connected in {self.name}"
            )
        return self.fallback.bandwidth

    def latency(self, a: int, b: int) -> float:
        """Small-message one-way latency between ``a`` and ``b``."""
        if a == b:
            return 0.0
        if self.link_count[a, b] > 0:
            return self.link.latency
        if self.fallback is None:
            raise TopologyError(
                f"GPU {a} and GPU {b} are not P2P connected in {self.name}"
            )
        return self.fallback.latency

    def transfer_time(self, a: int, b: int, nbytes: int) -> float:
        """Uncontended transfer time of ``nbytes`` from ``a`` to ``b``."""
        if a == b:
            return 0.0
        return self.latency(a, b) + nbytes / self.peer_bandwidth(a, b)

    # ------------------------------------------------------------ link tiers
    @property
    def n_tiers(self) -> int:
        """Number of distinct non-local link tiers (1 without a fallback)."""
        return 1 if self.fallback is None else 2

    def tier_of(self, a: int, b: int) -> int:
        """Link tier of the ``a -> b`` pair.

        Tier 0 is the GPU itself (loopback), tier 1 the direct link
        (NVLink / NVSwitch), tier 2 the fallback path (PCIe staging on a
        single node, RDMA over IB on a cluster).  Unreachable pairs —
        disconnected with no fallback — raise :class:`TopologyError`,
        mirroring :meth:`peer_bandwidth`.
        """
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        if self.link_count[a, b] > 0:
            return 1
        if self.fallback is None:
            raise TopologyError(
                f"GPU {a} and GPU {b} are not P2P connected in {self.name}"
            )
        return 2

    def tier_link(self, tier: int) -> LinkSpec | None:
        """The :class:`LinkSpec` carrying a tier (``None`` for tier 0)."""
        if tier == 0:
            return None
        if tier == 1:
            return self.link
        if tier == 2 and self.fallback is not None:
            return self.fallback
        raise TopologyError(f"{self.name} has no link tier {tier}")

    def tier_matrix(self) -> np.ndarray:
        """``(n_gpus, n_gpus)`` tier of every GPU pair (see :meth:`tier_of`).

        Raises :class:`TopologyError` when any pair is unreachable, so a
        successful call guarantees every off-diagonal tier is priced.
        """
        tiers = np.where(self.link_count > 0, 1, 2).astype(np.int64)
        np.fill_diagonal(tiers, 0)
        if self.fallback is None and np.any(tiers > 1):
            a, b = np.argwhere(tiers > 1)[0]
            raise TopologyError(
                f"GPU {int(a)} and GPU {int(b)} are not P2P connected in "
                f"{self.name}"
            )
        return tiers

    def p2p_clique(self, size: int) -> list[int]:
        """A set of ``size`` mutually P2P-connected GPUs.

        Raises :class:`TopologyError` if none exists — e.g. requesting a
        5-GPU NVSHMEM job on DGX-1, mirroring the paper's 4-GPU limit.
        """
        if size <= 0 or size > self.n_gpus:
            raise TopologyError(f"invalid clique size {size} for {self.name}")
        # Greedy search is sufficient for the small, highly structured
        # fabrics modelled here; fall back to exhaustive search on failure.
        from itertools import combinations

        for combo in combinations(range(self.n_gpus), size):
            if all(self.connected(a, b) for a, b in combinations(combo, 2)):
                return list(combo)
        raise TopologyError(
            f"{self.name} has no fully P2P-connected set of {size} GPUs"
        )

    def bisection_links(self) -> int:
        """Number of links crossing a best-case even bisection (reporting)."""
        half = self.n_gpus // 2
        left = set(range(half))
        return int(
            sum(
                self.link_count[a, b]
                for a in left
                for b in range(self.n_gpus)
                if b not in left
            )
        )

    def _check(self, g: int) -> None:
        if not 0 <= g < self.n_gpus:
            raise TopologyError(f"GPU id {g} out of range for {self.name}")


def dgx1_topology(link: LinkSpec = NVLINK2) -> Topology:
    """The 8-GPU DGX-1V hybrid cube-mesh.

    GPUs 0-3 form a fully connected quad (the subset the paper runs
    NVSHMEM on); pairs without a direct NVLink stage through PCIe.
    """
    lc = np.zeros((8, 8), dtype=np.int64)
    for a, b in DGX1_NVLINK_EDGES:
        lc[a, b] += 1
        lc[b, a] += 1
    return Topology(
        name="DGX-1",
        n_gpus=8,
        link_count=lc,
        link=link,
        fallback=PCIE3,
        switched=False,
    )


def dgx2_topology(n_gpus: int = 16, link: LinkSpec = NVSWITCH) -> Topology:
    """The 16-GPU DGX-2: all-to-all through six NVSwitch planes.

    Every pair is P2P connected at full per-GPU bandwidth, and bandwidth
    per GPU does not degrade as more GPUs participate (``switched=True``).
    """
    if not 1 <= n_gpus <= 16:
        raise TopologyError(f"DGX-2 has 16 GPUs, requested {n_gpus}")
    lc = np.ones((n_gpus, n_gpus), dtype=np.int64) - np.eye(n_gpus, dtype=np.int64)
    return Topology(
        name="DGX-2",
        n_gpus=n_gpus,
        link_count=lc,
        link=link,
        fallback=None,
        switched=True,
    )


def pcie_topology(n_gpus: int, link: LinkSpec = PCIE3) -> Topology:
    """A plain PCIe box: all pairs reachable, shared low bandwidth."""
    if n_gpus < 1:
        raise TopologyError("need at least one GPU")
    lc = np.ones((n_gpus, n_gpus), dtype=np.int64) - np.eye(n_gpus, dtype=np.int64)
    return Topology(
        name=f"PCIe-{n_gpus}",
        n_gpus=n_gpus,
        link_count=lc,
        link=link,
        fallback=None,
        switched=False,
    )
