"""GPU execution model: warp-slot occupancy and per-component costing.

One warp solves one component (Liu et al.'s mapping, kept by the paper).
A GPU sustains :attr:`~repro.machine.specs.GpuSpec.warp_slots` resident
warps; a component's warp occupies its slot from dispatch until the
solve-update finishes — *including* the lock-wait spin, which is how
waiting time eats hardware and why workload imbalance hurts (Section V).

:class:`WarpScheduler` implements dispatch-in-order list scheduling over
the slot pool; it is shared by the fast timing model and the DES tier.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.machine.specs import GpuSpec

__all__ = ["WarpScheduler", "BatchWarpPool", "GpuCounters", "solve_cost"]


@dataclass
class GpuCounters:
    """Per-GPU accounting accumulated during a simulated solve."""

    busy_time: float = 0.0  # productive solve-update time
    spin_time: float = 0.0  # lock-wait time while holding a slot
    comm_time: float = 0.0  # time in remote gets / faults
    components: int = 0
    last_finish: float = 0.0

    @property
    def occupied_time(self) -> float:
        return self.busy_time + self.spin_time + self.comm_time


class WarpScheduler:
    """Slot-pool scheduler for one GPU.

    Components must be dispatched in ascending global index order (the
    hardware scheduler's block-issue order); this is what guarantees the
    sync-free algorithm cannot deadlock under finite occupancy.
    """

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        self._busy: list[float] = []  # min-heap of slot free times
        self.counters = GpuCounters()

    def dispatch(self, not_before: float) -> float:
        """Acquire a slot; returns the dispatch time.

        ``not_before`` is the earliest legal dispatch (e.g. the owning
        task's kernel-launch completion).
        """
        if len(self._busy) < self.spec.warp_slots:
            t = not_before
        else:
            t = max(heapq.heappop(self._busy), not_before)
        return t + self.spec.t_warp_dispatch

    def retire(self, finish_time: float) -> None:
        """Release the slot at ``finish_time``."""
        heapq.heappush(self._busy, finish_time)
        self.counters.components += 1
        self.counters.last_finish = max(self.counters.last_finish, finish_time)

    @property
    def resident(self) -> int:
        """Number of slots currently charged (dispatched, not retired)."""
        return len(self._busy)


class BatchWarpPool:
    """Vectorised slot pool: batch-dispatch equivalent of :class:`WarpScheduler`.

    Processes a whole batch of dispatch requests (already in ascending
    component-index order, the hardware issue order) against the slot
    pool with array operations.  Produces dispatch and finish times
    bit-identical to feeding the same sequence through
    ``WarpScheduler.dispatch``/``retire`` one component at a time.

    The heap-free formulation rests on an order-statistic identity of
    dispatch-in-order list scheduling: because every pushed finish time
    is at least the free time it replaced, the slot freed for the
    ``k``-th request of a batch is exactly the ``(k+1)``-th smallest
    element of ``pool ∪ {all batch finish times}``.  Finish times depend
    on the pops and vice versa, so the batch is resolved by a monotone
    fixpoint iteration started from the pops of the pool alone (an upper
    bound); any fixpoint equals the sequential schedule, and convergence
    almost always takes two rounds (one guess, one confirmation).  A
    per-item heap fallback guarantees exactness if the iteration cap is
    ever hit.
    """

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        self._free = np.empty(0, dtype=np.float64)  # sorted slot free times
        self.counters = GpuCounters()
        self.fallbacks = 0  # batches resolved by the reference heap path

    @property
    def resident(self) -> int:
        """Number of slots currently charged (same meaning as the heap)."""
        return len(self._free)

    def dispatch_batch(
        self,
        not_before: np.ndarray,
        ready: np.ndarray,
        comm: np.ndarray,
        solve: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dispatch a batch of independent components in index order.

        Parameters
        ----------
        not_before:
            Earliest legal dispatch per component (kernel-launch gate).
        ready:
            Dependency readiness per component (must not depend on any
            other member of this batch).
        comm, solve:
            Communication and productive cost per component; the finish
            time is ``(max(dispatch, ready) + comm) + solve`` with exactly
            that float association, matching the scalar timeline loop.

        Returns
        -------
        (dispatch, finish):
            Per-component dispatch and finish times; the batch's finish
            times are retired into the pool before returning.
        """
        spec = self.spec
        w, d = spec.warp_slots, spec.t_warp_dispatch
        m = len(not_before)
        if m == 0:
            return np.empty(0), np.empty(0)
        pool = self._free
        dispatch = np.empty(m, dtype=np.float64)
        finish = np.empty(m, dtype=np.float64)

        # Requests that find the pool unsaturated dispatch immediately.
        k0 = min(m, max(0, w - len(pool)))
        if k0:
            disp = not_before[:k0] + d
            fin = (np.maximum(disp, ready[:k0]) + comm[:k0]) + solve[:k0]
            dispatch[:k0] = disp
            finish[:k0] = fin
            pool = np.sort(np.concatenate([pool, fin])) if len(pool) else np.sort(fin)

        if k0 < m:
            c = m - k0
            nb = not_before[k0:]
            rd = ready[k0:]
            cm = comm[k0:]
            sv = solve[k0:]
            if c <= len(pool):
                pops = pool[:c]
            else:  # pragma: no cover - c > warp_slots needs a huge batch
                pops = np.concatenate([pool, np.full(c - len(pool), np.inf)])
            merged = pool
            converged = False
            for _ in range(c + 2):
                disp = np.maximum(pops, nb) + d
                fin = (np.maximum(disp, rd) + cm) + sv
                merged = np.sort(np.concatenate([pool, fin]))
                new_pops = merged[:c]
                if np.array_equal(new_pops, pops):
                    converged = True
                    break
                pops = new_pops
            if converged:
                dispatch[k0:] = disp
                finish[k0:] = fin
                pool = merged[c:]
            else:  # pragma: no cover - iteration cap is c+2, cannot trip
                self.fallbacks += 1
                heap = pool.tolist()  # sorted array satisfies heap order
                for j in range(c):
                    t = heapq.heappop(heap)
                    if t < nb[j]:
                        t = float(nb[j])
                    dj = t + d
                    fj = (max(dj, float(rd[j])) + float(cm[j])) + float(sv[j])
                    dispatch[k0 + j] = dj
                    finish[k0 + j] = fj
                    heapq.heappush(heap, fj)
                pool = np.sort(np.asarray(heap))

        self._free = pool
        self.counters.components += m
        last = float(np.max(finish))
        if last > self.counters.last_finish:
            self.counters.last_finish = last
        return dispatch, finish


def solve_cost(spec: GpuSpec, col_nnz: int, in_degree: int) -> float:
    """Productive time of one component's solve-update phase.

    ``in_degree`` left-sum accumulations feed the solve; ``col_nnz - 1``
    strictly-lower entries are produced as updates (the update *targets*
    are charged separately per memory model).
    """
    return spec.t_per_nnz * (max(col_nnz, 1) + max(in_degree, 0))
