"""GPU execution model: warp-slot occupancy and per-component costing.

One warp solves one component (Liu et al.'s mapping, kept by the paper).
A GPU sustains :attr:`~repro.machine.specs.GpuSpec.warp_slots` resident
warps; a component's warp occupies its slot from dispatch until the
solve-update finishes — *including* the lock-wait spin, which is how
waiting time eats hardware and why workload imbalance hurts (Section V).

:class:`WarpScheduler` implements dispatch-in-order list scheduling over
the slot pool; it is shared by the fast timing model and the DES tier.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.machine.specs import GpuSpec

__all__ = ["WarpScheduler", "GpuCounters", "solve_cost"]


@dataclass
class GpuCounters:
    """Per-GPU accounting accumulated during a simulated solve."""

    busy_time: float = 0.0  # productive solve-update time
    spin_time: float = 0.0  # lock-wait time while holding a slot
    comm_time: float = 0.0  # time in remote gets / faults
    components: int = 0
    last_finish: float = 0.0

    @property
    def occupied_time(self) -> float:
        return self.busy_time + self.spin_time + self.comm_time


class WarpScheduler:
    """Slot-pool scheduler for one GPU.

    Components must be dispatched in ascending global index order (the
    hardware scheduler's block-issue order); this is what guarantees the
    sync-free algorithm cannot deadlock under finite occupancy.
    """

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        self._busy: list[float] = []  # min-heap of slot free times
        self.counters = GpuCounters()

    def dispatch(self, not_before: float) -> float:
        """Acquire a slot; returns the dispatch time.

        ``not_before`` is the earliest legal dispatch (e.g. the owning
        task's kernel-launch completion).
        """
        if len(self._busy) < self.spec.warp_slots:
            t = not_before
        else:
            t = max(heapq.heappop(self._busy), not_before)
        return t + self.spec.t_warp_dispatch

    def retire(self, finish_time: float) -> None:
        """Release the slot at ``finish_time``."""
        heapq.heappush(self._busy, finish_time)
        self.counters.components += 1
        self.counters.last_finish = max(self.counters.last_finish, finish_time)

    @property
    def resident(self) -> int:
        """Number of slots currently charged (dispatched, not retired)."""
        return len(self._busy)


def solve_cost(spec: GpuSpec, col_nnz: int, in_degree: int) -> float:
    """Productive time of one component's solve-update phase.

    ``in_degree`` left-sum accumulations feed the solve; ``col_nnz - 1``
    strictly-lower entries are produced as updates (the update *targets*
    are charged separately per memory model).
    """
    return spec.t_per_nnz * (max(col_nnz, 1) + max(in_degree, 0))
