"""Multi-node cluster topologies (extension beyond the paper).

The paper targets a single node and names multi-node operation as the
natural extension (its related work covers one-sided MPI SpTRSV across
ranks).  This module builds cluster fabrics out of the same
:class:`~repro.machine.topology.Topology` abstraction the single-node
models use: GPUs within a node see the intra-node link (NVSwitch),
GPU pairs on different nodes see an InfiniBand-class link via the
topology's fallback path.  Everything downstream — cost models, the
timeline, the solvers — works unchanged, which is exactly the point of
the exercise: measuring how the zero-copy design behaves when some
"remote" PEs are an order of magnitude further away.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TopologyError
from repro.machine.node import MachineConfig
from repro.machine.specs import NVSWITCH, GpuSpec, LinkSpec, V100
from repro.machine.topology import Topology

__all__ = ["INFINIBAND", "multinode_topology", "cluster", "node_of"]

#: HDR InfiniBand-class inter-node link at model scale: ~6x the NVSwitch
#: latency, a quarter of its bandwidth.
INFINIBAND = LinkSpec(name="IB-HDR", latency=2.6e-6, bandwidth=12.5e9)


def multinode_topology(
    n_nodes: int,
    gpus_per_node: int = 4,
    intra: LinkSpec = NVSWITCH,
    inter: LinkSpec = INFINIBAND,
) -> Topology:
    """A cluster of all-to-all nodes bridged by an inter-node fabric.

    GPUs ``[k * gpus_per_node, (k+1) * gpus_per_node)`` form node ``k``
    (the node-major rank order of a ``(node, gpu)``
    :class:`~repro.machine.mesh.DeviceMesh`, which this is a thin
    wrapper over).  Intra-node pairs are directly linked; inter-node
    pairs route through the fallback (RDMA over IB), so NVSHMEM-style
    one-sided access still *works*, just slower — matching NVSHMEM's IB
    transport.
    """
    from repro.machine.mesh import cluster_mesh, mesh_topology

    if n_nodes < 1 or gpus_per_node < 1:
        raise TopologyError("need at least one node and one GPU per node")
    return mesh_topology(
        cluster_mesh(n_nodes, gpus_per_node),
        tier_links=(intra, inter),
        name=f"cluster-{n_nodes}x{gpus_per_node}",
    )


def cluster(
    n_nodes: int,
    gpus_per_node: int = 4,
    gpu: GpuSpec = V100,
) -> MachineConfig:
    """A ready-to-run machine config over the full cluster.

    ``require_p2p`` is False: inter-node one-sided access goes through
    the IB fallback rather than being rejected (NVSHMEM's multi-node
    transport), in contrast to the strict single-node DGX-1 clique rule.
    """
    topo = multinode_topology(n_nodes, gpus_per_node)
    return MachineConfig(
        topology=topo,
        active_gpus=tuple(range(topo.n_gpus)),
        gpu=gpu,
        require_p2p=False,
    )


def node_of(gpu_id: int | np.ndarray, gpus_per_node: int) -> np.ndarray:
    """Node index of a GPU id (vectorised)."""
    return np.asarray(gpu_id, dtype=np.int64) // gpus_per_node
