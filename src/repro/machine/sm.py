"""SM-granular occupancy: per-SM warp pools with block-level placement.

The flat :class:`~repro.machine.gpu.WarpScheduler` treats a GPU as one
pool of warp slots — work-conserving, but real hardware is not: warps
belong to *thread blocks*, blocks are pinned to a streaming
multiprocessor at launch, and a stalled SM's slots cannot serve warps
queued behind a busy one.  That fragmentation is the classic reason
sync-free SpTRSV kernels size their blocks carefully.

:class:`SmWarpScheduler` models it with the same dispatch/retire
interface as the flat scheduler, so
:func:`repro.exec_model.timeline.simulate_execution` can swap it in via
``sm_granularity=True`` and measure how much the flat model's optimism
costs — the `bench_ablation_sm_model` study.
"""

from __future__ import annotations

import heapq

from repro.errors import SimulationError
from repro.machine.gpu import GpuCounters
from repro.machine.specs import GpuSpec

__all__ = ["SmWarpScheduler"]


class SmWarpScheduler:
    """Per-SM slot pools with round-robin block placement.

    Parameters
    ----------
    spec:
        GPU sheet; ``spec.warp_slots`` is divided evenly across
        ``spec.n_sms`` multiprocessors.
    """

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        if spec.n_sms < 1 or spec.block_warps < 1:
            raise SimulationError("need n_sms >= 1 and block_warps >= 1")
        self.per_sm = max(spec.warp_slots // spec.n_sms, 1)
        self._heaps: list[list[float]] = [[] for _ in range(spec.n_sms)]
        self._block_sm = 0  # SM of the block currently being filled
        self._in_block = 0  # warps already placed in that block
        self._last_sm = 0  # SM of the most recent dispatch (for retire)
        self.counters = GpuCounters()

    def dispatch(self, not_before: float) -> float:
        """Acquire a slot on the current block's SM.

        Warps arrive in block groups of ``spec.block_warps``; every full
        block advances to the next SM round-robin — the hardware's
        block-to-SM placement.  A full SM delays the dispatch until one
        of *its own* warps retires, even if other SMs sit idle
        (fragmentation).
        """
        sm = self._block_sm
        heap = self._heaps[sm]
        if len(heap) < self.per_sm:
            t = not_before
        else:
            t = max(heapq.heappop(heap), not_before)
        self._last_sm = sm
        self._in_block += 1
        if self._in_block >= self.spec.block_warps:
            self._in_block = 0
            self._block_sm = (self._block_sm + 1) % self.spec.n_sms
        return t + self.spec.t_warp_dispatch

    def retire(self, finish_time: float) -> None:
        """Release the most recently dispatched warp's slot."""
        heapq.heappush(self._heaps[self._last_sm], finish_time)
        self.counters.components += 1
        self.counters.last_finish = max(self.counters.last_finish, finish_time)

    @property
    def resident(self) -> int:
        return sum(len(h) for h in self._heaps)
