"""SM-granular occupancy: per-SM warp pools with block-level placement.

The flat :class:`~repro.machine.gpu.WarpScheduler` treats a GPU as one
pool of warp slots — work-conserving, but real hardware is not: warps
belong to *thread blocks*, blocks are pinned to a streaming
multiprocessor at launch, and a stalled SM's slots cannot serve warps
queued behind a busy one.  That fragmentation is the classic reason
sync-free SpTRSV kernels size their blocks carefully.

:class:`SmWarpScheduler` models it with the same dispatch/retire
interface as the flat scheduler, so
:func:`repro.exec_model.timeline.simulate_execution` can swap it in via
``sm_granularity=True`` and measure how much the flat model's optimism
costs — the `bench_ablation_sm_model` study.

Slot bookkeeping is pooled: one preallocated ``(n_sms, per_sm)`` array
of resident finish times plus a per-SM occupancy count, instead of a
Python heap per SM.  Dispatch-when-full evicts the row's minimum
(``argmin`` over at most ``per_sm`` floats), which is the same multiset
operation as the old per-SM ``heappop``, so schedules are unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.machine.gpu import GpuCounters
from repro.machine.specs import GpuSpec

__all__ = ["SmWarpScheduler"]


class SmWarpScheduler:
    """Per-SM slot pools with round-robin block placement.

    Parameters
    ----------
    spec:
        GPU sheet; ``spec.warp_slots`` is divided evenly across
        ``spec.n_sms`` multiprocessors.
    """

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        if spec.n_sms < 1 or spec.block_warps < 1:
            raise SimulationError("need n_sms >= 1 and block_warps >= 1")
        self.per_sm = max(spec.warp_slots // spec.n_sms, 1)
        # Pooled resident-warp finish times: row per SM, fixed width.
        self._slots = np.empty((spec.n_sms, self.per_sm), dtype=np.float64)
        self._counts = np.zeros(spec.n_sms, dtype=np.int64)
        self._block_sm = 0  # SM of the block currently being filled
        self._in_block = 0  # warps already placed in that block
        self._last_sm = 0  # SM of the most recent dispatch (for retire)
        self.counters = GpuCounters()

    def dispatch(self, not_before: float) -> float:
        """Acquire a slot on the current block's SM.

        Warps arrive in block groups of ``spec.block_warps``; every full
        block advances to the next SM round-robin — the hardware's
        block-to-SM placement.  A full SM delays the dispatch until one
        of *its own* warps retires, even if other SMs sit idle
        (fragmentation).
        """
        sm = self._block_sm
        cnt = int(self._counts[sm])
        if cnt < self.per_sm:
            t = not_before
        else:
            row = self._slots[sm]
            j = int(np.argmin(row[:cnt]))
            t = max(float(row[j]), not_before)
            # Evict the earliest finisher: swap-with-last keeps the
            # occupied prefix dense.
            row[j] = row[cnt - 1]
            self._counts[sm] = cnt - 1
        self._last_sm = sm
        self._in_block += 1
        if self._in_block >= self.spec.block_warps:
            self._in_block = 0
            self._block_sm = (self._block_sm + 1) % self.spec.n_sms
        return t + self.spec.t_warp_dispatch

    def retire(self, finish_time: float) -> None:
        """Release the most recently dispatched warp's slot."""
        sm = self._last_sm
        cnt = int(self._counts[sm])
        if cnt >= self._slots.shape[1]:  # pragma: no cover - defensive
            # Only reachable if a caller retires more warps than it
            # dispatched; widen the pool rather than corrupt a row.
            self._slots = np.concatenate(
                [self._slots, np.empty_like(self._slots)], axis=1
            )
        self._slots[sm, cnt] = finish_time
        self._counts[sm] = cnt + 1
        self.counters.components += 1
        self.counters.last_finish = max(self.counters.last_finish, finish_time)

    @property
    def resident(self) -> int:
        return int(self._counts.sum())
