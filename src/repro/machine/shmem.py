"""NVSHMEM model: symmetric heap, one-sided get/put, fence/quiet.

Follows the semantics described in Section IV-A:

* Allocation is **collective and symmetric**: every PE participates in
  :meth:`SymmetricHeap.malloc` with the same size, and each PE gets its
  own instance of the array on its local heap.
* :meth:`SymmetricHeap.get` / :meth:`SymmetricHeap.put` are one-sided:
  they read/write the *remote PE's* instance, priced by the fabric, and
  require P2P connectivity (the reason the paper caps DGX-1 runs at the
  4-GPU clique).
* ``fence`` orders, ``quiet`` completes — their costs are what make the
  naive Get-Update-Put design slow (modelled in
  :class:`repro.solvers.nvshmem.NaiveGetUpdatePutModel`'s cost terms).

The heap stores real NumPy arrays so solver emulations running on top of
it compute real numerics through exactly the data paths the paper's
kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShmemError
from repro.machine.link import LinkTracker
from repro.machine.specs import ShmemSpec
from repro.machine.topology import Topology

__all__ = ["SymmetricHeap", "warp_reduction_time", "serial_reduction_time"]


@dataclass
class SymmetricHeap:
    """The PGAS global address space over ``n_pes`` symmetric heaps.

    Parameters
    ----------
    n_pes:
        Number of processing elements (GPUs) in the NVSHMEM job.
    topology:
        Fabric pricing remote get/put.
    spec:
        NVSHMEM software-overhead parameters.
    pe_to_gpu:
        Optional mapping of PE rank to physical GPU id (identity by
        default).  All PE pairs must be P2P connected.
    """

    n_pes: int
    topology: Topology
    spec: ShmemSpec
    pe_to_gpu: np.ndarray | None = None
    tracker: LinkTracker = field(init=False)
    _heaps: dict[str, list[np.ndarray]] = field(default_factory=dict, init=False)
    get_count: int = field(default=0, init=False)
    put_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.pe_to_gpu is None:
            self.pe_to_gpu = np.arange(self.n_pes, dtype=np.int64)
        else:
            self.pe_to_gpu = np.asarray(self.pe_to_gpu, dtype=np.int64)
        if len(self.pe_to_gpu) != self.n_pes:
            raise ShmemError("pe_to_gpu must have one entry per PE")
        # Single-node NVSHMEM requires direct P2P links; only topologies
        # whose fallback is a declared RDMA transport (multi-node IB) may
        # route one-sided ops through it.
        if not self.topology.shmem_over_fallback:
            for a in range(self.n_pes):
                for b in range(a + 1, self.n_pes):
                    ga, gb = int(self.pe_to_gpu[a]), int(self.pe_to_gpu[b])
                    if not self.topology.connected(ga, gb):
                        raise ShmemError(
                            f"NVSHMEM requires P2P connectivity: GPU {ga} and "
                            f"GPU {gb} are not directly linked in "
                            f"{self.topology.name}"
                        )
        self.tracker = LinkTracker(self.topology)

    # ------------------------------------------------------------------
    def malloc(self, name: str, n_entries: int, dtype=np.float64) -> list[np.ndarray]:
        """Collective symmetric allocation: one zeroed array per PE."""
        if name in self._heaps:
            raise ShmemError(f"symmetric allocation {name!r} already exists")
        arrays = [np.zeros(int(n_entries), dtype=dtype) for _ in range(self.n_pes)]
        self._heaps[name] = arrays
        return arrays

    def local(self, name: str, pe: int) -> np.ndarray:
        """PE-local instance of a symmetric allocation."""
        self._check_pe(pe)
        try:
            return self._heaps[name][pe]
        except KeyError:
            raise ShmemError(f"no symmetric allocation named {name!r}") from None

    def free(self, name: str) -> None:
        if name not in self._heaps:
            raise ShmemError(f"no symmetric allocation named {name!r}")
        del self._heaps[name]

    # ------------------------------------------------------------------
    def get(
        self, name: str, index: int, target_pe: int, caller_pe: int
    ) -> tuple[float, float]:
        """One-sided 8-byte get of ``name[index]`` from ``target_pe``.

        Returns ``(value, time_cost)``.  A local get is a plain load.
        """
        self._check_pe(caller_pe)
        arr = self.local(name, target_pe)
        value = float(arr[index])
        if target_pe == caller_pe:
            return value, 0.0
        cost = self.spec.get_overhead + self.tracker.record(
            int(self.pe_to_gpu[caller_pe]), int(self.pe_to_gpu[target_pe]), 8
        )
        self.get_count += 1
        return value, cost

    def put(
        self, name: str, index: int, value: float, target_pe: int, caller_pe: int
    ) -> float:
        """One-sided 8-byte put into ``name[index]`` on ``target_pe``."""
        self._check_pe(caller_pe)
        arr = self.local(name, target_pe)
        arr[index] = value
        if target_pe == caller_pe:
            return 0.0
        self.put_count += 1
        return self.spec.put_overhead + self.tracker.record(
            int(self.pe_to_gpu[caller_pe]), int(self.pe_to_gpu[target_pe]), 8
        )

    def get_row(
        self, name: str, index: int, caller_pe: int
    ) -> tuple[np.ndarray, float]:
        """Fetch ``name[index]`` from *every* PE (the read-only model's
        per-component gather).

        The warp issues one get per PE in parallel threads (Fig. 5), so the
        time cost is the max of the individual gets, not the sum.
        """
        values = np.empty(self.n_pes)
        worst = 0.0
        for pe in range(self.n_pes):
            values[pe], c = self.get(name, index, pe, caller_pe)
            worst = max(worst, c)
        return values, worst

    # ------------------------------------------------------------------
    def fence(self) -> float:
        """Order preceding puts/gets (returns the time cost)."""
        return self.spec.fence_cost

    def quiet(self) -> float:
        """Complete all outstanding one-sided ops (returns the time cost)."""
        return self.spec.quiet_cost

    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.n_pes:
            raise ShmemError(f"PE {pe} out of range (n_pes={self.n_pes})")


def warp_reduction_time(n_values: int, shfl_cost: float) -> float:
    """Time of the warp-level parallel reduction over ``n_values`` lanes.

    ``O(log2 P)`` ``__shfl_down_sync`` steps (Section IV-B), versus the
    ``O(P)`` serial loop it replaces — :func:`serial_reduction_time`.
    """
    if n_values <= 1:
        return 0.0
    return float(np.ceil(np.log2(n_values))) * shfl_cost


def serial_reduction_time(n_values: int, shfl_cost: float) -> float:
    """Time of the naive serial sum loop (ablation baseline)."""
    if n_values <= 1:
        return 0.0
    return (n_values - 1) * shfl_cost * 2.0
