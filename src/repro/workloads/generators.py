"""Synthetic lower-triangular matrix generators.

The centrepiece is :func:`dag_profile_matrix`, which constructs a lower
triangular matrix with a *prescribed level structure*: you choose the
number of level sets, the level-width profile, the average dependency
(nnz/row), and how strongly extra dependencies cluster near their
consumer.  Because the paper explains all per-matrix behaviour through
``#levels``/``parallelism``/``dependency`` (Table I, Section VI-D),
controlling those knobs directly is what makes laptop-scale stand-ins
faithful to the SuiteSparse originals.

Simpler generators (:func:`tridiagonal_lower`, :func:`banded_lower`,
:func:`random_lower`, :func:`grid_graph_lower`) serve tests and examples.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import WorkloadError
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix

__all__ = [
    "dag_profile_matrix",
    "tridiagonal_lower",
    "banded_lower",
    "random_lower",
    "forest_lower",
    "grid_graph_lower",
    "level_widths",
]

WidthProfile = Literal["uniform", "geometric", "bulge", "front"]


def level_widths(
    n: int, n_levels: int, profile: WidthProfile, rng: np.random.Generator
) -> np.ndarray:
    """Partition ``n`` components into ``n_levels`` positive level widths.

    Profiles
    --------
    ``uniform``
        Near-equal widths — regular meshes, road networks.
    ``geometric``
        Wide first levels decaying geometrically — social/citation graphs
        where most vertices are near the roots.
    ``bulge``
        Rise-then-fall — FEM factors whose elimination fronts grow then
        shrink.
    ``front``
        One huge root level, thin tail — KKT systems, web graphs with a
        dominant independent set.
    """
    if n_levels < 1 or n_levels > n:
        raise WorkloadError(f"need 1 <= n_levels <= n, got {n_levels} for n={n}")
    if profile == "uniform":
        raw = np.ones(n_levels)
    elif profile == "geometric":
        raw = 0.93 ** np.arange(n_levels, dtype=np.float64)
    elif profile == "bulge":
        t = np.linspace(0.0, 1.0, n_levels)
        raw = 0.1 + np.sin(np.pi * t) ** 2
    elif profile == "front":
        # First level holds ~half the components, remainder spread evenly
        # (a KKT-like bipartite-ish structure).
        raw = np.full(n_levels, 1.0)
        raw[0] = max(n_levels - 1.0, 1.0)
    else:  # pragma: no cover - guarded by Literal
        raise WorkloadError(f"unknown width profile {profile!r}")
    raw = raw * (1.0 + 0.15 * rng.random(n_levels))  # mild irregularity
    widths = np.maximum(1, np.floor(raw / raw.sum() * n).astype(np.int64))
    # Fix rounding drift while keeping every width >= 1.
    drift = n - int(widths.sum())
    if drift > 0:
        idx = rng.choice(n_levels, size=drift, replace=True, p=raw / raw.sum())
        np.add.at(widths, idx, 1)
    while drift < 0:
        candidates = np.nonzero(widths > 1)[0]
        take = candidates[: min(len(candidates), -drift)]
        widths[take] -= 1
        drift += len(take)
    assert int(widths.sum()) == n and widths.min() >= 1
    return widths


def dag_profile_matrix(
    n: int,
    n_levels: int,
    dependency: float,
    profile: WidthProfile = "uniform",
    locality: float = 0.5,
    order_mix: float = 0.3,
    scatter: float = 0.0,
    seed: int = 0,
) -> CscMatrix:
    """Build a lower-triangular matrix with an exact level-set count.

    Parameters
    ----------
    n:
        Number of rows/components.
    n_levels:
        Exact number of level sets the result will have.
    dependency:
        Target average nonzeros per row (Table I's ``NNZ/nRow``),
        including the diagonal.  Must be >= 1.
    profile:
        Level-width profile (see :func:`level_widths`).
    locality:
        In [0, 1]: how strongly extra dependencies cluster in levels just
        below the consumer (1 = tight chains / banded structure, 0 =
        uniform over all earlier levels / scale-free structure).
    order_mix:
        In [0, 1]: how far the component numbering deviates from strict
        level-major order.  0 keeps each level contiguous in index space;
        larger values interleave components of adjacent levels (noise is
        bounded below one level so the numbering always remains a valid
        topological order).
    scatter:
        In [0, 1]: global level/index decorrelation.  When positive, the
        final numbering is a *random linear extension* drawn by Kahn's
        algorithm with heap priority ``(1 - scatter) * level + scatter *
        noise``: components of one level spread across the whole index
        range (as in real factors of natural/fill-reducing orderings)
        while the numbering remains topologically valid.  ``scatter``
        subsumes ``order_mix`` when nonzero.
    seed:
        RNG seed; generation is fully deterministic given the arguments.

    Returns
    -------
    CscMatrix
        Row-diagonally-dominant lower-triangular matrix whose level-set
        decomposition has exactly ``n_levels`` levels.
    """
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    if dependency < 1.0:
        raise WorkloadError(f"dependency must be >= 1.0, got {dependency}")
    if (
        not 0.0 <= locality <= 1.0
        or not 0.0 <= order_mix <= 1.0
        or not 0.0 <= scatter <= 1.0
    ):
        raise WorkloadError("locality, order_mix and scatter must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    widths = level_widths(n, n_levels, profile, rng)
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    np.cumsum(widths, out=level_ptr[1:])
    # Provisional node ids are level-major: level l owns
    # [level_ptr[l], level_ptr[l+1]).
    level_of = np.repeat(np.arange(n_levels, dtype=np.int64), widths)

    # --- mandatory parents: one per node from the level directly below ---
    children = np.arange(level_ptr[1], n, dtype=np.int64)
    child_levels = level_of[children]
    lo = level_ptr[child_levels - 1]
    hi = level_ptr[child_levels]
    parents = lo + (rng.random(len(children)) * (hi - lo)).astype(np.int64)

    # --- extra dependencies to reach the target nnz ----------------------
    # nnz = n (diagonal) + mandatory + extra.
    target_extra = int(round(n * (dependency - 1.0))) - len(children)
    # A single-level matrix has no eligible consumers: every component is
    # independent, so a dependency target above 1.0 is quietly unreachable.
    if target_extra > 0 and len(children):
        # Eligible consumers: any node not in level 0.
        extra_child = children[
            (rng.random(target_extra) * len(children)).astype(np.int64)
        ]
        cl = level_of[extra_child]
        # Parent level: geometric-like decay below the child's level with
        # strength set by `locality`.
        span = cl.astype(np.float64)  # levels available below child
        if locality > 0.0:
            scale = np.maximum((1.0 - locality) * span, 0.35)
            back = np.floor(rng.exponential(scale=scale)).astype(np.int64)
        else:
            back = (rng.random(target_extra) * span).astype(np.int64)
        plevel = np.clip(cl - 1 - back, 0, None)
        plo = level_ptr[plevel]
        phi = level_ptr[plevel + 1]
        extra_parent = plo + (rng.random(target_extra) * (phi - plo)).astype(
            np.int64
        )
        children_all = np.concatenate([children, extra_child])
        parents_all = np.concatenate([parents, extra_parent])
    else:
        children_all, parents_all = children, parents

    # Deduplicate (child, parent) pairs.
    key = children_all * n + parents_all
    uniq = np.unique(key)
    child_f = uniq // n
    parent_f = uniq % n

    # --- linear extension for the final numbering ------------------------
    if scatter > 0.0:
        new_id = _random_linear_extension(
            n, child_f, parent_f, level_of, scatter, rng
        )
    else:
        # priority = level + noise with amplitude < 1: a node can only
        # leapfrog into the neighbouring level's index range, so the
        # numbering stays a valid topological order (edges always span
        # >= 1 level).
        noise = rng.random(n) * min(order_mix, 0.999)
        priority = level_of.astype(np.float64) + noise
        order = np.argsort(priority, kind="stable")  # order[k] = prov. id
        new_id = np.empty(n, dtype=np.int64)
        new_id[order] = np.arange(n, dtype=np.int64)

    rows = new_id[child_f]
    cols = new_id[parent_f]

    # --- values: row-diagonally dominant --------------------------------
    vals = rng.uniform(-1.0, 1.0, size=len(rows))
    vals[vals == 0.0] = 0.5
    row_abs = np.zeros(n)
    np.add.at(row_abs, rows, np.abs(vals))
    diag_idx = np.arange(n, dtype=np.int64)
    diag_vals = 1.0 + row_abs
    coo = CooMatrix(
        np.concatenate([rows, diag_idx]),
        np.concatenate([cols, diag_idx]),
        np.concatenate([vals, diag_vals]),
        (n, n),
    )
    return coo.to_csc()


def _random_linear_extension(
    n: int,
    child: np.ndarray,
    parent: np.ndarray,
    level_of: np.ndarray,
    scatter: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a randomised topological numbering of the DAG.

    Kahn's algorithm with a heap keyed by
    ``(1 - scatter) * level + scatter * noise`` (noise on the level
    scale): at ``scatter=1`` ready nodes pop in near-uniform random
    order, fully decorrelating level from index; smaller values retain a
    level/index correlation gradient.  Returns ``new_id`` mapping
    provisional (level-major) ids to final indices.
    """
    import heapq

    n_levels = int(level_of.max(initial=0)) + 1
    indeg = np.bincount(child, minlength=n)
    # Successor lists in provisional-id space.
    order = np.argsort(parent, kind="stable")
    sorted_parents = parent[order]
    sorted_children = child[order]
    succ_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(sorted_parents, minlength=n), out=succ_ptr[1:])

    priority = (1.0 - scatter) * level_of + scatter * rng.random(n) * n_levels
    heap: list[tuple[float, int]] = [
        (float(priority[v]), int(v)) for v in np.nonzero(indeg == 0)[0]
    ]
    heapq.heapify(heap)
    new_id = np.empty(n, dtype=np.int64)
    k = 0
    while heap:
        _, v = heapq.heappop(heap)
        new_id[v] = k
        k += 1
        for e in range(int(succ_ptr[v]), int(succ_ptr[v + 1])):
            c = int(sorted_children[e])
            indeg[c] -= 1
            if indeg[c] == 0:
                heapq.heappush(heap, (float(priority[c]), c))
    if k != n:  # pragma: no cover - DAG by construction
        raise WorkloadError("cycle detected while numbering the DAG")
    return new_id


def tridiagonal_lower(n: int, seed: int = 0) -> CscMatrix:
    """Bidiagonal lower matrix (the fully serial worst case: n levels)."""
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    sub = rng.uniform(0.2, 1.0, size=max(n - 1, 0))
    rows = np.concatenate([np.arange(n), np.arange(1, n)])
    cols = np.concatenate([np.arange(n), np.arange(n - 1)])
    vals = np.concatenate([np.full(n, 2.0), sub])
    return CooMatrix(rows, cols, vals, (n, n)).to_csc()


def banded_lower(n: int, bandwidth: int, fill: float = 1.0, seed: int = 0) -> CscMatrix:
    """Banded lower-triangular matrix (FEM-like long dependency chains).

    ``fill`` is the probability that each in-band subdiagonal entry is
    present.
    """
    if n < 1 or bandwidth < 0:
        raise WorkloadError("need n >= 1 and bandwidth >= 0")
    if not 0.0 <= fill <= 1.0:
        raise WorkloadError("fill must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    rows_list = [np.arange(n, dtype=np.int64)]
    cols_list = [np.arange(n, dtype=np.int64)]
    for k in range(1, bandwidth + 1):
        keep = rng.random(n - k) <= fill
        rows_list.append(np.arange(k, n, dtype=np.int64)[keep])
        cols_list.append(np.arange(0, n - k, dtype=np.int64)[keep])
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    off = rows != cols
    vals = np.empty(len(rows))
    vals[off] = rng.uniform(-1.0, 1.0, size=int(off.sum()))
    # Row-diagonal dominance.
    row_abs = np.zeros(n)
    np.add.at(row_abs, rows[off], np.abs(vals[off]))
    vals[~off] = 1.0 + row_abs
    return CooMatrix(rows, cols, vals, (n, n)).to_csc()


def random_lower(n: int, avg_nnz_per_row: float = 3.0, seed: int = 0) -> CscMatrix:
    """Uniformly random strictly-lower pattern plus a dominant diagonal."""
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    if avg_nnz_per_row < 1.0:
        raise WorkloadError("avg_nnz_per_row must be >= 1.0")
    rng = np.random.default_rng(seed)
    n_off = int(round(n * (avg_nnz_per_row - 1.0)))
    rows = (rng.random(n_off) * (n - 1)).astype(np.int64) + 1 if n > 1 else np.zeros(
        0, dtype=np.int64
    )
    cols = (rng.random(len(rows)) * rows).astype(np.int64)
    key = np.unique(rows * n + cols)
    rows, cols = key // n, key % n
    vals = rng.uniform(-1.0, 1.0, size=len(rows))
    row_abs = np.zeros(n)
    np.add.at(row_abs, rows, np.abs(vals))
    diag = np.arange(n, dtype=np.int64)
    return CooMatrix(
        np.concatenate([rows, diag]),
        np.concatenate([cols, diag]),
        np.concatenate([vals, 1.0 + row_abs]),
        (n, n),
    ).to_csc()


def forest_lower(n: int, seed: int = 0) -> CscMatrix:
    """Random in-forest: every row has at most one off-diagonal entry.

    Component ``i >= 1`` depends on exactly one uniformly drawn parent
    ``p < i`` (component 0 is the lone root), so every ``left.sum`` is a
    single product — there is no accumulation order to permute.  That
    makes these systems the *bitwise oracle* workload of the chaos
    harness: no matter how fault injection reorders deliveries, a
    correctly recovered DES solve must equal the serial forward
    substitution bit for bit, so silent corruption can never hide behind
    floating-point reassociation.
    """
    if n < 1:
        raise WorkloadError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    child = np.arange(1, n, dtype=np.int64)
    parent = (rng.random(n - 1) * child).astype(np.int64)
    vals = rng.uniform(-1.0, 1.0, size=n - 1)
    vals[vals == 0.0] = 0.5
    row_abs = np.zeros(n)
    np.add.at(row_abs, child, np.abs(vals))
    diag = np.arange(n, dtype=np.int64)
    return CooMatrix(
        np.concatenate([child, diag]),
        np.concatenate([parent, diag]),
        np.concatenate([vals, 1.0 + row_abs]),
        (n, n),
    ).to_csc()


def grid_graph_lower(rows: int, cols: int, seed: int = 0) -> CscMatrix:
    """Lower triangle of a 2-D grid graph Laplacian-like matrix.

    Row-major vertex numbering: vertex ``(r, c)`` depends on its west and
    north neighbours — the structured-grid pattern of the paper's
    motivating applications (structured-grid problems, Section I).
    """
    if rows < 1 or cols < 1:
        raise WorkloadError("grid needs rows >= 1 and cols >= 1")
    n = rows * cols
    rng = np.random.default_rng(seed)
    vid = np.arange(n, dtype=np.int64).reshape(rows, cols)
    west_child = vid[:, 1:].ravel()
    west_parent = vid[:, :-1].ravel()
    north_child = vid[1:, :].ravel()
    north_parent = vid[:-1, :].ravel()
    r = np.concatenate([west_child, north_child])
    c = np.concatenate([west_parent, north_parent])
    vals = rng.uniform(0.2, 0.5, size=len(r)) * -1.0
    row_abs = np.zeros(n)
    np.add.at(row_abs, r, np.abs(vals))
    diag = np.arange(n, dtype=np.int64)
    return CooMatrix(
        np.concatenate([r, diag]),
        np.concatenate([c, diag]),
        np.concatenate([vals, 1.0 + row_abs]),
        (n, n),
    ).to_csc()
