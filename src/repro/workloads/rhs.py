"""Right-hand-side builders for SpTRSV runs."""

from __future__ import annotations

import numpy as np

from repro.sparse.csc import CscMatrix

__all__ = ["ones_rhs", "random_rhs", "manufactured_rhs"]


def ones_rhs(n: int) -> np.ndarray:
    """The all-ones RHS (the conventional SpTRSV benchmark input)."""
    return np.ones(n)


def random_rhs(n: int, seed: int = 0) -> np.ndarray:
    """Uniform RHS in [-1, 1]."""
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=n)


def manufactured_rhs(lower: CscMatrix, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """``(b, x_true)`` with a known solution (see
    :func:`repro.sparse.validate.random_rhs_for_solution`)."""
    from repro.sparse.validate import random_rhs_for_solution

    return random_rhs_for_solution(lower, seed=seed)
