"""The Table I matrix suite: laptop-scale stand-ins for the paper's inputs.

Each SuiteSparse matrix in Table I is replaced by a synthetic matrix from
:func:`~repro.workloads.generators.dag_profile_matrix` whose *behavioural
metrics* track the original:

* ``dependency`` (nnz/row) is preserved exactly — it sets per-component
  work and communication volume;
* the ``(#levels, parallelism)`` point is shrunk geometrically
  (``levels' ~ levels * sqrt(n'/n)``), preserving each matrix's balance
  between chain length and width at the reduced size; a few extreme
  matrices (nlpkkt160, uk-2005, twitter7) are hand-tuned so that their
  *scaling class* — the property Section VI-D ties to multi-GPU benefit —
  is preserved rather than the raw ratio.

``PAPER_STATS`` retains the original Table I numbers so benches can print
paper-vs-stand-in side by side.  Note: Table I in the paper transposes
the rows/nnz columns of ``shipsec1`` and ``copter2`` (shipsec1 has 140,874
rows, not 7.8M); we record the corrected orientation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import WorkloadError
from repro.sparse.csc import CscMatrix
from repro.workloads.generators import WidthProfile, dag_profile_matrix

__all__ = ["SuiteEntry", "PAPER_STATS", "SUITE", "suite_names", "load", "entry"]


@dataclass(frozen=True)
class SuiteEntry:
    """Recipe for one Table I stand-in.

    Attributes
    ----------
    name:
        SuiteSparse name of the matrix being stood in for.
    n, n_levels, dependency, profile, locality, order_mix, seed:
        :func:`dag_profile_matrix` arguments.
    kind:
        Application-domain label (reporting only).
    out_of_memory:
        True for the paper's two out-of-core inputs (twitter7, uk-2005).
    fig3, fig10:
        Whether the matrix appears in the Fig. 3 profiling set / the
        Fig. 10 highlighted-scaling set.
    """

    name: str
    n: int
    n_levels: int
    dependency: float
    profile: WidthProfile
    locality: float
    order_mix: float
    seed: int
    kind: str
    scatter: float = 0.0
    out_of_memory: bool = False
    fig3: bool = False
    fig10: bool = False

    def build(self) -> CscMatrix:
        """Generate the stand-in matrix (deterministic)."""
        return dag_profile_matrix(
            n=self.n,
            n_levels=self.n_levels,
            dependency=self.dependency,
            profile=self.profile,
            locality=self.locality,
            order_mix=self.order_mix,
            scatter=self.scatter,
            seed=self.seed,
        )


@dataclass(frozen=True)
class PaperStats:
    """Original Table I row (for side-by-side reporting)."""

    n_rows: int
    nnz: int
    n_levels: int
    parallelism: float


PAPER_STATS: dict[str, PaperStats] = {
    "belgium_osm": PaperStats(1_441_295, 2_991_265, 631, 2_284),
    "chipcool0": PaperStats(20_082, 150_616, 534, 38),
    "citationCiteseer": PaperStats(268_495, 1_425_142, 102, 2_632),
    "dblp-2010": PaperStats(326_186, 1_133_886, 1_562, 209),
    "dc2": PaperStats(116_835, 441_781, 14, 8_345),
    "delaunay_n20": PaperStats(1_048_576, 4_194_262, 788, 1_331),
    "nlpkkt160": PaperStats(8_345_600, 118_931_856, 2, 4_172_800),
    "pkustk14": PaperStats(151_926, 7_494_215, 1_075, 141),
    "powersim": PaperStats(15_838, 40_673, 24, 660),
    "roadNet-CA": PaperStats(1_971_281, 4_737_888, 364, 5_416),
    "webbase-1M": PaperStats(1_000_005, 2_348_442, 512, 1_953),
    "Wordnet3": PaperStats(82_670, 176_821, 37, 2_234),
    "shipsec1": PaperStats(140_874, 7_813_404, 2_100, 67),
    "copter2": PaperStats(55_476, 759_952, 190, 291),
    "twitter7": PaperStats(41_652_230, 475_658_233, 18_116, 2_299),
    "uk-2005": PaperStats(39_459_925, 473_261_087, 2_838, 1_390_413),
}


SUITE: dict[str, SuiteEntry] = {
    e.name: e
    for e in [
        SuiteEntry(
            "belgium_osm", 24_000, 81, 2.08, "uniform", 0.20, 0.4, 101,
            scatter=0.55, kind="road network", fig3=True,
        ),
        SuiteEntry(
            "chipcool0", 10_000, 377, 7.50, "bulge", 0.55, 0.3, 102,
            scatter=0.25, kind="circuit / thermal", fig10=True,
        ),
        SuiteEntry(
            "citationCiteseer", 16_000, 25, 5.31, "geometric", 0.10, 0.5, 103,
            scatter=0.7, kind="citation graph",
        ),
        SuiteEntry(
            "dblp-2010", 16_000, 346, 3.48, "geometric", 0.20, 0.4, 104,
            scatter=0.6, kind="co-authorship graph",
        ),
        SuiteEntry(
            "dc2", 12_000, 5, 3.78, "front", 0.10, 0.5, 105,
            scatter=0.6, kind="circuit simulation", fig3=True, fig10=True,
        ),
        SuiteEntry(
            "delaunay_n20", 20_000, 109, 4.00, "uniform", 0.35, 0.4, 106,
            scatter=0.45, kind="triangular mesh",
        ),
        SuiteEntry(
            "nlpkkt160", 16_000, 2, 14.25, "front", 0.0, 0.3, 107,
            scatter=0.5, kind="KKT optimisation", fig3=True, fig10=True,
        ),
        SuiteEntry(
            "pkustk14", 6_000, 214, 25.0, "bulge", 0.60, 0.3, 108,
            scatter=0.25, kind="structural FEM",
        ),
        SuiteEntry(
            "powersim", 15_838, 24, 2.57, "uniform", 0.15, 0.5, 109,
            scatter=0.6, kind="power grid", fig10=True,
        ),
        SuiteEntry(
            "roadNet-CA", 24_000, 40, 2.40, "uniform", 0.20, 0.4, 110,
            scatter=0.5, kind="road network", fig3=True,
        ),
        SuiteEntry(
            "webbase-1M", 20_000, 72, 2.35, "geometric", 0.15, 0.4, 111,
            scatter=0.6, kind="web graph",
        ),
        SuiteEntry(
            "Wordnet3", 16_000, 16, 2.14, "geometric", 0.10, 0.5, 112,
            scatter=0.7, kind="lexical graph", fig10=True,
        ),
        SuiteEntry(
            "shipsec1", 5_000, 395, 30.0, "bulge", 0.65, 0.2, 113,
            scatter=0.2, kind="structural FEM",
        ),
        SuiteEntry(
            "copter2", 12_000, 88, 13.7, "bulge", 0.45, 0.3, 114,
            scatter=0.35, kind="CFD mesh",
        ),
        SuiteEntry(
            "twitter7", 24_000, 24, 11.42, "geometric", 0.10, 0.5, 115,
            scatter=0.7, kind="social graph", out_of_memory=True,
        ),
        SuiteEntry(
            "uk-2005", 24_000, 8, 12.0, "front", 0.10, 0.5, 116,
            scatter=0.6, kind="web crawl", out_of_memory=True,
        ),
    ]
}

# The paper's Fig. 7/8/9 run the 14 in-memory matrices; the two
# out-of-memory ones join for the scalability discussion.
IN_MEMORY_NAMES: tuple[str, ...] = tuple(
    name for name, e in SUITE.items() if not e.out_of_memory
)


def suite_names(include_out_of_memory: bool = True) -> list[str]:
    """Names of the suite matrices in Table I order."""
    if include_out_of_memory:
        return list(SUITE)
    return list(IN_MEMORY_NAMES)


def entry(name: str) -> SuiteEntry:
    """Look up a suite recipe by (case-sensitive) SuiteSparse name."""
    try:
        return SUITE[name]
    except KeyError:
        raise WorkloadError(
            f"unknown suite matrix {name!r}; known: {', '.join(SUITE)}"
        ) from None


@lru_cache(maxsize=32)
def load(name: str) -> CscMatrix:
    """Build (and memoise) a suite stand-in by name."""
    return entry(name).build()
