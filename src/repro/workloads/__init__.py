"""Workloads: synthetic generators, the Table I stand-in suite, RHS builders."""

from repro.workloads.generators import (
    banded_lower,
    dag_profile_matrix,
    forest_lower,
    grid_graph_lower,
    level_widths,
    random_lower,
    tridiagonal_lower,
)
from repro.workloads.cache import cache_path, cached_load, export_suite, fingerprint
from repro.workloads.factors import (
    anisotropic_factor,
    circuit_factor,
    poisson2d_factor,
    poisson2d_matrix,
)
from repro.workloads.rhs import manufactured_rhs, ones_rhs, random_rhs
from repro.workloads.suite import (
    IN_MEMORY_NAMES,
    PAPER_STATS,
    SUITE,
    SuiteEntry,
    entry,
    load,
    suite_names,
)

__all__ = [
    "dag_profile_matrix",
    "tridiagonal_lower",
    "banded_lower",
    "random_lower",
    "forest_lower",
    "grid_graph_lower",
    "level_widths",
    "ones_rhs",
    "random_rhs",
    "manufactured_rhs",
    "poisson2d_factor",
    "anisotropic_factor",
    "circuit_factor",
    "poisson2d_matrix",
    "cached_load",
    "cache_path",
    "export_suite",
    "fingerprint",
    "SuiteEntry",
    "SUITE",
    "PAPER_STATS",
    "IN_MEMORY_NAMES",
    "suite_names",
    "entry",
    "load",
]
