"""Workload CLI: inspect or export the Table-I stand-in suite.

    python -m repro.workloads list
    python -m repro.workloads profile powersim dc2
    python -m repro.workloads export --dir ./mtx [names...]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.metrics import MatrixProfile, profile_matrix, scaling_class
from repro.workloads.cache import export_suite
from repro.workloads.suite import SUITE, load, suite_names


def cmd_list() -> int:
    print(
        f"{'name':<18s} {'rows':>8s} {'levels':>7s} {'dep.':>6s} "
        f"{'profile':<10s} {'kind':<22s} {'oom':>4s}"
    )
    for name, e in SUITE.items():
        print(
            f"{name:<18s} {e.n:>8,d} {e.n_levels:>7d} {e.dependency:>6.2f} "
            f"{e.profile:<10s} {e.kind:<22s} {'yes' if e.out_of_memory else '':>4s}"
        )
    return 0


def cmd_profile(names: list[str]) -> int:
    print(MatrixProfile.table_header() + "  class")
    for name in names or suite_names():
        prof = profile_matrix(load(name), name)
        print(prof.table_row() + f"  {scaling_class(prof)}")
    return 0


def cmd_export(directory: str, names: list[str]) -> int:
    paths = export_suite(directory, names=names or None)
    for p in paths:
        print(p)
    print(f"exported {len(paths)} matrices to {directory}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Inspect or export the Table-I stand-in matrix suite.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show every suite recipe")
    p_prof = sub.add_parser("profile", help="build matrices and print stats")
    p_prof.add_argument("names", nargs="*", help="suite names (default: all)")
    p_exp = sub.add_parser("export", help="write .mtx files for the suite")
    p_exp.add_argument("--dir", required=True, help="output directory")
    p_exp.add_argument("names", nargs="*", help="suite names (default: all)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "profile":
        return cmd_profile(args.names)
    return cmd_export(args.dir, args.names)


if __name__ == "__main__":
    sys.exit(main())
