"""On-disk matrix cache: persist suite stand-ins as MatrixMarket files.

Two purposes:

* repeated bench sessions skip regeneration (`cached_load` is a drop-in
  for :func:`repro.workloads.suite.load` with a cache directory), and
* the cache doubles as an export path — the `.mtx` files are exactly
  what you would feed the authors' CUDA implementation to compare
  against this reproduction on real hardware.

Files are validated on read (structure + a content fingerprint embedded
in the comment header), so a stale or corrupted cache regenerates rather
than silently feeding wrong data to a bench.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.sparse.csc import CscMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market
from repro.workloads.suite import entry

__all__ = ["fingerprint", "cache_path", "cached_load", "export_suite"]


def fingerprint(matrix: CscMatrix) -> str:
    """Stable content hash of a CSC matrix (structure + values)."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(matrix.indptr).tobytes())
    h.update(np.ascontiguousarray(matrix.indices).tobytes())
    h.update(np.ascontiguousarray(matrix.data).tobytes())
    h.update(repr(matrix.shape).encode())
    return h.hexdigest()[:16]


def cache_path(cache_dir: str | Path, name: str) -> Path:
    """Canonical cache location of a suite matrix."""
    safe = name.replace("/", "_")
    return Path(cache_dir) / f"{safe}.mtx"


def cached_load(name: str, cache_dir: str | Path) -> CscMatrix:
    """Load a suite matrix through the on-disk cache.

    Cache hit: parse the ``.mtx`` file and verify its embedded
    fingerprint against the parsed content.  Miss or mismatch: rebuild
    from the recipe and (re)write the file.
    """
    e = entry(name)  # validates the name
    path = cache_path(cache_dir, name)
    if path.exists():
        try:
            coo = read_matrix_market(path)
            matrix = coo.to_csc()
            expected = _read_fingerprint(path)
            if expected is not None and fingerprint(matrix) == expected:
                return matrix
        except WorkloadError:
            raise
        except Exception:
            pass  # unreadable cache: fall through to regeneration
    matrix = e.build()
    path.parent.mkdir(parents=True, exist_ok=True)
    write_matrix_market(
        path,
        matrix.to_coo(),
        comment=(
            f"repro suite stand-in for {name}\n"
            f"fingerprint: {fingerprint(matrix)}"
        ),
    )
    return matrix


def _read_fingerprint(path: Path) -> str | None:
    """Extract the fingerprint comment from a cached file's header."""
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            if not line.startswith("%"):
                return None
            if "fingerprint:" in line:
                return line.split("fingerprint:", 1)[1].strip()
    return None


def export_suite(
    cache_dir: str | Path, names: list[str] | None = None
) -> list[Path]:
    """Write (or refresh) `.mtx` files for the whole suite.

    Returns the written paths; used to hand the stand-ins to an external
    solver implementation.
    """
    from repro.workloads.suite import suite_names

    out = []
    for name in names if names is not None else suite_names():
        cached_load(name, cache_dir)
        out.append(cache_path(cache_dir, name))
    return out
