"""Real factor workloads: L factors of actual PDE/circuit matrices.

The suite's profiled generators control level structure *directly*;
this module produces the genuine article instead — lower-triangular
factors with true fill-in, computed by the package's own sparse LU on
classic operators:

* :func:`poisson2d_factor` — L of the 5-point 2-D Poisson matrix (the
  structured-grid application of the paper's intro);
* :func:`anisotropic_factor` — L of an anisotropic diffusion operator
  (longer one-directional chains);
* :func:`circuit_factor` — L of a grid-conductance network with random
  taps (the powersim family's physical origin).

Factor sizes are laptop-bounded (the Gilbert-Peierls LU is pure Python),
but the *structure* is exactly what MA48 hands the paper's solver:
fill-in, supernodes, index/level correlation from elimination order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix
from repro.sparse.lu import sparse_lu

__all__ = [
    "poisson2d_matrix",
    "poisson2d_factor",
    "anisotropic_factor",
    "circuit_factor",
]


def poisson2d_matrix(
    nx: int, ny: int, kx: float = 1.0, ky: float = 1.0
) -> CooMatrix:
    """The (unfactored) 5-point 2-D diffusion operator itself.

    Exposed so reordering studies can permute the operator *before*
    factorising (the order in which elimination happens is the whole
    game — see :func:`repro.analysis.reorder.red_black_ordering`).
    """
    if nx < 1 or ny < 1:
        raise WorkloadError("grid must be at least 1x1")
    return _poisson2d(nx, ny, kx, ky)


def _poisson2d(nx: int, ny: int, kx: float, ky: float) -> CooMatrix:
    n = nx * ny
    vid = np.arange(n).reshape(ny, nx)
    rows, cols, vals = [], [], []

    def add(a, b, v):
        rows.append(a)
        cols.append(b)
        vals.append(v)

    for r in range(ny):
        for c in range(nx):
            v = vid[r, c]
            add(v, v, 2.0 * (kx + ky))
            if c > 0:
                add(v, vid[r, c - 1], -kx)
            if c + 1 < nx:
                add(v, vid[r, c + 1], -kx)
            if r > 0:
                add(v, vid[r - 1, c], -ky)
            if r + 1 < ny:
                add(v, vid[r + 1, c], -ky)
    return CooMatrix(np.asarray(rows), np.asarray(cols), np.asarray(vals), (n, n))


def poisson2d_factor(nx: int = 24, ny: int = 24) -> CscMatrix:
    """Unit-lower L of the 2-D Poisson 5-point stencil (natural order).

    Natural-order elimination fills the band up to the grid width; the
    result carries the real supernodal band structure FEM-style inputs
    exhibit.
    """
    if nx < 2 or ny < 2:
        raise WorkloadError("grid must be at least 2x2")
    a = _poisson2d(nx, ny, 1.0, 1.0)
    return sparse_lu(a, pivot_threshold=0.1).lower


def anisotropic_factor(
    nx: int = 24, ny: int = 24, anisotropy: float = 20.0
) -> CscMatrix:
    """L of an anisotropic diffusion operator (strong y-coupling)."""
    if anisotropy <= 0:
        raise WorkloadError("anisotropy must be positive")
    a = _poisson2d(nx, ny, 1.0, anisotropy)
    return sparse_lu(a, pivot_threshold=0.1).lower


def circuit_factor(n_side: int = 20, seed: int = 0) -> CscMatrix:
    """L of a grid-conductance network with random branch conductances.

    The physical origin of the suite's ``powersim`` family: power-grid
    analysis factorises the conductance matrix once and back-solves per
    time step.
    """
    if n_side < 2:
        raise WorkloadError("network must be at least 2x2")
    rng = np.random.default_rng(seed)
    n = n_side * n_side
    vid = np.arange(n).reshape(n_side, n_side)
    rows, cols, vals = [], [], []

    def add_branch(a, b, g):
        rows.extend([a, b, a, b])
        cols.extend([b, a, a, b])
        vals.extend([-g, -g, g, g])

    for r in range(n_side):
        for c in range(n_side):
            if c + 1 < n_side:
                add_branch(vid[r, c], vid[r, c + 1], rng.uniform(1.0, 5.0))
            if r + 1 < n_side:
                add_branch(vid[r, c], vid[r + 1, c], rng.uniform(1.0, 5.0))
    for v in range(n):
        rows.append(v)
        cols.append(v)
        vals.append(rng.uniform(0.05, 0.2))
    a = CooMatrix(np.asarray(rows), np.asarray(cols), np.asarray(vals), (n, n))
    return sparse_lu(a, pivot_threshold=0.1).lower
