"""repro — Fast and Scalable Sparse Triangular Solver for Multi-GPU HPC.

A complete, simulation-based reproduction of Xie et al., *"Fast and
Scalable Sparse Triangular Solver for Multi-GPU Based HPC Architectures"*
(ICPP 2021): the unified-memory and NVSHMEM zero-copy SpTRSV designs, the
task-pool execution model, the DGX-1/DGX-2 machine models they run on,
and the benchmark harness that regenerates every table and figure of the
paper's evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import ZeroCopySolver, dgx1, dag_profile_matrix
>>> L = dag_profile_matrix(n=2000, n_levels=20, dependency=3.0, seed=7)
>>> b = np.ones(2000)
>>> result = ZeroCopySolver(machine=dgx1(4), tasks_per_gpu=8).solve(L, b)
>>> result.x.shape
(2000,)
>>> result.report.n_gpus
4
"""

from repro.analysis import (
    CriticalPath,
    DependencyDag,
    LevelSets,
    MatrixProfile,
    build_dag,
    compute_levels,
    critical_path,
    profile_matrix,
    scaling_class,
)
from repro.errors import ConfigurationError, ReproError
from repro.exec_model import (
    CommCosts,
    Design,
    ExecutionReport,
    build_comm_costs,
    simulate_execution,
)
from repro.machine import (
    MachineConfig,
    SymmetricHeap,
    Topology,
    UnifiedMemory,
    dgx1,
    dgx2,
    dgx1_topology,
    dgx2_topology,
)
from repro.solvers import (
    CusparseCsrsv2Solver,
    LevelSetSolver,
    NaiveShmemSolver,
    SerialSolver,
    ShmemSolver,
    SolveResult,
    SyncFreeSolver,
    TriangularSolver,
    UnifiedMemorySolver,
    ZeroCopySolver,
    serial_backward,
    serial_forward,
)
from repro.sparse import (
    CooMatrix,
    CscMatrix,
    CsrMatrix,
    LuFactors,
    ilu0,
    lower_triangle,
    read_matrix_market,
    sparse_lu,
    upper_triangle,
    write_matrix_market,
)
from repro.tasks import (
    Distribution,
    block_distribution,
    partition_components,
    round_robin_distribution,
)
from repro.workloads import (
    PAPER_STATS,
    SUITE,
    dag_profile_matrix,
    grid_graph_lower,
    random_lower,
    suite_names,
    tridiagonal_lower,
)
from repro.runtime import RunConfig, SessionResult, SolverSession
from repro.workloads import load as load_suite_matrix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    # runtime facade
    "RunConfig",
    "SolverSession",
    "SessionResult",
    # sparse
    "CooMatrix",
    "CscMatrix",
    "CsrMatrix",
    "LuFactors",
    "sparse_lu",
    "ilu0",
    "lower_triangle",
    "upper_triangle",
    "read_matrix_market",
    "write_matrix_market",
    # analysis
    "DependencyDag",
    "build_dag",
    "LevelSets",
    "compute_levels",
    "MatrixProfile",
    "profile_matrix",
    "scaling_class",
    "CriticalPath",
    "critical_path",
    # machine
    "MachineConfig",
    "Topology",
    "dgx1",
    "dgx2",
    "dgx1_topology",
    "dgx2_topology",
    "UnifiedMemory",
    "SymmetricHeap",
    # exec model
    "Design",
    "CommCosts",
    "build_comm_costs",
    "ExecutionReport",
    "simulate_execution",
    # solvers
    "TriangularSolver",
    "SolveResult",
    "SerialSolver",
    "serial_forward",
    "serial_backward",
    "LevelSetSolver",
    "CusparseCsrsv2Solver",
    "SyncFreeSolver",
    "UnifiedMemorySolver",
    "ShmemSolver",
    "NaiveShmemSolver",
    "ZeroCopySolver",
    # tasks
    "Distribution",
    "partition_components",
    "block_distribution",
    "round_robin_distribution",
    # workloads
    "dag_profile_matrix",
    "tridiagonal_lower",
    "random_lower",
    "grid_graph_lower",
    "SUITE",
    "PAPER_STATS",
    "suite_names",
    "load_suite_matrix",
]
