"""Fast-model scheduler microbenchmark: reference loop vs batched pass.

Times :func:`~repro.exec_model.timeline.simulate_execution` with the
per-component reference loop against the front-batched vectorised pass
on the Table I generator suite plus level-major scaling cases, verifying
bit-identical :class:`~repro.exec_model.timeline.ExecutionReport` fields
on every comparison.  Both the pytest bench
(``benchmarks/bench_fastmodel_speed.py``) and the standalone runner
(``tools/bench_fastmodel.py``) drive this module, so CI and local runs
produce the same ``BENCH_fastmodel.json`` payload.

Timer noise is detected per case (coefficient of variation across
repeats); a noisy run reports its numbers but is not held to the
speedup floor — identity, which is deterministic, is always enforced.
"""

from __future__ import annotations

import statistics
import time
from typing import Any

import numpy as np

from repro.exec_model.artefacts import get_artefacts
from repro.exec_model.costmodel import Design
from repro.exec_model.timeline import AUTO_WIDTH_THRESHOLD, simulate_execution
from repro.machine.node import dgx1
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import block_distribution
from repro.workloads.generators import dag_profile_matrix
from repro.workloads.suite import SUITE

__all__ = [
    "SCALING_CASES",
    "CI_SUITE_NAMES",
    "NOISE_CV",
    "SPEEDUP_FLOOR",
    "FLOOR_N",
    "measure_case",
    "run_sweep",
]

#: Level-major scaling cases (scatter=0: wide dispatch fronts, the
#: batched pass's target regime).  ``scale-100k`` is the acceptance
#: configuration: n=100k, nnz ~ 1M.
SCALING_CASES: dict[str, dict[str, Any]] = {
    "scale-50k": dict(
        n=50_000, n_levels=40, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "scale-100k": dict(
        n=100_000, n_levels=60, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
}

#: Table I subset used by the quick CI sweep.
CI_SUITE_NAMES = ("chipcool0", "dc2", "powersim", "shipsec1")

#: Coefficient of variation above which a case's timings are considered
#: timer-noisy and exempt from the speedup floor.
NOISE_CV = 0.2

#: Minimum batched-over-reference speedup enforced for level-major
#: scaling cases of at least :data:`FLOOR_N` components.
SPEEDUP_FLOOR = 3.0
FLOOR_N = 50_000


def _reports_identical(a, b) -> bool:
    for f in (
        "analysis_time", "solve_time", "local_updates", "remote_updates",
        "page_faults", "migrated_bytes", "fabric_bytes",
    ):
        if getattr(a, f) != getattr(b, f):
            return False
    for f in ("gpu_busy", "gpu_spin", "gpu_comm", "gpu_finish"):
        if not np.array_equal(getattr(a, f), getattr(b, f)):
            return False
    return True


def measure_case(
    name: str,
    low: CscMatrix,
    *,
    enforce_floor: bool = False,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    repeats: int = 3,
) -> dict[str, Any]:
    """Time both schedulers on one matrix and compare their reports.

    The artefact bundle is warmed first, so both measurements time the
    scheduling pass itself rather than the (shared, cached) structure
    analysis.
    """
    n = low.shape[0]
    machine = dgx1(n_gpus)
    dist = block_distribution(n, n_gpus)
    art = get_artefacts(low)
    _ = art.edges
    _ = art.fronts
    art.placement(dist)
    art.comm_costs(machine, design)

    def timed(scheduler: str):
        times = []
        report = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            report = simulate_execution(
                low, dist, machine, design, scheduler=scheduler
            )
            times.append(time.perf_counter() - t0)
        return report, times

    ref_report, ref_times = timed("reference")
    bat_report, bat_times = timed("batched")
    t_ref = min(ref_times)
    t_bat = min(bat_times)
    cv = (
        statistics.stdev(ref_times) / statistics.mean(ref_times)
        if repeats > 1
        else 0.0
    )
    width = art.fronts.mean_width
    return {
        "name": name,
        "n": int(n),
        "nnz": int(low.nnz),
        "n_fronts": art.fronts.n_fronts,
        "mean_front_width": round(width, 2),
        "auto_scheduler": (
            "batched" if width >= AUTO_WIDTH_THRESHOLD else "reference"
        ),
        "t_reference": t_ref,
        "t_batched": t_bat,
        "speedup": t_ref / t_bat if t_bat > 0 else float("inf"),
        "identical": _reports_identical(ref_report, bat_report),
        "cv_reference": cv,
        "noisy": cv > NOISE_CV,
        "enforce_floor": bool(enforce_floor and n >= FLOOR_N),
    }


def run_sweep(
    *,
    ci: bool = False,
    repeats: int = 3,
) -> dict[str, Any]:
    """Run the full sweep; returns the ``BENCH_fastmodel.json`` payload.

    ``pass`` is False only when a deterministic property fails: a report
    mismatch anywhere, or a *clean* (non-noisy) scaling case below the
    speedup floor.
    """
    cases = []
    suite_names = CI_SUITE_NAMES if ci else tuple(SUITE)
    for sname in suite_names:
        cases.append(
            measure_case(sname, SUITE[sname].build(), repeats=repeats)
        )
    for cname, kwargs in SCALING_CASES.items():
        cases.append(
            measure_case(
                cname,
                dag_profile_matrix(**kwargs),
                enforce_floor=True,
                repeats=repeats,
            )
        )
    all_identical = all(c["identical"] for c in cases)
    enforced = [c for c in cases if c["enforce_floor"]]
    floor_misses = [
        c["name"]
        for c in enforced
        if not c["noisy"] and c["speedup"] < SPEEDUP_FLOOR
    ]
    noisy = any(c["noisy"] for c in enforced)
    return {
        "bench": "fastmodel_scheduler",
        "ci": ci,
        "repeats": repeats,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_n": FLOOR_N,
        "noise_cv": NOISE_CV,
        "cases": cases,
        "all_identical": all_identical,
        "noisy": noisy,
        "floor_misses": floor_misses,
        "pass": all_identical and not floor_misses,
    }
