"""Command-line figure runner: ``python -m repro.bench <experiment>``.

Regenerates any table/figure without pytest:

    python -m repro.bench table1
    python -m repro.bench fig7
    python -m repro.bench fig9 --tasks 2 4 8 16 32
    python -m repro.bench fig10a --gpus 1 2 3 4
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import (
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10a,
    run_fig10b,
    run_table1,
)
from repro.bench.report import format_series_table, format_table, format_table1

EXPERIMENTS = ("table1", "fig3", "fig7", "fig8", "fig9", "fig10a", "fig10b")


def _render_fig3(gpus: tuple[int, ...]) -> str:
    results = run_fig3(gpu_counts=gpus)
    header = ["matrix"] + [f"{g}-GPU" for g in gpus]
    faults = [
        [name] + [results[name][g]["faults_norm"] for g in gpus]
        for name in results
    ]
    times = [
        [name] + [results[name][g]["time_norm"] for g in gpus]
        for name in results
    ]
    return (
        format_table("Fig. 3a - page faults (normalized)", header, faults)
        + "\n\n"
        + format_table("Fig. 3b - execution time (normalized)", header, times)
    )


def render(name: str, args: argparse.Namespace) -> str:
    """Run one experiment and return its formatted table."""
    if name == "table1":
        return format_table1(run_table1())
    if name == "fig3":
        return _render_fig3(tuple(args.gpus or (2, 4, 8)))
    if name == "fig7":
        return format_series_table(
            "Fig. 7 - speedup over 4GPU-Unified", run_fig7()
        )
    if name == "fig8":
        return format_series_table(
            "Fig. 8 - DGX-1 vs DGX-2 (normalized to DGX-1-Unified)", run_fig8()
        )
    if name == "fig9":
        tasks = tuple(args.tasks or (2, 4, 8, 16, 32, 64))
        return format_series_table(
            "Fig. 9 - performance vs tasks/GPU (normalized to 4)",
            run_fig9(task_counts=tasks),
            series=list(tasks),
        )
    if name == "fig10a":
        gpus = tuple(args.gpus or (1, 2, 3, 4))
        return format_series_table(
            "Fig. 10a - DGX-1 speedup over cusparse_csrsv2",
            run_fig10a(gpu_counts=gpus),
            series=list(gpus),
        )
    if name == "fig10b":
        gpus = tuple(args.gpus or (1, 2, 4, 8, 16))
        return format_series_table(
            "Fig. 10b - DGX-2 speedup over cusparse_csrsv2",
            run_fig10b(gpu_counts=gpus),
            series=list(gpus),
        )
    raise SystemExit(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--gpus", type=int, nargs="+", default=None,
        help="GPU counts (fig3/fig10a/fig10b)",
    )
    parser.add_argument(
        "--tasks", type=int, nargs="+", default=None,
        help="tasks-per-GPU sweep (fig9)",
    )
    parser.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the experiment's tidy rows as CSV",
    )
    parser.add_argument(
        "--svg", metavar="PATH", default=None,
        help="also render the figure as an SVG chart (single experiment only)",
    )
    args = parser.parse_args(argv)
    targets = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    if args.svg and len(targets) != 1:
        raise SystemExit("--svg requires a single experiment")
    if args.svg and targets[0] == "table1":
        raise SystemExit("table1 has no chart form; use --csv")
    for t in targets:
        print(render(t, args))
        print()
    if args.csv:
        _write_csv(args.csv, targets, args)
    if args.svg:
        if len(targets) != 1:
            raise SystemExit("--svg requires a single experiment")
        _write_svg(args.svg, targets[0], args)
    return 0


def _write_svg(path: str, target: str, args: argparse.Namespace) -> None:
    """Render one experiment as an SVG chart."""
    from repro.bench.svgplot import grouped_bar_svg, line_chart_svg

    if target == "table1":
        raise SystemExit("table1 has no chart form; use --csv")
    if target == "fig3":
        gpus = tuple(args.gpus or (2, 4, 8))
        results = run_fig3(gpu_counts=gpus)
        flat = {
            name: {f"{g}-GPU": per[g]["time_norm"] for g in gpus}
            for name, per in results.items()
        }
        svg = grouped_bar_svg(
            flat, "Fig. 3b — unified-memory time, normalized to 2-GPU"
        )
    elif target == "fig7":
        svg = grouped_bar_svg(
            run_fig7(),
            "Fig. 7 — speedup over 4GPU-Unified",
            series=["unified+task", "shmem", "zerocopy"],
        )
    elif target == "fig8":
        svg = grouped_bar_svg(
            run_fig8(),
            "Fig. 8 — DGX-1 vs DGX-2, normalized to DGX-1-Unified",
            series=["dgx1-zerocopy", "dgx2-unified", "dgx2-zerocopy"],
        )
    elif target == "fig9":
        tasks = tuple(args.tasks or (2, 4, 8, 16, 32, 64))
        svg = grouped_bar_svg(
            run_fig9(task_counts=tasks),
            "Fig. 9 — performance vs tasks/GPU (normalized to 4)",
            series=list(tasks),
        )
    elif target in ("fig10a", "fig10b"):
        gpus = tuple(
            args.gpus or ((1, 2, 3, 4) if target == "fig10a" else (1, 2, 4, 8, 16))
        )
        runner = run_fig10a if target == "fig10a" else run_fig10b
        svg = line_chart_svg(
            runner(gpu_counts=gpus),
            f"Fig. {target[3:]} — speedup over cusparse_csrsv2",
            x_values=list(gpus),
            x_label="GPUs",
        )
    else:  # pragma: no cover - argparse already constrains choices
        raise SystemExit(f"no SVG renderer for {target!r}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(svg)
    print(f"wrote {path}")


def _write_csv(path: str, targets, args: argparse.Namespace) -> None:
    """Re-run the targets through the raw drivers and dump tidy CSV."""
    from repro.bench.export import series_to_rows, to_csv

    rows: list[dict] = []
    for t in targets:
        if t == "table1":
            recs = [dict(r, experiment="table1") for r in run_table1()]
            rows.extend(recs)
            continue
        driver = {
            "fig3": lambda: run_fig3(gpu_counts=tuple(args.gpus or (2, 4, 8))),
            "fig7": run_fig7,
            "fig8": run_fig8,
            "fig9": lambda: run_fig9(
                task_counts=tuple(args.tasks or (2, 4, 8, 16, 32, 64))
            ),
            "fig10a": lambda: run_fig10a(
                gpu_counts=tuple(args.gpus or (1, 2, 3, 4))
            ),
            "fig10b": lambda: run_fig10b(
                gpu_counts=tuple(args.gpus or (1, 2, 4, 8, 16))
            ),
        }[t]
        for rec in series_to_rows(driver()):
            rec["experiment"] = t
            rows.append(rec)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_csv(rows))
    print(f"wrote {len(rows)} rows to {path}")


if __name__ == "__main__":
    sys.exit(main())
