"""Machine-readable experiment export (CSV / JSON).

The text tables in :mod:`repro.bench.report` are for humans; downstream
analysis (plotting the figures, regression dashboards) wants structured
data.  These helpers flatten every experiment driver's native result
shape into tidy rows and serialise them.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping

__all__ = ["series_to_rows", "to_csv", "to_json"]


def series_to_rows(
    data: Mapping[str, Mapping],
    value_name: str = "value",
) -> list[dict]:
    """Flatten ``{matrix: {series: value}}`` into tidy records.

    Each record is ``{"matrix": ..., "series": ..., value_name: ...}`` —
    the long format every plotting library consumes directly.
    """
    rows: list[dict] = []
    for matrix, per_series in data.items():
        for series, value in per_series.items():
            if isinstance(value, Mapping):
                # Nested shape (e.g. fig3: {gpus: {metric: v}}).
                for metric, v in value.items():
                    rows.append(
                        {
                            "matrix": matrix,
                            "series": str(series),
                            "metric": str(metric),
                            value_name: float(v),
                        }
                    )
            else:
                rows.append(
                    {
                        "matrix": matrix,
                        "series": str(series),
                        value_name: float(value),
                    }
                )
    return rows


def to_csv(rows: list[dict]) -> str:
    """Serialise tidy records as CSV (columns from the union of keys)."""
    if not rows:
        return ""
    fields: list[str] = []
    for r in rows:
        for k in r:
            if k not in fields:
                fields.append(k)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def to_json(rows: list[dict]) -> str:
    """Serialise tidy records as pretty JSON."""
    return json.dumps(rows, indent=2, sort_keys=True)
