"""DES engine sweep: reference generators vs array and vector fast paths.

Times :func:`~repro.solvers.des_solver.des_execute` with the reference
engine (one generator per process, one heap entry per event) against
the array engine (:mod:`repro.solvers.des_array`) and the vector engine
(:mod:`repro.solvers.des_vector`) on level-major workloads, verifying
bit-identical traces, solutions, and counters on every case before any
timing is trusted.  The partitioned parallel playout
(:mod:`repro.solvers.des_partition`) is measured per case in the parent
process — it wants the machine to itself — and its observables are
checked against the sequential engines' digest.

The sweep fans cases out across cores with a
:class:`~concurrent.futures.ProcessPoolExecutor`; the parent process
pays each case's structure analysis once and ships it to the worker via
:func:`~repro.exec_model.artefacts.spill_artefacts`, so no worker ever
re-derives a DAG (``analysis_shared`` in the payload asserts this).

Noise handling follows :mod:`repro.bench.fastmodel`: every engine's
timing takes one untimed warmup iteration and then the best of
``repeats`` timed runs, and a case whose reference timings still show a
high coefficient of variation reports its numbers but is exempt from
the speedup floors — bit-identity, which is deterministic, is always
enforced.  The ``scale-50k`` case additionally records the PR
acceptance measurement (>= 5x on the n=50k level-major workload).

Large cases (``n >= SKIP_REFERENCE_N``) skip the reference engine
entirely: replaying tens of millions of events through generators (and
holding their trace records) is what this sweep exists to avoid.  For
those cases bit-equality is checked between the array and vector
engines at the counter level (solution bits, simulated clock, event and
trace counters, traces disabled); record-stream equality is covered by
the smaller cases and the test batteries.

Honest numbers: the epoch-compiled vector engine widened the mean
batch from ~80 to ~350 events per epoch (recorded per case under
``epoch_stats``), but the simulated-time event density caps epochs
there regardless of ``n``, so per-epoch numpy dispatch still dominates
and the 3x-over-array target is missed — the measured ratio is
recorded per case as ``vector_over_array`` and against the target
under ``vector_target``.  ``VECTOR_FLOOR`` is the ratcheted
measured-reality regression floor, not the aspiration.  The same
honesty applies to the partitioned playout (``partition_target``) and
the scale-1M throughput row (``throughput_target``).
"""

from __future__ import annotations

import hashlib
import os
import statistics
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from repro.exec_model.artefacts import load_artefacts, spill_artefacts
from repro.exec_model.costmodel import Design
from repro.engine.protocol import design_hooks
from repro.machine.node import dgx1
from repro.solvers.des_partition import run_partitioned_spill
from repro.solvers.des_solver import des_execute
from repro.tasks.schedule import block_distribution
from repro.workloads.generators import dag_profile_matrix

__all__ = [
    "DES_CASES",
    "QUICK_CASES",
    "SCALE_OUT_CASES",
    "QUICK_SCALE_OUT",
    "NOISE_CV",
    "SPEEDUP_FLOOR",
    "VECTOR_FLOOR",
    "VECTOR_TARGET",
    "PARTITION_TARGET",
    "THROUGHPUT_TARGET",
    "MEDIUM_N",
    "LARGE_CASE_N",
    "ACCEPTANCE_FLOOR",
    "ACCEPTANCE_CASE",
    "SKIP_REFERENCE_N",
    "SWEEP_ENGINES",
    "COUNTER_KINDS",
    "measure_des_case",
    "measure_partitioned_case",
    "measure_scaleout_case",
    "run_des_sweep",
]

#: Level-major workloads (wide fronts, scatter=0): the regime both DES
#: engines spend the bulk of their events in.  ``scale-50k`` is the PR
#: acceptance configuration (same generator settings as the fast-model
#: bench's case of the same name); ``scale-200k`` / ``scale-500k`` are
#: the large rows the array/vector engines unlock (reference engine
#: skipped — see :data:`SKIP_REFERENCE_N`).
DES_CASES: dict[str, dict[str, Any]] = {
    "des-2k": dict(
        n=2_000, n_levels=25, dependency=6.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "des-medium-8k": dict(
        n=8_000, n_levels=30, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "scale-50k": dict(
        n=50_000, n_levels=40, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "scale-200k": dict(
        n=200_000, n_levels=50, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "scale-1M": dict(
        n=1_000_000, n_levels=60, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
}

#: Cases at or above this size are timed with a single repeat (plus the
#: untimed warmup/verification run): one scale-1M playout is tens of
#: seconds, and the counter verification — not timer variance — is what
#: the row exists for.
LARGE_CASE_N = 500_000

#: Subset run by ``tools/sweep.py --quick`` (the CI perf-smoke job):
#: everything but the expensive acceptance/scale cases.
QUICK_CASES = ("des-2k", "des-medium-8k")

#: Coefficient of variation above which a case's timings are considered
#: timer-noisy and exempt from the speedup floors.
NOISE_CV = 0.2

#: Minimum array-over-reference speedup enforced for clean cases of at
#: least :data:`MEDIUM_N` components (the CI floor).
SPEEDUP_FLOOR = 3.0
MEDIUM_N = 8_000

#: Noise-aware vector-over-array floor for clean medium-and-up cases.
#: Measured reality with the epoch compiler is ~0.5-0.6x (epochs hold
#: ~350 events regardless of ``n``, so per-epoch numpy dispatch still
#: dominates), so this gates against *regression* of the epoch path —
#: ratcheted from the pre-epoch 0.3 — while the 3x aspiration is
#: recorded honestly via ``vector_over_array`` and the
#: ``vector_target`` payload block.
VECTOR_FLOOR = 0.4

#: The aspiration the ISSUE set for the epoch-compiled vector engine
#: at scale-50k; recorded (met or not) in the payload's
#: ``vector_target``.
VECTOR_TARGET = 3.0
VECTOR_TARGET_CASE = "scale-50k"

#: Partitioned-playout target: beat the sequential array engine with
#: >= 2 workers at n >= 100k.  Recorded (met or not) under
#: ``partition_target``.
PARTITION_TARGET = 1.0
PARTITION_TARGET_CASE = "scale-200k"

#: Aggregate throughput target for the scale-1M row (ROADMAP item 2's
#: 10M events/s); recorded (met or not) under ``throughput_target``
#: with the best measured engine rate on that row.
THROUGHPUT_TARGET = 10_000_000.0
THROUGHPUT_TARGET_CASE = "scale-1M"

#: The acceptance case must beat this when its timings are clean.
ACCEPTANCE_FLOOR = 5.0
ACCEPTANCE_CASE = "scale-50k"

#: At and above this size the reference engine is skipped (generator
#: playout and record-level tracing are impractical) and engine
#: equality is checked array-vs-vector at the counter level.
SKIP_REFERENCE_N = 100_000

#: Fast engines the sweep can measure against the baseline.
SWEEP_ENGINES = ("array", "vector")

#: Trace kinds compared between engines (and against the partitioned
#: playout) when record streams are unavailable.
COUNTER_KINDS = ("dispatch", "solve", "release", "xfer_begin", "xfer_end")

#: Worker processes for the partitioned playout measurement.
PARTITION_WORKERS = 2

#: Multi-node scale-out rows (the paper's strong-scaling regime pushed
#: past a single NVSwitch island).  Each row simulates a cluster of
#: NVSwitch nodes joined by an IB tier and compares the flat taskpool
#: round-robin of Section V against the hierarchical (node-aware)
#: placement on the *same* workload, machine, and design — the
#: simulated makespan and the inter-node edge-tier split are the
#: figures of merit, so no wall-clock timing is involved.  The
#: ``geometric`` profile with high locality is the adversarial family:
#: dense short-range dependencies that flat round-robin deals across
#: the slow tier on nearly every task boundary.  Each shape is measured
#: under two designs because they expose the tier very differently:
#: ``shmem_naive`` serialises a full Get-Update-Put round trip per
#: remote dependant (per-pair latency on the critical path — flat
#: placement pays IB on most of them), while ``shmem_readonly`` buries
#: per-pair latency under the local-accumulate + warp-concurrent gather
#: and is largely insulated from placement; there the hierarchical win
#: is fabric traffic over the slow tier, not makespan.
SCALE_OUT_CASES: dict[str, dict[str, Any]] = {
    "cluster-8x8": dict(
        workload=dict(
            n=4_000, n_levels=40, dependency=6.0, profile="geometric",
            locality=0.9, order_mix=0.3, scatter=0.0, seed=0,
        ),
        n_nodes=8, gpus_per_node=8, tasks_per_gpu=4, node_run=32,
        design="shmem_readonly", tri_engine=True,
    ),
    "cluster-8x8-naive": dict(
        workload=dict(
            n=4_000, n_levels=40, dependency=6.0, profile="geometric",
            locality=0.9, order_mix=0.3, scatter=0.0, seed=0,
        ),
        n_nodes=8, gpus_per_node=8, tasks_per_gpu=4, node_run=32,
        design="shmem_naive",
    ),
    "cluster-16x8": dict(
        workload=dict(
            n=16_000, n_levels=48, dependency=7.0, profile="geometric",
            locality=0.9, order_mix=0.3, scatter=0.0, seed=0,
        ),
        n_nodes=16, gpus_per_node=8, tasks_per_gpu=4, node_run=32,
        design="shmem_readonly",
    ),
    "cluster-16x8-naive": dict(
        workload=dict(
            n=16_000, n_levels=48, dependency=7.0, profile="geometric",
            locality=0.9, order_mix=0.3, scatter=0.0, seed=0,
        ),
        n_nodes=16, gpus_per_node=8, tasks_per_gpu=4, node_run=32,
        design="shmem_naive",
    ),
    "cluster-16x16": dict(
        workload=dict(
            n=32_000, n_levels=56, dependency=7.0, profile="geometric",
            locality=0.9, order_mix=0.3, scatter=0.0, seed=0,
        ),
        n_nodes=16, gpus_per_node=16, tasks_per_gpu=4, node_run=32,
        design="shmem_readonly",
    ),
    "cluster-16x16-naive": dict(
        workload=dict(
            n=32_000, n_levels=56, dependency=7.0, profile="geometric",
            locality=0.9, order_mix=0.3, scatter=0.0, seed=0,
        ),
        n_nodes=16, gpus_per_node=16, tasks_per_gpu=4, node_run=32,
        design="shmem_naive",
    ),
}

#: Scale-out subset run by ``tools/sweep.py --quick``: the 64-GPU smoke
#: rows (counter-verified in quick mode; the full sweep upgrades the
#: read-only row to record-level tri-engine verification).
QUICK_SCALE_OUT = ("cluster-8x8", "cluster-8x8-naive")


def _executions_identical(ref, arr) -> bool:
    """Bit-equality of two :class:`DesExecution` results.

    Record-by-record trace equality (kind, time, gpu, detail), exact
    solution bits, and identical counters — the contract the array
    engine is held to everywhere.
    """
    if (
        ref.total_time != arr.total_time
        or ref.events != arr.events
        or ref.page_faults != arr.page_faults
        or ref.x.tobytes() != arr.x.tobytes()
    ):
        return False
    if len(ref.trace.records) != len(arr.trace.records):
        return False
    return all(r == a for r, a in zip(ref.trace.records, arr.trace.records))


def _counters_identical(ea, eb) -> bool:
    """Counter-level bit-equality (traces disabled): solution bits,
    simulated clock, event count, and every bulk trace counter."""
    return (
        ea.total_time == eb.total_time
        and ea.events == eb.events
        and ea.page_faults == eb.page_faults
        and ea.x.tobytes() == eb.x.tobytes()
        and all(
            ea.trace.count(k) == eb.trace.count(k) for k in COUNTER_KINDS
        )
    )


def measure_des_case(
    name: str,
    spill_path: str,
    *,
    enforce_floor: bool = False,
    acceptance: bool = False,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    repeats: int = 3,
    engines: tuple[str, ...] = SWEEP_ENGINES,
) -> dict[str, Any]:
    """Verify and time the engines on one spilled workload.

    Runs in a worker process: the artefact bundle is *loaded* from the
    parent's spill, never rebuilt — ``analysis_shared`` reports whether
    that held (the loaded bundle's DAG build count must stay 0).

    The bit-equality checks run once with traces enabled (record
    streams); the timed runs take one untimed warmup and then
    ``repeats`` trace-disabled repeats, keeping the best.  Cases at or
    above :data:`SKIP_REFERENCE_N` skip the reference engine and check
    array-vs-vector equality at the counter level instead.
    """
    engines = tuple(engines)
    lower, art = load_artefacts(spill_path)
    n = lower.shape[0]
    machine = dgx1(n_gpus)
    dist = block_distribution(n, n_gpus)
    costs = art.comm_costs(machine, design)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    common = dict(dag=art.dag, costs=costs)

    def run(engine: str, trace: bool):
        return des_execute(
            lower, b, dist, machine, design,
            engine=engine, trace_enabled=trace, **common,
        )

    skip_reference = n >= SKIP_REFERENCE_N
    identical = identical_vector = True
    if skip_reference:
        base = run("array", False)
        if "vector" in engines:
            vec = run("vector", False)
            identical_vector = _counters_identical(base, vec)
        verified = "counters"
    else:
        base = run("reference", True)
        arr = run("array", True)
        identical = _executions_identical(base, arr)
        if "vector" in engines:
            vec = run("vector", True)
            identical_vector = _executions_identical(base, vec)
        verified = "trace"
    events = int(base.events)

    def timed(engine: str) -> list[float]:
        run(engine, False)  # warmup: first call pays allocator/cache setup
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            run(engine, False)
            times.append(time.perf_counter() - t0)
        return times

    def cv(times: list[float]) -> float:
        if len(times) < 2:
            return 0.0
        return statistics.stdev(times) / statistics.mean(times)

    ref_times = None if skip_reference else timed("reference")
    arr_times = timed("array")
    vec_times = timed("vector") if "vector" in engines else None
    epoch_stats = None
    if "vector" in engines:
        # Statistics of this process's most recent epoch playout (the
        # last timed vector run); None when the run delegated to the
        # scalar engines (e.g. unified designs).
        from repro.engine.epoch import last_run_stats

        st = last_run_stats()
        if st is not None:
            epoch_stats = {
                k: st[k]
                for k in (
                    "epochs", "scalar_windows", "mean_events_per_epoch",
                    "max_epoch_events", "overwide_clamps",
                    "link_fallbacks", "pool_fallbacks", "lookahead",
                )
            }
    t_ref = min(ref_times) if ref_times else None
    t_arr = min(arr_times)
    t_vec = min(vec_times) if vec_times else None
    cv_ref = cv(ref_times) if ref_times else 0.0
    cv_arr = cv(arr_times)
    noisy = max(cv_ref, cv_arr) > NOISE_CV
    # Digest of the sequential observables, for the parent's partitioned
    # playout verification (bitwise via sha256 of the solution bytes).
    digest = {
        "x_sha256": hashlib.sha256(base.x.tobytes()).hexdigest(),
        "total_time": base.total_time,
        "events": events,
        "counters": {k: base.trace.count(k) for k in COUNTER_KINDS},
    }
    return {
        "name": name,
        "n": int(n),
        "nnz": int(lower.nnz),
        "events": events,
        "t_reference": t_ref,
        "t_array": t_arr,
        "t_vector": t_vec,
        "speedup": (
            t_ref / t_arr if t_ref is not None and t_arr > 0 else None
        ),
        "vector_over_array": (
            t_arr / t_vec if t_vec is not None and t_vec > 0 else None
        ),
        "events_per_sec_array": events / t_arr if t_arr > 0 else 0.0,
        "events_per_sec_vector": (
            events / t_vec if t_vec is not None and t_vec > 0 else None
        ),
        # Named alias for the throughput metric CI tracks: the vector
        # engine *is* the epoch-compiled path on clean runs.
        "events_per_sec_epoch": (
            events / t_vec if t_vec is not None and t_vec > 0 else None
        ),
        "identical": identical,
        "identical_vector": identical_vector,
        "verified": verified,
        "cv_reference": cv_ref,
        "cv_array": cv_arr,
        "noisy": noisy,
        "enforce_floor": bool(
            enforce_floor and n >= MEDIUM_N and not skip_reference
        ),
        "enforce_vector_floor": bool(
            enforce_floor and n >= MEDIUM_N and t_vec is not None
        ),
        "acceptance": bool(acceptance),
        "analysis_shared": art.build_counts.get("dag", 0) == 0,
        "epoch_stats": epoch_stats,
        "digest": digest,
    }


def measure_partitioned_case(
    case: dict[str, Any],
    spill_path: str,
    *,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    repeats: int = 3,
    n_workers: int = PARTITION_WORKERS,
) -> dict[str, Any]:
    """Measure the partitioned playout for one already-measured case.

    Runs in the parent after the pool has drained (the partitioned
    playout spawns its own workers and should own the machine while
    timed).  The first run doubles as warmup and verification: its
    observables are compared bitwise against the sequential digest
    recorded by :func:`measure_des_case`.  Unified designs have no
    partitioned path (global page-table state) and report ``None``.
    """
    if design_hooks(design).page_table or n_gpus < 2:
        return {
            "t_partitioned": None,
            "partition_identical": None,
            "partition_rounds": None,
            "partition_workers": None,
            "events_per_sec_partitioned": None,
            "partition_over_array": None,
        }
    n_workers = min(n_workers, n_gpus)
    digest = case["digest"]

    def run_once():
        return run_partitioned_spill(
            spill_path, n_gpus=n_gpus, design=design, n_workers=n_workers,
        )

    first = run_once()
    ident = (
        hashlib.sha256(first["x"].tobytes()).hexdigest()
        == digest["x_sha256"]
        and first["total_time"] == digest["total_time"]
        and first["events"] == digest["events"]
        and first["counters"] == digest["counters"]
    )
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        times.append(time.perf_counter() - t0)
    t_part = min(times)
    t_arr = case["t_array"]
    return {
        "t_partitioned": t_part,
        "partition_identical": ident,
        "partition_rounds": int(first["rounds"]),
        "partition_workers": n_workers,
        "events_per_sec_partitioned": (
            case["events"] / t_part if t_part > 0 else 0.0
        ),
        "partition_over_array": (
            t_arr / t_part if t_part > 0 and t_arr else None
        ),
    }


def _scaleout_config(
    spec: dict[str, Any], design: Design
) -> dict[str, Any]:
    """The :class:`~repro.runtime.RunConfig` mapping for one scale-out
    row — the machine shape and distribution travel to the worker as
    config, not as pickled objects.  The row's own ``design`` (the
    tier-exposure axis) wins over the sweep-wide default."""
    cfg: dict[str, Any] = {
        "topology": "cluster",
        "n_nodes": spec["n_nodes"],
        "gpus_per_node": spec["gpus_per_node"],
        "distribution": "hierarchical",
        "design": spec.get("design", design.value),
    }
    if spec.get("tasks_per_gpu") is not None:
        cfg["tasks_per_gpu"] = spec["tasks_per_gpu"]
    if spec.get("node_run") is not None:
        cfg["node_run"] = spec["node_run"]
    return cfg


def measure_scaleout_case(
    name: str,
    spill_path: str,
    config: dict[str, Any],
    *,
    tri_engine: bool = False,
) -> dict[str, Any]:
    """Simulate one multi-node row: flat taskpool vs hierarchical.

    ``config`` is a :class:`~repro.runtime.RunConfig` mapping with the
    node axis set; the worker resolves the cluster machine and both
    distributions from it.  Both placements replay the same workload on
    the same fabric; the row records each placement's simulated
    makespan and its edge-tier split (how many dependency edges cross
    the IB fallback tier).  With ``tri_engine`` the row verifies all
    three engines record-identical on both placements; otherwise the
    array and vector engines are checked at the counter level.
    """
    from repro.runtime.config import RunConfig

    lower, art = load_artefacts(spill_path)
    n = lower.shape[0]
    base_cfg = RunConfig.from_mapping(config)
    machine = base_cfg.resolve_machine()
    design = base_cfg.design
    costs = art.comm_costs(machine, design)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)

    def run(dist, engine: str, trace: bool):
        return des_execute(
            lower, b, dist, machine, design,
            engine=engine, trace_enabled=trace, dag=art.dag, costs=costs,
        )

    flat_map = {k: v for k, v in config.items() if k != "node_run"}
    flat_map["distribution"] = "taskpool"
    placements = {}
    identical = True
    for dname, mapping in (
        ("taskpool", flat_map),
        ("hierarchical", dict(config)),
    ):
        cfg = RunConfig.from_mapping(mapping)
        dist = cfg.build_distribution(n, machine.n_gpus, lower=lower)
        tiers = art.edge_tiers(dist, machine)
        if tri_engine:
            ref = run(dist, "reference", True)
            arr = run(dist, "array", True)
            vec = run(dist, "vector", True)
            identical = (
                identical
                and _executions_identical(ref, arr)
                and _executions_identical(ref, vec)
            )
            base = ref
        else:
            arr = run(dist, "array", False)
            vec = run(dist, "vector", False)
            identical = identical and _counters_identical(arr, vec)
            base = arr
        placements[dname] = {
            "distribution": dname,
            "sim_time": float(base.total_time),
            "events": int(base.events),
            "n_tasks": int(dist.partition.n_tasks),
            "edges_direct": int(tiers.n_direct),
            "edges_fallback": int(tiers.n_fallback),
            "fallback_fraction": float(tiers.fallback_fraction),
        }
    flat = placements["taskpool"]
    hier = placements["hierarchical"]
    node_run = base_cfg.node_run
    if node_run is None:
        node_run = 2 * base_cfg.gpus_per_node
    return {
        "name": name,
        "n": int(n),
        "nnz": int(lower.nnz),
        "n_gpus": machine.n_gpus,
        "n_nodes": base_cfg.n_nodes,
        "gpus_per_node": base_cfg.gpus_per_node,
        "node_run": int(node_run),
        "machine_shape": list(base_cfg.machine_shape()),
        "design": design.value,
        "engines_verified": (
            ["reference", "array", "vector"]
            if tri_engine
            else ["array", "vector"]
        ),
        "verified": "trace" if tri_engine else "counters",
        "identical": identical,
        "flat": flat,
        "hierarchical": hier,
        "hier_speedup": (
            flat["sim_time"] / hier["sim_time"]
            if hier["sim_time"] > 0
            else None
        ),
        "analysis_shared": art.build_counts.get("dag", 0) == 0,
    }


def run_des_sweep(
    *,
    quick: bool = False,
    repeats: int = 3,
    jobs: int | None = None,
    cases: dict[str, dict[str, Any]] | None = None,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    engines: tuple[str, ...] = SWEEP_ENGINES,
    partitioned: bool = True,
    partition_workers: int = PARTITION_WORKERS,
    scale_out: bool = True,
) -> dict[str, Any]:
    """Run the engine sweep; returns the ``BENCH_des.json`` payload.

    ``pass`` is False only when a deterministic property fails: an
    engine mismatch anywhere (array, vector, or partitioned), a worker
    that re-derived its analysis, or a *clean* (non-noisy) case below
    its floor — ``SPEEDUP_FLOOR`` for medium-and-up cases,
    ``ACCEPTANCE_FLOOR`` for the acceptance case, ``VECTOR_FLOOR`` for
    the vector engine's regression gate.  ``cases`` overrides the case
    table (tests use tiny workloads); ``engines`` selects the fast
    engines measured (``tools/sweep.py --engines``); ``n_gpus`` /
    ``design`` select the simulated node shape and communication design
    every case is measured on (the ``tools/sweep.py --config``
    surface).

    ``scale_out`` adds the multi-node rows (:data:`SCALE_OUT_CASES`):
    64-256 simulated GPUs across an IB tier, flat taskpool vs
    hierarchical placement, engine identity enforced per row (record
    level on the tri-engine row of the full sweep, counter level on the
    quick smoke row).  A scale-out identity mismatch fails the sweep
    like any other; the hierarchical-vs-flat makespans are recorded
    honestly, not gated.  Scale-out rows only run against the built-in
    case table — a custom ``cases`` mapping skips them.
    """
    engines = tuple(engines)
    unknown = [e for e in engines if e not in SWEEP_ENGINES]
    if unknown:
        raise ValueError(
            f"unknown sweep engines {unknown}; valid: {SWEEP_ENGINES}"
        )
    table = DES_CASES if cases is None else cases
    if cases is not None:
        names = list(table)
    else:
        names = [c for c in table if not quick or c in QUICK_CASES]
    if jobs is None:
        jobs = max(1, min(len(names), (os.cpu_count() or 2) - 1))
    so_names = []
    if scale_out and cases is None:
        # A custom case table is the unit-test / ad-hoc surface; the
        # scale-out shapes are fixed rows of the real sweep only.
        so_names = [
            c for c in SCALE_OUT_CASES if not quick or c in QUICK_SCALE_OUT
        ]
    results: list[dict[str, Any]] = []
    so_results: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="des-sweep-") as tmp:
        spills = {}
        for cname in names:
            low = dag_profile_matrix(**table[cname])
            spills[cname] = str(
                spill_artefacts(low, Path(tmp) / f"{cname}.pkl")
            )
        so_spills = {}
        wl_paths: dict[tuple, str] = {}
        for cname in so_names:
            # Rows differing only in design share one spilled analysis.
            wl = SCALE_OUT_CASES[cname]["workload"]
            key = tuple(sorted(wl.items()))
            if key not in wl_paths:
                low = dag_profile_matrix(**wl)
                wl_paths[key] = str(
                    spill_artefacts(
                        low, Path(tmp) / f"so-{len(wl_paths)}.pkl"
                    )
                )
            so_spills[cname] = wl_paths[key]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                cname: pool.submit(
                    measure_des_case,
                    cname,
                    spills[cname],
                    enforce_floor=True,
                    acceptance=cname == ACCEPTANCE_CASE,
                    n_gpus=n_gpus,
                    design=design,
                    repeats=(
                        repeats
                        if table[cname].get("n", 0) < LARGE_CASE_N
                        else 1
                    ),
                    engines=engines,
                )
                for cname in names
            }
            so_futures = {
                cname: pool.submit(
                    measure_scaleout_case,
                    cname,
                    so_spills[cname],
                    _scaleout_config(SCALE_OUT_CASES[cname], design),
                    # Quick mode keeps the smoke row at counter-level
                    # verification; the full sweep runs the reference
                    # engine for record-level tri-engine identity.
                    tri_engine=bool(
                        SCALE_OUT_CASES[cname].get("tri_engine")
                        and not quick
                    ),
                )
                for cname in so_names
            }
            results = [futures[cname].result() for cname in names]
            so_results = [so_futures[cname].result() for cname in so_names]
        if partitioned:
            # After the pool: the partitioned playout times its own
            # worker processes and must not share cores with the sweep.
            for c in results:
                c.update(
                    measure_partitioned_case(
                        c,
                        spills[c["name"]],
                        n_gpus=n_gpus,
                        design=design,
                        repeats=(
                            repeats if c["n"] < LARGE_CASE_N else 1
                        ),
                        n_workers=partition_workers,
                    )
                )

    all_identical = all(
        c["identical"] and c["identical_vector"] for c in results
    )
    partition_identical = all(
        c.get("partition_identical") is not False for c in results
    )
    scaleout_identical = all(c["identical"] for c in so_results)
    analysis_shared = all(c["analysis_shared"] for c in results) and all(
        c["analysis_shared"] for c in so_results
    )
    floor_misses = [
        c["name"]
        for c in results
        if c["enforce_floor"]
        and not c["noisy"]
        and c["speedup"] is not None
        and c["speedup"]
        < (ACCEPTANCE_FLOOR if c["acceptance"] else SPEEDUP_FLOOR)
    ]
    floor_misses += [
        f"{c['name']}:vector"
        for c in results
        if c.get("enforce_vector_floor")
        and not c["noisy"]
        and c["vector_over_array"] is not None
        and c["vector_over_array"] < VECTOR_FLOOR
    ]
    noisy = any(c["noisy"] for c in results if c["enforce_floor"])
    accept_cases = [c for c in results if c["acceptance"]]
    acceptance = None
    if accept_cases:
        c = accept_cases[0]
        acceptance = {
            "case": c["name"],
            "floor": ACCEPTANCE_FLOOR,
            "speedup": c["speedup"],
            "met": (
                c["speedup"] is not None
                and c["speedup"] >= ACCEPTANCE_FLOOR
            ),
        }
    vector_target = None
    vt = [c for c in results if c["name"] == VECTOR_TARGET_CASE]
    if vt and vt[0].get("vector_over_array") is not None:
        vector_target = {
            "case": VECTOR_TARGET_CASE,
            "target": VECTOR_TARGET,
            "ratio": vt[0]["vector_over_array"],
            "met": vt[0]["vector_over_array"] >= VECTOR_TARGET,
        }
    partition_target = None
    pt = [c for c in results if c["name"] == PARTITION_TARGET_CASE]
    if pt and pt[0].get("partition_over_array") is not None:
        partition_target = {
            "case": PARTITION_TARGET_CASE,
            "target": PARTITION_TARGET,
            "ratio": pt[0]["partition_over_array"],
            "workers": pt[0]["partition_workers"],
            "met": pt[0]["partition_over_array"] > PARTITION_TARGET,
        }
    throughput_target = None
    tt = [c for c in results if c["name"] == THROUGHPUT_TARGET_CASE]
    if tt:
        rates = [
            r
            for r in (
                tt[0].get("events_per_sec_array"),
                tt[0].get("events_per_sec_vector"),
                tt[0].get("events_per_sec_partitioned"),
            )
            if r
        ]
        if rates:
            throughput_target = {
                "case": THROUGHPUT_TARGET_CASE,
                "target": THROUGHPUT_TARGET,
                "events_per_sec": max(rates),
                "met": max(rates) >= THROUGHPUT_TARGET,
            }
    for c in results:
        c.pop("digest", None)  # internal hand-off, not a payload field
    return {
        "bench": "des_engine",
        "quick": quick,
        "repeats": repeats,
        "jobs": jobs,
        "n_gpus": n_gpus,
        "design": design.value,
        "engines": list(engines),
        "speedup_floor": SPEEDUP_FLOOR,
        "vector_floor": VECTOR_FLOOR,
        "medium_n": MEDIUM_N,
        "acceptance_floor": ACCEPTANCE_FLOOR,
        "noise_cv": NOISE_CV,
        "skip_reference_n": SKIP_REFERENCE_N,
        "cases": results,
        "scale_out": so_results,
        "all_identical": all_identical,
        "partition_identical": partition_identical,
        "scaleout_identical": scaleout_identical,
        "analysis_shared": analysis_shared,
        "noisy": noisy,
        "floor_misses": floor_misses,
        "acceptance": acceptance,
        "vector_target": vector_target,
        "partition_target": partition_target,
        "throughput_target": throughput_target,
        "pass": (
            all_identical
            and partition_identical
            and scaleout_identical
            and analysis_shared
            and not floor_misses
        ),
    }
