"""DES engine sweep: reference generator engine vs array fast path.

Times :func:`~repro.solvers.des_solver.des_execute` with the reference
engine (one generator per process, one heap entry per event) against
the array engine (:mod:`repro.solvers.des_array`) on level-major
workloads, verifying bit-identical traces, solutions, and counters on
every case before any timing is trusted.

The sweep fans cases out across cores with a
:class:`~concurrent.futures.ProcessPoolExecutor`; the parent process
pays each case's structure analysis once and ships it to the worker via
:func:`~repro.exec_model.artefacts.spill_artefacts`, so no worker ever
re-derives a DAG (``analysis_shared`` in the payload asserts this).

Noise handling follows :mod:`repro.bench.fastmodel`: a case whose
reference timings have a high coefficient of variation reports its
numbers but is exempt from the speedup floor — bit-identity, which is
deterministic, is always enforced.  The ``scale-50k`` case additionally
records the PR acceptance measurement (>= 5x on the n=50k level-major
workload).
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from repro.exec_model.artefacts import load_artefacts, spill_artefacts
from repro.exec_model.costmodel import Design
from repro.machine.node import dgx1
from repro.solvers.des_solver import des_execute
from repro.tasks.schedule import block_distribution
from repro.workloads.generators import dag_profile_matrix

__all__ = [
    "DES_CASES",
    "QUICK_CASES",
    "NOISE_CV",
    "SPEEDUP_FLOOR",
    "MEDIUM_N",
    "ACCEPTANCE_FLOOR",
    "ACCEPTANCE_CASE",
    "measure_des_case",
    "run_des_sweep",
]

#: Level-major workloads (wide fronts, scatter=0): the regime both DES
#: engines spend the bulk of their events in.  ``scale-50k`` is the PR
#: acceptance configuration (same generator settings as the fast-model
#: bench's case of the same name).
DES_CASES: dict[str, dict[str, Any]] = {
    "des-2k": dict(
        n=2_000, n_levels=25, dependency=6.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "des-medium-8k": dict(
        n=8_000, n_levels=30, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
    "scale-50k": dict(
        n=50_000, n_levels=40, dependency=9.0, profile="uniform",
        locality=0.5, order_mix=0.3, scatter=0.0, seed=0,
    ),
}

#: Subset run by ``tools/sweep.py --quick`` (the CI perf-smoke job):
#: everything but the expensive acceptance case.
QUICK_CASES = ("des-2k", "des-medium-8k")

#: Coefficient of variation above which a case's timings are considered
#: timer-noisy and exempt from the speedup floors.
NOISE_CV = 0.2

#: Minimum array-over-reference speedup enforced for clean cases of at
#: least :data:`MEDIUM_N` components (the CI floor).
SPEEDUP_FLOOR = 3.0
MEDIUM_N = 8_000

#: The acceptance case must beat this when its timings are clean.
ACCEPTANCE_FLOOR = 5.0
ACCEPTANCE_CASE = "scale-50k"


def _executions_identical(ref, arr) -> bool:
    """Bit-equality of two :class:`DesExecution` results.

    Record-by-record trace equality (kind, time, gpu, detail), exact
    solution bits, and identical counters — the contract the array
    engine is held to everywhere.
    """
    if (
        ref.total_time != arr.total_time
        or ref.events != arr.events
        or ref.page_faults != arr.page_faults
        or ref.x.tobytes() != arr.x.tobytes()
    ):
        return False
    if len(ref.trace.records) != len(arr.trace.records):
        return False
    return all(r == a for r, a in zip(ref.trace.records, arr.trace.records))


def measure_des_case(
    name: str,
    spill_path: str,
    *,
    enforce_floor: bool = False,
    acceptance: bool = False,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
    repeats: int = 3,
) -> dict[str, Any]:
    """Verify and time both engines on one spilled workload.

    Runs in a worker process: the artefact bundle is *loaded* from the
    parent's spill, never rebuilt — ``analysis_shared`` reports whether
    that held (the loaded bundle's DAG build count must stay 0).

    The bit-equality check runs once with traces enabled; the timed
    repeats run with traces disabled so both engines are measured on
    the playout itself.
    """
    lower, art = load_artefacts(spill_path)
    n = lower.shape[0]
    machine = dgx1(n_gpus)
    dist = block_distribution(n, n_gpus)
    costs = art.comm_costs(machine, design)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    common = dict(dag=art.dag, costs=costs)

    ref = des_execute(
        lower, b, dist, machine, design,
        engine="reference", trace_enabled=True, **common,
    )
    arr = des_execute(
        lower, b, dist, machine, design,
        engine="array", trace_enabled=True, **common,
    )
    identical = _executions_identical(ref, arr)

    def timed(engine: str) -> list[float]:
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            des_execute(
                lower, b, dist, machine, design,
                engine=engine, trace_enabled=False, **common,
            )
            times.append(time.perf_counter() - t0)
        return times

    ref_times = timed("reference")
    arr_times = timed("array")
    t_ref = min(ref_times)
    t_arr = min(arr_times)
    cv = (
        statistics.stdev(ref_times) / statistics.mean(ref_times)
        if repeats > 1
        else 0.0
    )
    return {
        "name": name,
        "n": int(n),
        "nnz": int(lower.nnz),
        "events": int(ref.events),
        "t_reference": t_ref,
        "t_array": t_arr,
        "speedup": t_ref / t_arr if t_arr > 0 else float("inf"),
        "events_per_sec_array": ref.events / t_arr if t_arr > 0 else 0.0,
        "identical": identical,
        "cv_reference": cv,
        "noisy": cv > NOISE_CV,
        "enforce_floor": bool(enforce_floor and n >= MEDIUM_N),
        "acceptance": bool(acceptance),
        "analysis_shared": art.build_counts.get("dag", 0) == 0,
    }


def run_des_sweep(
    *,
    quick: bool = False,
    repeats: int = 3,
    jobs: int | None = None,
    cases: dict[str, dict[str, Any]] | None = None,
    n_gpus: int = 4,
    design: Design = Design.SHMEM_READONLY,
) -> dict[str, Any]:
    """Run the engine sweep; returns the ``BENCH_des.json`` payload.

    ``pass`` is False only when a deterministic property fails: an
    engine mismatch anywhere, a worker that re-derived its analysis, or
    a *clean* (non-noisy) case below its floor — ``SPEEDUP_FLOOR`` for
    medium-and-up cases, ``ACCEPTANCE_FLOOR`` for the acceptance case.
    ``cases`` overrides the case table (tests use tiny workloads);
    ``n_gpus`` / ``design`` select the simulated node shape and
    communication design every case is measured on (the
    ``tools/sweep.py --config`` surface).
    """
    table = DES_CASES if cases is None else cases
    if cases is not None:
        names = list(table)
    else:
        names = [c for c in table if not quick or c in QUICK_CASES]
    if jobs is None:
        jobs = max(1, min(len(names), (os.cpu_count() or 2) - 1))
    results: list[dict[str, Any]] = []
    with tempfile.TemporaryDirectory(prefix="des-sweep-") as tmp:
        spills = {}
        for cname in names:
            low = dag_profile_matrix(**table[cname])
            spills[cname] = str(
                spill_artefacts(low, Path(tmp) / f"{cname}.pkl")
            )
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                cname: pool.submit(
                    measure_des_case,
                    cname,
                    spills[cname],
                    enforce_floor=True,
                    acceptance=cname == ACCEPTANCE_CASE,
                    n_gpus=n_gpus,
                    design=design,
                    repeats=repeats,
                )
                for cname in names
            }
            results = [futures[cname].result() for cname in names]

    all_identical = all(c["identical"] for c in results)
    analysis_shared = all(c["analysis_shared"] for c in results)
    floor_misses = [
        c["name"]
        for c in results
        if c["enforce_floor"]
        and not c["noisy"]
        and c["speedup"]
        < (ACCEPTANCE_FLOOR if c["acceptance"] else SPEEDUP_FLOOR)
    ]
    noisy = any(c["noisy"] for c in results if c["enforce_floor"])
    accept_cases = [c for c in results if c["acceptance"]]
    acceptance = None
    if accept_cases:
        c = accept_cases[0]
        acceptance = {
            "case": c["name"],
            "floor": ACCEPTANCE_FLOOR,
            "speedup": c["speedup"],
            "met": c["speedup"] >= ACCEPTANCE_FLOOR,
        }
    return {
        "bench": "des_engine",
        "quick": quick,
        "repeats": repeats,
        "jobs": jobs,
        "n_gpus": n_gpus,
        "design": design.value,
        "speedup_floor": SPEEDUP_FLOOR,
        "medium_n": MEDIUM_N,
        "acceptance_floor": ACCEPTANCE_FLOOR,
        "noise_cv": NOISE_CV,
        "cases": results,
        "all_identical": all_identical,
        "analysis_shared": analysis_shared,
        "noisy": noisy,
        "floor_misses": floor_misses,
        "acceptance": acceptance,
        "pass": all_identical and analysis_shared and not floor_misses,
    }
