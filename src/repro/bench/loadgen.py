"""Closed-loop load generator for the solve service.

Drives a :class:`~repro.serve.service.SolveService` with ``concurrency``
closed-loop clients (each sends, awaits, classifies, repeats — so the
in-flight count is the client count until the request budget drains)
and reports the service-level objectives this PR is accountable for:

* **latency** — p50/p99 over successfully served requests;
* **goodput** — served responses (exact or certified-degraded) per
  wall-clock second;
* **outcome census** — every request ends in exactly one bucket:
  ``ok``, ``degraded``, or a typed-error class.  Nothing hangs; a hung
  request would show up as a missing census entry and fail the bench.

:func:`run_bench` runs the three-way comparison behind
``BENCH_serve.json``: a clean baseline, then the same loud solve-level
fault plan served twice — once with degradation consent and once
hard-fail — asserting the degradation ladder buys strictly more goodput
than failing fast does under identical faults.

Timer noise is handled the same way as the fast-model bench: the p99
ceiling on the clean case is only *enforced* when the run looks clean
(latency coefficient-of-variation under ``NOISE_CV``); a noisy run
downgrades the check to a warning flag in the payload.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.errors import ReproError
from repro.resilience.faults import FaultKind, FaultPlan
from repro.resilience.recovery import RecoveryPolicy
from repro.runtime.config import RunConfig
from repro.serve.request import SolveRequest
from repro.serve.service import SolveService

__all__ = ["run_case", "run_bench", "DEADLOCK_CONFIG"]

#: Latency cv above which the p99 ceiling is reported but not enforced.
NOISE_CV = 1.0

#: Clean-case p99 ceiling (seconds) for the perf-smoke gate.
P99_CEILING = 10.0


def DEADLOCK_CONFIG(**overrides) -> RunConfig:
    """A config whose every solve deterministically deadlocks.

    ``MSG_DROP`` at rate 1.0 with retry disabled starves dependants
    loudly (the chaos suite's canonical structural failure); the
    simulated-time watchdog bounds detection.
    """
    base = dict(
        plan=FaultPlan.single(FaultKind.MSG_DROP, seed=5, rate=1.0),
        recovery=RecoveryPolicy(retry=False),
        engine="vector",
        watchdog_stall_horizon=10.0,
    )
    base.update(overrides)
    return RunConfig(**base)


async def _drive(
    service: SolveService,
    *,
    workload: dict,
    config: RunConfig,
    requests: int,
    concurrency: int,
    allow_degraded: bool,
    deadline: float,
) -> dict:
    """Run one closed-loop case against an already-started service."""
    counter = {"next": 0, "inflight": 0, "max_inflight": 0}
    latencies: list[float] = []
    outcomes: dict[str, int] = {}
    lock = asyncio.Lock()

    async def client(cid: int) -> None:
        while True:
            async with lock:
                i = counter["next"]
                if i >= requests:
                    return
                counter["next"] += 1
            request = SolveRequest(
                config=config,
                workload=workload,
                rhs={"seed": i},
                deadline=deadline,
                allow_degraded=allow_degraded,
                request_id=f"c{cid}-r{i}",
            )
            counter["inflight"] += 1
            counter["max_inflight"] = max(
                counter["max_inflight"], counter["inflight"]
            )
            t0 = time.monotonic()
            try:
                result = await service.submit(request)
            except ReproError as err:
                key = type(err).__name__
                outcomes[key] = outcomes.get(key, 0) + 1
            else:
                latencies.append(time.monotonic() - t0)
                outcomes[result.status] = outcomes.get(result.status, 0) + 1
            finally:
                counter["inflight"] -= 1

    t_start = time.monotonic()
    await asyncio.gather(*(client(c) for c in range(concurrency)))
    wall = time.monotonic() - t_start

    served = outcomes.get("ok", 0) + outcomes.get("degraded", 0)
    lat = np.asarray(latencies, dtype=np.float64)
    accounted = sum(outcomes.values())
    return {
        "requests": requests,
        "accounted": accounted,
        "complete": accounted == requests,
        "concurrency": concurrency,
        "max_inflight": counter["max_inflight"],
        "wall_time": wall,
        "served": served,
        "goodput": served / wall if wall > 0 else 0.0,
        "p50_latency": float(np.percentile(lat, 50)) if len(lat) else None,
        "p99_latency": float(np.percentile(lat, 99)) if len(lat) else None,
        "latency_cv": (
            float(lat.std() / lat.mean())
            if len(lat) > 1 and lat.mean() > 0
            else 0.0
        ),
        "outcomes": dict(sorted(outcomes.items())),
    }


def run_case(
    *,
    workload: dict,
    config: RunConfig | None = None,
    requests: int = 32,
    concurrency: int = 16,
    allow_degraded: bool = True,
    deadline: float = 30.0,
    service_kwargs: dict | None = None,
) -> dict:
    """One closed-loop case on a fresh service (sync entry point)."""

    async def _run() -> dict:
        async with SolveService(**(service_kwargs or {})) as service:
            case = await _drive(
                service,
                workload=workload,
                config=config or RunConfig(),
                requests=requests,
                concurrency=concurrency,
                allow_degraded=allow_degraded,
                deadline=deadline,
            )
            case["service"] = service.snapshot()
            return case

    return asyncio.run(_run())


def run_bench(
    *,
    n: int = 48,
    requests: int = 120,
    concurrency: int = 110,
    deadline: float = 60.0,
    queue_depth: int = 256,
) -> dict:
    """The BENCH_serve three-way: clean vs degraded vs hard-fail.

    The clean case sizes its concurrency to the acceptance target
    (>= 100 concurrent in-flight solves); both faulted cases run the
    same deterministic-deadlock plan so the goodput comparison isolates
    exactly one variable — degradation consent.
    """
    workload = {"generator": "forest", "n": n, "seed": 3}
    service_kwargs = {"queue_depth": queue_depth, "breaker_threshold": 3}

    clean = run_case(
        workload=workload,
        requests=requests,
        concurrency=concurrency,
        deadline=deadline,
        service_kwargs=service_kwargs,
    )
    faulted = DEADLOCK_CONFIG()
    # Fewer requests for the faulted cases: each pre-breaker request
    # walks the full ladder, which is the expensive part by design.
    f_requests = max(8, requests // 4)
    f_concurrency = max(4, concurrency // 4)
    degraded = run_case(
        workload=workload,
        config=faulted,
        requests=f_requests,
        concurrency=f_concurrency,
        allow_degraded=True,
        deadline=deadline,
        service_kwargs=service_kwargs,
    )
    hardfail = run_case(
        workload=workload,
        config=faulted,
        requests=f_requests,
        concurrency=f_concurrency,
        allow_degraded=False,
        deadline=deadline,
        service_kwargs=service_kwargs,
    )

    noisy = clean["latency_cv"] > NOISE_CV
    p99_ok = (
        clean["p99_latency"] is not None
        and clean["p99_latency"] <= P99_CEILING
    )
    return {
        "cases": {
            "clean": clean,
            "faulted_degraded": degraded,
            "faulted_hardfail": hardfail,
        },
        "inflight_target": 100,
        "inflight_ok": clean["max_inflight"] >= min(100, concurrency),
        "degraded_goodput": degraded["goodput"],
        "hardfail_goodput": hardfail["goodput"],
        "goodput_ordered": degraded["goodput"] > hardfail["goodput"],
        "all_accounted": all(
            c["complete"] for c in (clean, degraded, hardfail)
        ),
        "p99_ceiling": P99_CEILING,
        "p99_ok": p99_ok,
        "noisy": noisy,
    }
