"""Shared benchmark harness: cached matrix contexts + scenario runners.

Benches regenerate the paper's figures by sweeping (matrix, machine,
design, distribution) combinations.  The expensive per-matrix artefacts —
the dependency DAG and level sets — are computed once per matrix and
cached in a :class:`MatrixContext`; the per-scenario cost is then a single
fast-model pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.analysis.dag import DependencyDag, build_dag
from repro.analysis.levels import LevelSets, compute_levels
from repro.analysis.metrics import MatrixProfile, profile_matrix
from repro.exec_model.costmodel import Design, build_comm_costs
from repro.exec_model.timeline import ExecutionReport, simulate_execution
from repro.machine.node import MachineConfig, dgx1, dgx2
from repro.solvers.levelset import level_schedule_time
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import (
    Distribution,
    block_distribution,
    round_robin_distribution,
)
from repro.workloads import suite as suite_mod

__all__ = [
    "MatrixContext",
    "context",
    "run_design",
    "run_cusparse",
    "geomean",
]


@dataclass(frozen=True)
class MatrixContext:
    """Cached per-matrix artefacts shared across scenarios."""

    name: str
    lower: CscMatrix
    dag: DependencyDag
    levels: LevelSets
    profile: MatrixProfile


@lru_cache(maxsize=64)
def context(name: str) -> MatrixContext:
    """Build (memoised) the context of a suite matrix."""
    lower = suite_mod.load(name)
    dag = build_dag(lower)
    levels = compute_levels(dag)
    prof = profile_matrix(lower, name, levels)
    return MatrixContext(
        name=name, lower=lower, dag=dag, levels=levels, profile=prof
    )


def run_design(
    ctx: MatrixContext,
    machine: MachineConfig,
    design: Design | str,
    tasks_per_gpu: int | None = None,
    **cost_kwargs,
) -> ExecutionReport:
    """Price one design point on one matrix.

    ``tasks_per_gpu=None`` selects block distribution (the baseline);
    an integer enables the round-robin task model.  ``cost_kwargs`` are
    forwarded to :func:`~repro.exec_model.costmodel.build_comm_costs`
    (ablation knobs).
    """
    n = ctx.lower.shape[0]
    if tasks_per_gpu is None:
        dist: Distribution = block_distribution(n, machine.n_gpus)
    else:
        dist = round_robin_distribution(n, machine.n_gpus, tasks_per_gpu)
    costs = build_comm_costs(machine, Design(design), **cost_kwargs)
    return simulate_execution(
        ctx.lower, dist, machine, Design(design), dag=ctx.dag, costs=costs
    )


def run_cusparse(
    ctx: MatrixContext,
    machine: MachineConfig | None = None,
    analysis_factor: float = 6.0,
) -> ExecutionReport:
    """Price the cuSPARSE csrsv2 single-GPU baseline on one matrix."""
    if machine is None:
        machine = dgx1(1)
    return level_schedule_time(
        ctx.lower,
        ctx.levels,
        machine,
        analysis_factor=analysis_factor,
        design="cusparse_csrsv2",
    )


def geomean(values) -> float:
    """Geometric mean (the conventional average for speedup ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        return float("nan")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
