"""Textual execution visualisations: utilisation bars and solve timelines.

Console-friendly renderings of what a simulated run did with its GPUs —
the tooling a performance engineer reaches for before trusting a
speedup:

* :func:`utilisation_bars` — per-GPU busy/comm/spin breakdown of an
  :class:`~repro.exec_model.timeline.ExecutionReport` as proportional
  ASCII bars;
* :func:`solve_timeline` — per-GPU activity histogram over simulated
  time from a DES :class:`~repro.engine.trace.Trace` (which components
  solved when, and where the pipeline drained).
"""

from __future__ import annotations

import numpy as np

from repro.engine.trace import Trace
from repro.exec_model.timeline import ExecutionReport

__all__ = ["utilisation_bars", "solve_timeline"]

_BUSY, _COMM, _SPIN, _IDLE = "#", "+", ".", " "


def utilisation_bars(report: ExecutionReport, width: int = 50) -> str:
    """Render per-GPU busy(#)/comm(+)/spin(.) shares as fixed-width bars.

    Each GPU's bar is scaled by its occupied time relative to the busiest
    GPU, so imbalance is visible as bar length and composition at once.
    """
    occupied = report.gpu_busy + report.gpu_comm + report.gpu_spin
    scale = occupied.max()
    lines = [
        f"GPU utilisation — {report.design} on {report.machine} "
        f"({report.n_gpus} GPUs, {report.n_tasks} tasks)",
        f"legend: {_BUSY} solve  {_COMM} communication  {_SPIN} lock-wait",
    ]
    for g in range(report.n_gpus):
        if scale <= 0:
            bar = _IDLE * width
        else:
            total_chars = int(round(width * occupied[g] / scale))
            shares = np.array(
                [report.gpu_busy[g], report.gpu_comm[g], report.gpu_spin[g]]
            )
            if shares.sum() > 0:
                chars = np.floor(
                    shares / shares.sum() * total_chars
                ).astype(int)
                # Distribute rounding remainder to the largest shares.
                rem = total_chars - chars.sum()
                for idx in np.argsort(-shares)[: max(rem, 0)]:
                    chars[idx] += 1
            else:
                chars = np.zeros(3, dtype=int)
            bar = (
                _BUSY * chars[0] + _COMM * chars[1] + _SPIN * chars[2]
            ).ljust(width, _IDLE)
        lines.append(
            f"  gpu{g}: |{bar}| "
            f"busy={report.gpu_busy[g] * 1e6:8.1f}us "
            f"spin={report.gpu_spin[g] * 1e6:8.1f}us"
        )
    return "\n".join(lines)


def solve_timeline(
    trace: Trace, n_gpus: int, bins: int = 60
) -> str:
    """Histogram of solve events per GPU over simulated time.

    Each row is a GPU; column density shows how many components that GPU
    solved in the corresponding time bin (0-9, ``*`` for 10+).  The
    unidirectional-waiting staircase of block distribution is immediately
    visible as late-starting rows.
    """
    solves = [(r.time, r.gpu) for r in trace.of_kind("solve")]
    if not solves:
        return "(no solve events)"
    t_end = max(t for t, _ in solves)
    t_end = t_end if t_end > 0 else 1.0
    counts = np.zeros((n_gpus, bins), dtype=np.int64)
    for t, g in solves:
        b = min(int(t / t_end * bins), bins - 1)
        if 0 <= g < n_gpus:
            counts[g, b] += 1
    lines = [f"solve activity over time (0..{t_end * 1e6:.1f}us, {bins} bins)"]
    for g in range(n_gpus):
        row = "".join(
            " " if c == 0 else (str(c) if c < 10 else "*") for c in counts[g]
        )
        lines.append(f"  gpu{g}: |{row}|")
    return "\n".join(lines)
