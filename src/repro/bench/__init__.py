"""Benchmark harness: experiment drivers for every table/figure + reporting."""

from repro.bench.experiments import (
    FIG3_NAMES,
    FIG10_NAMES,
    run_fig3,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10a,
    run_fig10b,
    run_table1,
)
from repro.bench.dessweep import (
    measure_des_case,
    measure_partitioned_case,
    run_des_sweep,
)
from repro.bench.fastmodel import measure_case, run_sweep
from repro.bench.loadgen import run_bench, run_case
from repro.bench.harness import (
    MatrixContext,
    context,
    geomean,
    run_cusparse,
    run_design,
)
from repro.bench.report import format_series_table, format_table, format_table1
from repro.bench.stats import SpeedupStats, replicate, replicated_speedups
from repro.bench.timeline_report import solve_timeline, utilisation_bars

__all__ = [
    "FIG3_NAMES",
    "FIG10_NAMES",
    "run_table1",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10a",
    "run_fig10b",
    "MatrixContext",
    "context",
    "run_design",
    "run_cusparse",
    "geomean",
    "format_table",
    "format_series_table",
    "format_table1",
    "utilisation_bars",
    "solve_timeline",
    "SpeedupStats",
    "replicate",
    "replicated_speedups",
    "measure_case",
    "run_sweep",
    "measure_des_case",
    "measure_partitioned_case",
    "run_des_sweep",
    "run_case",
    "run_bench",
]
