"""Formatting helpers: render experiment results as the paper's tables.

Benches print through these so the console output reads like the paper's
figures — one row per matrix, one column per series, with the
geometric-mean "average" row the paper quotes in its prose.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series_table", "format_table1"]


def format_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence],
    col_width: int = 14,
    name_width: int = 18,
) -> str:
    """Generic fixed-width table with a title rule."""
    lines = [title, "=" * max(len(title), 8)]
    head = f"{header[0]:<{name_width}s}" + "".join(
        f"{h:>{col_width}s}" for h in header[1:]
    )
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        cells = [f"{str(row[0]):<{name_width}s}"]
        for v in row[1:]:
            if isinstance(v, float):
                cells.append(f"{v:>{col_width}.3f}")
            else:
                cells.append(f"{str(v):>{col_width}s}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_series_table(
    title: str,
    data: Mapping[str, Mapping],
    series: Sequence | None = None,
    average_last: bool = True,
) -> str:
    """Render ``{matrix: {series_key: value}}`` results.

    ``series`` fixes the column order (defaults to the first row's keys);
    the ``"average"`` row is moved to the bottom.
    """
    names = [n for n in data if n != "average"]
    if series is None:
        series = list(next(iter(data.values())).keys())
    header = ["matrix"] + [str(s) for s in series]
    rows = [[n] + [float(data[n][s]) for s in series] for n in names]
    if average_last and "average" in data:
        rows.append(["average"] + [float(data["average"][s]) for s in series])
    return format_table(title, header, rows)


def format_table1(rows: Sequence[Mapping]) -> str:
    """Render the Table I comparison (stand-in vs paper)."""
    header = [
        "matrix",
        "rows",
        "nnz",
        "levels",
        "parallel.",
        "dep.",
        "paper-lvl",
        "paper-par",
    ]
    body = [
        [
            r["name"],
            r["n_rows"],
            r["nnz"],
            r["n_levels"],
            round(r["parallelism"], 1),
            round(r["dependency"], 2),
            r["paper_n_levels"],
            round(r["paper_parallelism"], 0),
        ]
        for r in rows
    ]
    return format_table(
        "Table I - test matrices (stand-in vs paper)", header, body, col_width=11
    )
