"""Seed-replicated statistics for the benches.

The paper runs every benchmark 100 times and reports the average
(Section VI-A).  The simulation is deterministic, so repeating a run is
pointless — the meaningful replication axis is the *matrix instance*:
each Table-I stand-in is one draw from a generator family, and the
recipe's seed can be shifted to draw structural siblings with the same
(#levels, dependency, profile) parameters.

:func:`replicate` builds seed-shifted siblings of a suite entry;
:func:`replicated_speedups` runs a metric over the siblings and returns
mean / spread, so any figure can be quoted with an instance-variability
bar instead of a single draw.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.dag import build_dag
from repro.exec_model.costmodel import Design
from repro.exec_model.timeline import simulate_execution
from repro.machine.node import MachineConfig, dgx1
from repro.sparse.csc import CscMatrix
from repro.tasks.schedule import block_distribution, round_robin_distribution
from repro.workloads.suite import SuiteEntry, entry

__all__ = ["replicate", "SpeedupStats", "replicated_speedups"]


def replicate(name_or_entry: str | SuiteEntry, n_replicas: int) -> list[CscMatrix]:
    """Build ``n_replicas`` structural siblings of a suite matrix.

    Sibling ``k`` uses the recipe with ``seed + 1000 * (k + 1)``; the
    original seed is *not* included, so statistics over replicas are
    independent of the headline runs.
    """
    e = entry(name_or_entry) if isinstance(name_or_entry, str) else name_or_entry
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    return [
        replace(e, seed=e.seed + 1000 * (k + 1)).build()
        for k in range(n_replicas)
    ]


@dataclass(frozen=True)
class SpeedupStats:
    """Mean and spread of a speedup metric over matrix replicas."""

    name: str
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def min(self) -> float:
        return float(self.values.min())

    @property
    def max(self) -> float:
        return float(self.values.max())

    @property
    def rel_spread(self) -> float:
        """(max - min) / mean — how much the instance draw matters."""
        return (self.max - self.min) / self.mean if self.mean else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.mean:.2f} ± {self.std:.2f} "
            f"[{self.min:.2f}, {self.max:.2f}] over {len(self.values)} replicas"
        )


def replicated_speedups(
    name: str,
    n_replicas: int = 5,
    n_gpus: int = 4,
    tasks_per_gpu: int = 8,
) -> dict[str, SpeedupStats]:
    """Fig. 7's three speedups over seed-replicated instances of one matrix.

    Returns stats for ``"shmem"``, ``"zerocopy"`` (both over unified) and
    ``"task_gain"`` (zerocopy over shmem-block).
    """
    m_um = dgx1(n_gpus, require_p2p=False)
    m_sh = dgx1(n_gpus)
    shmem, zero, gain = [], [], []
    for lower in replicate(name, n_replicas):
        dag = build_dag(lower)
        n = lower.shape[0]
        block = block_distribution(n, n_gpus)
        rr = round_robin_distribution(n, n_gpus, tasks_per_gpu)
        t_u = simulate_execution(lower, block, m_um, Design.UNIFIED, dag=dag).total_time
        t_s = simulate_execution(
            lower, block, m_sh, Design.SHMEM_READONLY, dag=dag
        ).total_time
        t_z = simulate_execution(
            lower, rr, m_sh, Design.SHMEM_READONLY, dag=dag
        ).total_time
        shmem.append(t_u / t_s)
        zero.append(t_u / t_z)
        gain.append(t_s / t_z)
    return {
        "shmem": SpeedupStats(f"{name}/shmem", np.asarray(shmem)),
        "zerocopy": SpeedupStats(f"{name}/zerocopy", np.asarray(zero)),
        "task_gain": SpeedupStats(f"{name}/task_gain", np.asarray(gain)),
    }
