"""Golden-number regression guard for the calibrated model.

The machine constants were calibrated once against Fig. 7's aggregates
and then frozen (docs/calibration.md).  Any code change that silently
moves those aggregates — a cost-model tweak, a generator change, an
"innocent" refactor of the scheduler — would invalidate EXPERIMENTS.md
without failing a single correctness test.  This module pins the key
aggregates to golden values with explicit tolerances:

* ``capture()`` measures the current aggregates;
* ``compare(measured, golden)`` returns the violations;
* ``tests/test_regression_golden.py`` fails when the model drifts, with
  instructions to re-bless (regenerate the JSON) if the change is
  intentional.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bench.experiments import run_fig7, run_fig9, run_fig10a
from repro.bench.harness import geomean

__all__ = ["GOLDEN_PATH", "capture", "compare", "load_golden"]

GOLDEN_PATH = Path(__file__).parent / "golden.json"

#: Relative tolerance per aggregate: wide enough for numerical noise and
#: platform variation, tight enough to catch real model drift.
TOLERANCE = 0.10


def capture() -> dict[str, float]:
    """Measure the pinned aggregates on the current code."""
    fig7 = run_fig7()
    names = [n for n in fig7 if n != "average"]
    fig9 = run_fig9(task_counts=(4, 16))
    fig10 = run_fig10a(gpu_counts=(2, 4))
    return {
        "fig7.unified_task.geomean": fig7["average"]["unified+task"],
        "fig7.shmem.geomean": fig7["average"]["shmem"],
        "fig7.zerocopy.geomean": fig7["average"]["zerocopy"],
        "fig7.zerocopy.max": float(
            max(fig7[n]["zerocopy"] for n in names)
        ),
        "fig9.gain_at_16_tasks": float(
            np.mean([fig9[n][16] for n in fig9 if n != "average"])
        ),
        "fig10a.scaling_4_over_2": fig10["average"][4] / fig10["average"][2],
    }


def load_golden(path: Path = GOLDEN_PATH) -> dict[str, float]:
    """Read the blessed aggregates."""
    return json.loads(path.read_text())


@dataclass(frozen=True)
class Violation:
    key: str
    golden: float
    measured: float

    @property
    def drift(self) -> float:
        return abs(self.measured - self.golden) / abs(self.golden)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.key}: golden {self.golden:.3f}, measured "
            f"{self.measured:.3f} ({self.drift:+.1%})"
        )


def compare(
    measured: dict[str, float],
    golden: dict[str, float],
    tolerance: float = TOLERANCE,
) -> list[Violation]:
    """Return every aggregate drifting beyond ``tolerance``."""
    out = []
    for key, gold in golden.items():
        if key not in measured:
            out.append(Violation(key=key, golden=gold, measured=float("nan")))
            continue
        v = Violation(key=key, golden=gold, measured=measured[key])
        if not np.isfinite(v.measured) or v.drift > tolerance:
            out.append(v)
    return out


def bless(path: Path = GOLDEN_PATH) -> dict[str, float]:
    """Re-capture and persist the golden aggregates (intentional change)."""
    values = capture()
    path.write_text(json.dumps(values, indent=2, sort_keys=True) + "\n")
    return values


if __name__ == "__main__":  # pragma: no cover - maintenance entry point
    print(json.dumps(bless(), indent=2, sort_keys=True))
