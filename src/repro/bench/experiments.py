"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation (Section VI).
Each returns plain data structures (dicts of floats keyed by matrix name)
that the report module formats and the ``benchmarks/`` targets print; the
figure semantics — what is normalized to what — follow the paper exactly:

* Fig. 3: unified-memory page faults and execution time for 2/4/8 GPUs,
  normalized to the 2-GPU run.
* Fig. 7: total time of the four design scenarios on 4-GPU DGX-1,
  normalized to ``4GPU-Unified`` (higher = faster).
* Fig. 8: DGX-1 vs DGX-2 (4 GPUs, 8 tasks/GPU), normalized to
  DGX-1-Unified.
* Fig. 9: zero-copy with varying tasks/GPU, normalized to 4 tasks/GPU.
* Fig. 10: strong scaling of zero-copy, normalized to single-GPU
  cuSPARSE ``csrsv2``; total tasks fixed at 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec_model.costmodel import Design
from repro.machine.node import MachineConfig, dgx1, dgx2
from repro.workloads.suite import IN_MEMORY_NAMES, SUITE, suite_names

from repro.bench.harness import context, geomean, run_cusparse, run_design

__all__ = [
    "FIG3_NAMES",
    "FIG10_NAMES",
    "run_table1",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10a",
    "run_fig10b",
]

#: The four representative matrices profiled in Fig. 3.
FIG3_NAMES: tuple[str, ...] = ("belgium_osm", "dc2", "nlpkkt160", "roadNet-CA")

#: The five matrices highlighted in the Fig. 10 scalability study.
FIG10_NAMES: tuple[str, ...] = (
    "chipcool0",
    "dc2",
    "nlpkkt160",
    "powersim",
    "Wordnet3",
)


def run_table1(include_out_of_memory: bool = True) -> list[dict]:
    """Table I: structural statistics of every suite matrix.

    Returns one dict per matrix with both the stand-in's measured stats
    and the paper's original numbers.
    """
    from repro.workloads.suite import PAPER_STATS

    rows = []
    for name in suite_names(include_out_of_memory):
        prof = context(name).profile
        paper = PAPER_STATS[name]
        rows.append(
            {
                "name": name,
                "n_rows": prof.n_rows,
                "nnz": prof.nnz,
                "n_levels": prof.n_levels,
                "parallelism": prof.parallelism,
                "dependency": prof.dependency,
                "paper_n_rows": paper.n_rows,
                "paper_nnz": paper.nnz,
                "paper_n_levels": paper.n_levels,
                "paper_parallelism": paper.parallelism,
            }
        )
    return rows


def run_fig3(
    gpu_counts: tuple[int, ...] = (2, 4, 8),
    names: tuple[str, ...] = FIG3_NAMES,
) -> dict[str, dict[int, dict[str, float]]]:
    """Fig. 3: unified-memory page-fault and time growth with GPU count.

    Returns ``{matrix: {n_gpus: {"faults": f, "time": t,
    "faults_norm": fn, "time_norm": tn}}}`` with ``*_norm`` normalized to
    the smallest GPU count.
    """
    out: dict[str, dict[int, dict[str, float]]] = {}
    base = gpu_counts[0]
    for name in names:
        ctx = context(name)
        per_gpu: dict[int, dict[str, float]] = {}
        for g in gpu_counts:
            machine = dgx1(g, require_p2p=False)
            rep = run_design(ctx, machine, Design.UNIFIED)
            per_gpu[g] = {
                "faults": rep.page_faults,
                "time": rep.total_time,
            }
        for g in gpu_counts:
            per_gpu[g]["faults_norm"] = (
                per_gpu[g]["faults"] / per_gpu[base]["faults"]
                if per_gpu[base]["faults"]
                else float("nan")
            )
            per_gpu[g]["time_norm"] = per_gpu[g]["time"] / per_gpu[base]["time"]
        out[name] = per_gpu
    return out


def run_fig7(
    names: tuple[str, ...] = IN_MEMORY_NAMES,
    n_gpus: int = 4,
    tasks_per_gpu: int = 8,
) -> dict[str, dict[str, float]]:
    """Fig. 7: speedup of the four design scenarios over 4GPU-Unified.

    Returns ``{matrix: {scenario: speedup}}`` plus an ``"average"`` entry
    (geometric mean across matrices) — speedup > 1 means faster than the
    unified baseline.
    """
    m_um = dgx1(n_gpus, require_p2p=False)
    m_sh = dgx1(n_gpus)
    out: dict[str, dict[str, float]] = {}
    for name in names:
        ctx = context(name)
        t_unified = run_design(ctx, m_um, Design.UNIFIED).total_time
        t_um_task = run_design(
            ctx, m_um, Design.UNIFIED, tasks_per_gpu=tasks_per_gpu
        ).total_time
        t_shmem = run_design(ctx, m_sh, Design.SHMEM_READONLY).total_time
        t_zero = run_design(
            ctx, m_sh, Design.SHMEM_READONLY, tasks_per_gpu=tasks_per_gpu
        ).total_time
        out[name] = {
            "unified": 1.0,
            "unified+task": t_unified / t_um_task,
            "shmem": t_unified / t_shmem,
            "zerocopy": t_unified / t_zero,
        }
    out["average"] = {
        k: geomean(v[k] for n, v in out.items() if n != "average")
        for k in ("unified", "unified+task", "shmem", "zerocopy")
    }
    return out


def run_fig8(
    names: tuple[str, ...] = IN_MEMORY_NAMES,
    n_gpus: int = 4,
    tasks_per_gpu: int = 8,
) -> dict[str, dict[str, float]]:
    """Fig. 8: DGX-1 vs DGX-2, normalized to DGX-1-Unified.

    Returns ``{matrix: {series: speedup}}`` for the four series
    ``dgx1-unified`` (== 1), ``dgx1-zerocopy``, ``dgx2-unified``,
    ``dgx2-zerocopy``, plus the geometric-mean ``"average"`` row.
    """
    m1_um = dgx1(n_gpus, require_p2p=False)
    m1_sh = dgx1(n_gpus)
    m2_um = dgx2(n_gpus, require_p2p=False)
    m2_sh = dgx2(n_gpus)
    out: dict[str, dict[str, float]] = {}
    for name in names:
        ctx = context(name)
        base = run_design(ctx, m1_um, Design.UNIFIED).total_time
        out[name] = {
            "dgx1-unified": 1.0,
            "dgx1-zerocopy": base
            / run_design(
                ctx, m1_sh, Design.SHMEM_READONLY, tasks_per_gpu=tasks_per_gpu
            ).total_time,
            "dgx2-unified": base / run_design(ctx, m2_um, Design.UNIFIED).total_time,
            "dgx2-zerocopy": base
            / run_design(
                ctx, m2_sh, Design.SHMEM_READONLY, tasks_per_gpu=tasks_per_gpu
            ).total_time,
        }
    keys = ("dgx1-unified", "dgx1-zerocopy", "dgx2-unified", "dgx2-zerocopy")
    out["average"] = {
        k: geomean(v[k] for n, v in out.items() if n != "average") for k in keys
    }
    return out


def run_fig9(
    names: tuple[str, ...] = IN_MEMORY_NAMES,
    n_gpus: int = 4,
    task_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    baseline_tasks: int = 4,
) -> dict[str, dict[int, float]]:
    """Fig. 9: zero-copy performance vs tasks/GPU, normalized to 4 tasks.

    Returns ``{matrix: {tasks_per_gpu: normalized_performance}}`` where
    values > 1 mean faster than the 4-task configuration; includes the
    geometric-mean ``"average"`` row.
    """
    machine = dgx1(n_gpus)
    out: dict[str, dict[int, float]] = {}
    for name in names:
        ctx = context(name)
        times = {
            k: run_design(
                ctx, machine, Design.SHMEM_READONLY, tasks_per_gpu=k
            ).total_time
            for k in task_counts
        }
        base = times[baseline_tasks]
        out[name] = {k: base / t for k, t in times.items()}
    out["average"] = {
        k: geomean(v[k] for n, v in out.items() if n != "average")
        for k in task_counts
    }
    return out


def _scaling(
    machine_for: "callable",
    gpu_counts: tuple[int, ...],
    names: tuple[str, ...],
    total_tasks: int,
) -> dict[str, dict[int, float]]:
    out: dict[str, dict[int, float]] = {}
    for name in names:
        ctx = context(name)
        t_cusparse = run_cusparse(ctx).total_time
        per: dict[int, float] = {}
        for g in gpu_counts:
            machine = machine_for(g)
            tasks_per_gpu = max(total_tasks // g, 1)
            rep = run_design(
                ctx,
                machine,
                Design.SHMEM_READONLY,
                tasks_per_gpu=tasks_per_gpu,
            )
            per[g] = t_cusparse / rep.total_time
        out[name] = per
    out["average"] = {
        g: geomean(v[g] for n, v in out.items() if n != "average")
        for g in gpu_counts
    }
    return out


def run_fig10a(
    gpu_counts: tuple[int, ...] = (1, 2, 3, 4),
    names: tuple[str, ...] = FIG10_NAMES,
    total_tasks: int = 32,
) -> dict[str, dict[int, float]]:
    """Fig. 10a: DGX-1 strong scaling of zero-copy vs cuSPARSE csrsv2.

    NVSHMEM on DGX-1 is restricted to the fully connected 4-GPU clique,
    so ``gpu_counts`` beyond 4 raise — the same wall the paper reports.
    """
    return _scaling(lambda g: dgx1(g), gpu_counts, names, total_tasks)


def run_fig10b(
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    names: tuple[str, ...] = FIG10_NAMES,
    total_tasks: int = 32,
) -> dict[str, dict[int, float]]:
    """Fig. 10b: DGX-2 strong scaling (all-to-all NVSwitch, up to 16)."""
    return _scaling(lambda g: dgx2(g), gpu_counts, names, total_tasks)
