"""Dependency-free SVG charts for the regenerated figures.

The evaluation figures are grouped bar charts (Figs. 3, 7, 8, 9) and
line charts (Fig. 10).  This module renders both as standalone SVG —
no matplotlib required — so ``python -m repro.bench fig7 --svg out.svg``
produces an actual figure file next to the text table.

Layout is deliberately simple: linear y-axis from zero, one colour per
series, legend on top, labels rotated when crowded.  The goal is a
readable artefact, not a plotting library.
"""

from __future__ import annotations

import html
from typing import Mapping, Sequence

__all__ = ["grouped_bar_svg", "line_chart_svg"]

_COLOURS = (
    "#4878a8",  # blue
    "#e0883a",  # orange
    "#6aa84f",  # green
    "#b05a7a",  # plum
    "#8a7cc2",  # violet
    "#50a0a0",  # teal
)

_W, _H = 960, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 20, 56, 96


def _esc(s: object) -> str:
    return html.escape(str(s))


def _frame(body: list[str], title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" height="{_H}" '
        f'viewBox="0 0 {_W} {_H}" font-family="Helvetica, Arial, sans-serif">'
        f'<rect width="{_W}" height="{_H}" fill="white"/>'
        f'<text x="{_W / 2}" y="20" font-size="15" text-anchor="middle" '
        f'font-weight="bold">{_esc(title)}</text>'
    )
    return head + "".join(body) + "</svg>"


def _y_axis(body: list[str], y_max: float, plot_h: float) -> None:
    ticks = 5
    for k in range(ticks + 1):
        val = y_max * k / ticks
        y = _MARGIN_T + plot_h * (1 - k / ticks)
        body.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_W - _MARGIN_R}" '
            f'y2="{y:.1f}" stroke="#dddddd" stroke-width="1"/>'
        )
        body.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4:.1f}" font-size="11" '
            f'text-anchor="end">{val:g}</text>'
        )


def _legend(body: list[str], series: Sequence[str]) -> None:
    x = _MARGIN_L
    for i, s in enumerate(series):
        colour = _COLOURS[i % len(_COLOURS)]
        body.append(
            f'<rect x="{x}" y="30" width="12" height="12" fill="{colour}"/>'
        )
        body.append(
            f'<text x="{x + 16}" y="41" font-size="12">{_esc(s)}</text>'
        )
        x += 22 + 8 * len(str(s))


def grouped_bar_svg(
    data: Mapping[str, Mapping],
    title: str,
    series: Sequence | None = None,
    drop: Sequence[str] = (),
) -> str:
    """Render ``{group: {series: value}}`` as a grouped bar chart.

    ``drop`` removes rows (e.g. the all-ones baseline column); the
    ``"average"`` group is kept last if present.
    """
    groups = [g for g in data if g not in drop and g != "average"]
    if "average" in data and "average" not in drop:
        groups.append("average")
    if series is None:
        series = list(next(iter(data.values())).keys())
    values = {
        g: [float(data[g][s]) for s in series] for g in groups
    }
    y_max = max((max(v) for v in values.values()), default=1.0) * 1.1 or 1.0

    plot_w = _W - _MARGIN_L - _MARGIN_R
    plot_h = _H - _MARGIN_T - _MARGIN_B
    body: list[str] = []
    _y_axis(body, y_max, plot_h)
    _legend(body, [str(s) for s in series])

    group_w = plot_w / max(len(groups), 1)
    bar_w = group_w * 0.8 / max(len(series), 1)
    for gi, g in enumerate(groups):
        gx = _MARGIN_L + gi * group_w + group_w * 0.1
        for si, v in enumerate(values[g]):
            h = plot_h * v / y_max
            x = gx + si * bar_w
            y = _MARGIN_T + plot_h - h
            colour = _COLOURS[si % len(_COLOURS)]
            body.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{colour}"><title>'
                f"{_esc(g)} / {_esc(series[si])}: {v:.3g}</title></rect>"
            )
        lx = gx + group_w * 0.4
        ly = _MARGIN_T + plot_h + 12
        body.append(
            f'<text x="{lx:.1f}" y="{ly}" font-size="10" text-anchor="end" '
            f'transform="rotate(-40 {lx:.1f} {ly})">{_esc(g)}</text>'
        )
    # Axis line.
    body.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{_MARGIN_T + plot_h}" stroke="black"/>'
    )
    return _frame(body, title)


def line_chart_svg(
    data: Mapping[str, Mapping],
    title: str,
    x_values: Sequence | None = None,
    x_label: str = "",
) -> str:
    """Render ``{series: {x: y}}`` as a multi-line chart with markers."""
    series_names = list(data)
    if x_values is None:
        x_values = list(next(iter(data.values())).keys())
    xs = [float(x) for x in x_values]
    y_max = (
        max(
            float(data[s][x])
            for s in series_names
            for x in x_values
        )
        * 1.1
        or 1.0
    )
    plot_w = _W - _MARGIN_L - _MARGIN_R
    plot_h = _H - _MARGIN_T - _MARGIN_B
    x_min, x_span = min(xs), max(max(xs) - min(xs), 1e-12)

    def px(x: float) -> float:
        return _MARGIN_L + plot_w * (x - x_min) / x_span

    def py(y: float) -> float:
        return _MARGIN_T + plot_h * (1 - y / y_max)

    body: list[str] = []
    _y_axis(body, y_max, plot_h)
    _legend(body, series_names)
    for si, s in enumerate(series_names):
        colour = _COLOURS[si % len(_COLOURS)]
        pts = [(px(float(x)), py(float(data[s][x]))) for x in x_values]
        path = " ".join(
            f"{'M' if k == 0 else 'L'}{x:.1f},{y:.1f}"
            for k, (x, y) in enumerate(pts)
        )
        body.append(
            f'<path d="{path}" fill="none" stroke="{colour}" stroke-width="2"/>'
        )
        for (x, y), xv in zip(pts, x_values):
            body.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{colour}">'
                f"<title>{_esc(s)} @ {_esc(xv)}: "
                f"{float(data[s][xv]):.3g}</title></circle>"
            )
    for x in x_values:
        body.append(
            f'<text x="{px(float(x)):.1f}" y="{_MARGIN_T + plot_h + 16}" '
            f'font-size="11" text-anchor="middle">{_esc(x)}</text>'
        )
    if x_label:
        body.append(
            f'<text x="{_MARGIN_L + plot_w / 2:.1f}" '
            f'y="{_MARGIN_T + plot_h + 36}" font-size="12" '
            f'text-anchor="middle">{_esc(x_label)}</text>'
        )
    body.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T}" x2="{_MARGIN_L}" '
        f'y2="{_MARGIN_T + plot_h}" stroke="black"/>'
    )
    body.append(
        f'<line x1="{_MARGIN_L}" y1="{_MARGIN_T + plot_h}" '
        f'x2="{_W - _MARGIN_R}" y2="{_MARGIN_T + plot_h}" stroke="black"/>'
    )
    return _frame(body, title)
