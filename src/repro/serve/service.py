"""The resilient solve service: queueing, retry, breakers, degradation.

:class:`SolveService` is the asyncio session server at the heart of this
package.  One instance owns a bounded request queue, a fixed set of
dispatcher tasks feeding a :class:`~repro.serve.workers.WorkerPool`, a
:class:`~repro.serve.admission.AdmissionController`, a
:class:`~repro.serve.breaker.BreakerBoard` keyed by
``(matrix fingerprint, config fingerprint)``, and a
:class:`~repro.serve.degrade.DegradationLadder`.  Every request travels
the same envelope:

1. **price** — the fast model simulates the solve once per
   ``(matrix, config)`` key; the estimate is cached (it is also the
   ``estimate`` rung's response body);
2. **admit** — the token bucket debits the priced cost or sheds with a
   typed :class:`~repro.errors.ServiceOverloadError` + ``retry_after``;
3. **gate** — an open breaker fails the key fast
   (:class:`~repro.errors.CircuitOpenError`) or, with the client's
   degradation consent, serves the cached estimate instead;
4. **queue** — the bounded queue accepts the ticket or sheds
   (``reason="queue_full"``); depth past the watermark sheds *precision*
   first (estimate-only responses) before shedding requests;
5. **execute** — a dispatcher walks the retry ladder: transient
   worker crashes get exponential backoff with jitter, structural
   failures (deadlock / exhausted recovery) feed the breaker and walk
   the degradation ladder downward;
6. **deadline** — the submitter awaits the ticket under
   ``asyncio.wait_for``; expiry cancels cooperatively (queued tickets
   are skipped, executing ones bounded by the worker-side watchdog) and
   raises :class:`~repro.errors.DeadlineExceededError` naming the stage.

Nothing in the envelope blocks the event loop; the
:class:`LoopWatchdog` (a heartbeat task paired with a monitor thread)
guards that invariant the same way the solver-level
:class:`~repro.resilience.watchdog.Watchdog` guards the playout.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    DeadlockError,
    RecoveryExhaustedError,
    ReproError,
    ServiceError,
    ServiceOverloadError,
    ServiceShutdownError,
    SimulationError,
    SolverError,
    WorkerCrashError,
)
from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerBoard
from repro.serve.degrade import DegradationLadder, DegradeMode
from repro.serve.request import (
    ServiceResult,
    SolveRequest,
    build_workload,
    matrix_fingerprint,
    workload_key,
)
from repro.serve.workers import WorkerPool

__all__ = ["SolveService", "ServiceStats", "LoopWatchdog"]

#: Failure kinds that count against a key's circuit breaker: the solve
#: is structurally broken, not transiently unlucky.
STRUCTURAL_ERRORS = (RecoveryExhaustedError, DeadlockError)


class LoopWatchdog:
    """Detect a stalled asyncio event loop from outside it.

    A heartbeat coroutine stamps a shared timestamp every ``interval``
    seconds; a daemon thread checks the stamp's age against
    ``threshold``.  A stale stamp means the loop itself is wedged (a
    dispatcher blocking on sync work, a runaway callback) — precisely
    the failure the in-loop deadline machinery cannot see, because it
    too lives on the loop.  Detections are recorded (and optionally
    reported through ``on_stall``) rather than raised: the monitor
    thread cannot safely interrupt loop code, but the chaos suite can
    assert the stall was *observed* and the service surfaced it.
    """

    def __init__(
        self,
        interval: float = 0.05,
        threshold: float = 1.0,
        on_stall=None,
    ):
        if threshold <= interval:
            raise ValueError(
                f"threshold ({threshold}) must exceed interval ({interval})"
            )
        self.interval = interval
        self.threshold = threshold
        self.on_stall = on_stall
        self.stalls = 0
        self.last_stall: dict | None = None
        self._beat = time.monotonic()
        self._task: asyncio.Task | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    async def _heartbeat(self) -> None:
        while True:
            self._beat = time.monotonic()
            await asyncio.sleep(self.interval)

    def _monitor(self) -> None:
        while not self._stop.wait(self.interval):
            age = time.monotonic() - self._beat
            if age > self.threshold:
                self.stalls += 1
                self.last_stall = {
                    "age": age,
                    "threshold": self.threshold,
                    "at": time.monotonic(),
                }
                if self.on_stall is not None:
                    self.on_stall(self.last_stall)
                # One detection per stall episode: wait for recovery.
                while (
                    not self._stop.wait(self.interval)
                    and time.monotonic() - self._beat > self.threshold
                ):
                    pass

    def start(self) -> None:
        self._beat = time.monotonic()
        self._stop.clear()
        self._task = asyncio.get_running_loop().create_task(
            self._heartbeat(), name="serve-loop-heartbeat"
        )
        self._thread = threading.Thread(
            target=self._monitor, name="serve-loop-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


@dataclass
class ServiceStats:
    """Counters for one service lifetime (the diagnostics surface)."""

    submitted: int = 0
    served: int = 0
    degraded_served: int = 0
    failed: int = 0
    shed: int = 0
    deadline_misses: int = 0
    retries: int = 0
    breaker_fast_fails: int = 0
    cancelled_in_queue: int = 0

    def to_mapping(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Ticket:
    """One queued request plus its execution state."""

    request: SolveRequest
    matrix: object
    fingerprint: str
    key: tuple
    estimate: dict
    future: asyncio.Future
    deadline_at: float
    stage: str = "queued"
    cancelled: bool = False
    attempts: int = 0
    submitted_at: float = field(default_factory=time.monotonic)

    def remaining(self, now: float) -> float:
        return self.deadline_at - now


class SolveService:
    """Async solve server with admission, backpressure, and degradation.

    Parameters
    ----------
    workers:
        ``0`` for the inline thread pool, ``>=1`` for a process pool
        (worker-kill faults then kill real processes).
    queue_depth / max_inflight:
        Bounds of the request queue and the dispatcher-task count —
        together the only buffering in the service; nothing is unbounded.
    degrade_watermark:
        Queue depth at which degradation-consenting requests are served
        estimate-only instead of queued (shed precision before
        requests).  ``None`` disables pressure-degradation.
    admission:
        An :class:`AdmissionController`; the default admits everything
        (no bucket).
    max_attempts / backoff_base / backoff_cap:
        The transient-failure retry ladder (exponential, jittered by the
        service's seeded RNG so tests replay identically).
    fault_plan:
        A :class:`~repro.resilience.service_faults.ServiceFaultPlan`
        injecting service-level faults (worker kills, dispatch stalls,
        client delays) — the chaos hook, mirroring solve-level
        ``FaultPlan``.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        queue_depth: int = 64,
        max_inflight: int = 4,
        degrade_watermark: int | None = None,
        default_deadline: float = 30.0,
        admission: AdmissionController | None = None,
        ladder: DegradationLadder | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        max_attempts: int = 3,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.5,
        fault_plan=None,
        spill_budget: int | None = None,
        watchdog_interval: float = 0.05,
        watchdog_threshold: float = 2.0,
        seed: int = 0,
    ):
        if queue_depth < 1 or max_inflight < 1:
            raise ValueError(
                f"queue_depth/max_inflight must be >= 1, got "
                f"{queue_depth}/{max_inflight}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.pool = WorkerPool(workers)
        self.queue_depth = queue_depth
        self.max_inflight = max_inflight
        self.degrade_watermark = degrade_watermark
        self.default_deadline = default_deadline
        self.admission = admission or AdmissionController()
        self.ladder = ladder or DegradationLadder()
        self.breakers = BreakerBoard(breaker_threshold, breaker_cooldown)
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.fault_plan = fault_plan
        self.spill_budget = spill_budget
        self.stats = ServiceStats()
        self.watchdog = LoopWatchdog(watchdog_interval, watchdog_threshold)
        self._rng = random.Random(seed)
        self._queue: asyncio.Queue | None = None
        self._dispatchers: list[asyncio.Task] = []
        self._injector = None
        self._spill = None
        self._running = False
        # Parent-side caches: workload spec -> matrix (so N requests for
        # the same generator share one build + one artefact bundle), and
        # (fingerprint, config fingerprint) -> fast-model estimate.
        self._workloads: dict[str, object] = {}
        self._estimates: dict[tuple, dict] = {}

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self.pool.start()
        if self.fault_plan is not None and not self.fault_plan.is_null:
            self._injector = self.fault_plan.build()
        if self.pool.mode == "process":
            from repro.exec_model.artefacts import SpillStore

            self._spill = SpillStore(byte_budget=self.spill_budget)
        self._running = True
        self.watchdog.start()
        self._dispatchers = [
            asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name=f"serve-dispatch-{i}"
            )
            for i in range(self.max_inflight)
        ]

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for task in self._dispatchers:
            task.cancel()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        self._dispatchers = []
        # Fail any still-queued tickets with a typed shutdown error.
        if self._queue is not None:
            while not self._queue.empty():
                ticket = self._queue.get_nowait()
                if not ticket.future.done():
                    ticket.future.set_exception(
                        ServiceShutdownError("service stopped")
                    )
        self.watchdog.stop()
        self.pool.stop()
        if self._spill is not None:
            self._spill.close()
            self._spill = None

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- request intake ------------------------------------------------
    def _resolve_matrix(self, request: SolveRequest):
        if request.matrix is not None:
            return request.matrix
        key = workload_key(request.workload)
        matrix = self._workloads.get(key)
        if matrix is None:
            matrix = build_workload(request.workload)
            self._workloads[key] = matrix
        return matrix

    def _estimate(self, matrix, fingerprint: str, config) -> dict:
        """Fast-model pricing, cached per (matrix, config) key."""
        key = (fingerprint, config.fingerprint())
        est = self._estimates.get(key)
        if est is None:
            from repro.runtime.session import SolverSession

            report = SolverSession(config).simulate(matrix)
            est = {
                "design": report.design,
                "n_gpus": int(report.n_gpus),
                "analysis_time": float(report.analysis_time),
                "solve_time": float(report.solve_time),
                "total_time": float(report.total_time),
            }
            self._estimates[key] = est
        return est

    def _estimate_result(
        self, ticket_or_request, estimate: dict, reason: str, attempts: int = 0
    ) -> ServiceResult:
        request = getattr(ticket_or_request, "request", ticket_or_request)
        self.stats.served += 1
        self.stats.degraded_served += 1
        return ServiceResult(
            request_id=request.request_id,
            status="degraded",
            mode=DegradeMode.ESTIMATE.value,
            estimate=dict(estimate),
            total_time=estimate["total_time"],
            attempts=attempts,
            degraded_from=reason,
        )

    async def submit(self, request: SolveRequest) -> ServiceResult:
        """Serve one request through the full robustness envelope.

        Returns a :class:`ServiceResult` or raises a typed
        :class:`~repro.errors.ReproError` — never hangs past the
        request's deadline, never buffers unboundedly.
        """
        if not self._running:
            raise ServiceShutdownError("service is not running")
        self.stats.submitted += 1
        loop = asyncio.get_running_loop()
        deadline = request.deadline or self.default_deadline

        matrix = self._resolve_matrix(request)
        fingerprint = matrix_fingerprint(matrix)
        key = (fingerprint, request.config.fingerprint())
        estimate = self._estimate(matrix, fingerprint, request.config)

        try:
            self.admission.admit(estimate["total_time"])
        except ServiceOverloadError:
            self.stats.shed += 1
            raise

        breaker = self.breakers.get(key)
        if not breaker.allow():
            if request.allow_degraded:
                return self._estimate_result(
                    request, estimate, "breaker_open"
                )
            self.stats.breaker_fast_fails += 1
            raise CircuitOpenError(
                f"circuit open for {key}: {breaker.failures} consecutive "
                f"structural failures; retry after "
                f"{breaker.retry_after:.3f}s",
                key=key,
                retry_after=breaker.retry_after,
                failures=breaker.failures,
            )

        if (
            self.degrade_watermark is not None
            and request.allow_degraded
            and self._queue.qsize() >= self.degrade_watermark
        ):
            return self._estimate_result(request, estimate, "queue_pressure")

        ticket = _Ticket(
            request=request,
            matrix=matrix,
            fingerprint=fingerprint,
            key=key,
            estimate=estimate,
            future=loop.create_future(),
            deadline_at=time.monotonic() + deadline,
        )
        try:
            self._queue.put_nowait(ticket)
        except asyncio.QueueFull:
            self.stats.shed += 1
            raise ServiceOverloadError(
                f"request queue full ({self.queue_depth} deep); "
                f"retry after backoff",
                retry_after=self.backoff_base * self.queue_depth,
                reason="queue_full",
            ) from None

        try:
            return await asyncio.wait_for(ticket.future, deadline)
        except asyncio.TimeoutError:
            ticket.cancelled = True
            self.stats.deadline_misses += 1
            raise DeadlineExceededError(
                f"request {request.request_id or '<anonymous>'} missed its "
                f"{deadline:.3f}s deadline in stage {ticket.stage!r}",
                deadline=deadline,
                stage=ticket.stage,
            ) from None

    # -- dispatch ------------------------------------------------------
    def _payload(self, ticket: _Ticket, mode: DegradeMode) -> dict:
        config = self.ladder.derive_config(ticket.request.config, mode)
        payload = {
            "mode": mode.value,
            "config": config,
            "rhs": dict(ticket.request.rhs),
            "fingerprint": ticket.fingerprint,
        }
        if self.pool.mode == "process":
            # Process workers inherit the parent's finished analysis via
            # the spill store instead of re-deriving it; the workload
            # spec rides along as the fallback source.
            payload["spill_path"] = str(
                self._spill.put(ticket.fingerprint, ticket.matrix)
            )
            if ticket.request.workload is not None:
                payload["workload"] = dict(ticket.request.workload)
        else:
            payload["matrix"] = ticket.matrix
        return payload

    def _result_from(
        self, ticket: _Ticket, mode: DegradeMode, raw: dict, degraded_from: str
    ) -> ServiceResult:
        import numpy as np

        x = np.frombuffer(raw["x_bytes"], dtype=np.float64).copy()
        ceiling = self.ladder.certified_ceiling(mode)
        if mode is DegradeMode.EXACT:
            status, certified = "ok", True
        elif mode is DegradeMode.ENGINE_FALLBACK:
            # Engines are bit-identical; the fallback sheds the epoch
            # compiler, not correctness.
            status, certified = "degraded", True
        else:
            status = "degraded"
            certified = raw["residual"] <= ceiling
        return ServiceResult(
            request_id=ticket.request.request_id,
            status=status,
            mode=mode.value,
            x=x,
            residual=raw["residual"],
            certified=certified,
            ceiling=ceiling,
            events=raw["events"],
            total_time=raw["total_time"],
            attempts=ticket.attempts,
            latency=time.monotonic() - ticket.submitted_at,
            degraded_from=degraded_from,
        )

    async def _dispatch_loop(self) -> None:
        while True:
            ticket = await self._queue.get()
            if ticket.cancelled or ticket.future.done():
                self.stats.cancelled_in_queue += 1
                continue
            ticket.stage = "executing"
            if self._injector is not None:
                stall = self._injector.dispatch_stall()
                if stall > 0:
                    # The queue-stall fault: this dispatcher sleeps (the
                    # submitter's wait_for keeps the deadline honest).
                    await asyncio.sleep(stall)
            try:
                result = await self._execute(ticket)
            except asyncio.CancelledError:
                if not ticket.future.done():
                    ticket.future.set_exception(
                        ServiceShutdownError("service stopped mid-request")
                    )
                raise
            except ReproError as err:
                self.stats.failed += 1
                if not ticket.future.done():
                    ticket.future.set_exception(err)
                continue
            except Exception as err:  # noqa: BLE001 - typed-error fence
                # The never-hang contract: an unexpected failure must
                # still resolve the ticket (as a typed error) instead of
                # killing this dispatcher and stranding the submitter.
                self.stats.failed += 1
                if not ticket.future.done():
                    ticket.future.set_exception(
                        ServiceError(
                            f"internal service error: "
                            f"{type(err).__name__}: {err}"
                        )
                    )
                continue
            if not ticket.future.done():
                ticket.future.set_result(result)

    async def _execute(self, ticket: _Ticket) -> ServiceResult:
        """Walk the retry + degradation ladders for one ticket."""
        mode = DegradeMode.EXACT
        degraded_from = ""
        breaker = self.breakers.get(ticket.key)
        transient_failures = 0
        while True:
            if ticket.cancelled:
                raise DeadlineExceededError(
                    "cancelled by submitter deadline",
                    stage="executing",
                )
            remaining = ticket.remaining(time.monotonic())
            if remaining <= 0:
                raise DeadlineExceededError(
                    "deadline expired before execution",
                    stage="executing",
                )
            ticket.attempts += 1
            try:
                if (
                    self._injector is not None
                    and self._injector.take_worker_kill()
                ):
                    if self.pool.mode != "process" or not self.pool.kill_one():
                        # Inline pools have no process to kill; model the
                        # crash directly so the retry path still runs.
                        raise WorkerCrashError("injected worker kill")
                raw = await self.pool.run(
                    self._payload(ticket, mode), timeout=remaining
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    "worker exceeded the request deadline",
                    stage="executing",
                ) from None
            except WorkerCrashError:
                transient_failures += 1
                if transient_failures >= self.max_attempts:
                    raise
                self.stats.retries += 1
                await asyncio.sleep(self._backoff(transient_failures))
                continue
            except (SimulationError, SolverError) as err:
                if isinstance(err, ConfigurationError):
                    # A malformed config is the client's bug, not a
                    # service-health signal: surface it untouched.
                    raise
                structural = isinstance(err, STRUCTURAL_ERRORS)
                if structural:
                    breaker.record_failure()
                elif mode is DegradeMode.EXACT:
                    # An unexpected engine failure at full fidelity is a
                    # defect to surface, not a degradation trigger.
                    raise
                if not ticket.request.allow_degraded:
                    raise
                next_mode = self.ladder.next_mode(mode, ticket.request.config)
                if next_mode is None:
                    raise
                if not degraded_from:
                    degraded_from = mode.value
                mode = next_mode
                if mode is DegradeMode.ESTIMATE:
                    return self._estimate_result(
                        ticket,
                        ticket.estimate,
                        degraded_from or "structural_failure",
                        attempts=ticket.attempts,
                    )
                continue
            breaker.record_success()
            if mode is DegradeMode.EXACT:
                self.stats.served += 1
            else:
                self.stats.served += 1
                self.stats.degraded_served += 1
            return self._result_from(
                ticket, mode, raw, degraded_from or ""
            )

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter, capped."""
        span = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return span * (0.5 + 0.5 * self._rng.random())

    # -- diagnostics ---------------------------------------------------
    def snapshot(self) -> dict:
        """One JSON-able view of the service's health surfaces."""
        return {
            "stats": self.stats.to_mapping(),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "breakers": {
                "|".join(k): v for k, v in self.breakers.states().items()
            },
            "admission": {
                "admitted": self.admission.admitted,
                "shed": self.admission.shed,
            },
            "pool": {
                "mode": self.pool.mode,
                "rebuilds": self.pool.rebuilds,
                "kills": self.pool.kills,
            },
            "loop_watchdog": {
                "stalls": self.watchdog.stalls,
                "last_stall": self.watchdog.last_stall,
            },
            "estimate_cache": len(self._estimates),
        }
