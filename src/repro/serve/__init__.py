"""Resilient solver-as-a-service layer over the runtime facade.

The robustness thesis of this repo — typed errors, bounded recovery,
never hang, never return silently corrupted data — extended from one
solve to a *service* of concurrent solves:

* :mod:`repro.serve.request` — the wire vocabulary
  (:class:`SolveRequest` / :class:`ServiceResult`) plus matrix
  fingerprinting for cross-tenant artefact sharing;
* :mod:`repro.serve.admission` — fast-model-priced token-bucket
  admission control;
* :mod:`repro.serve.breaker` — per-(matrix, config) circuit breakers
  over structural failures;
* :mod:`repro.serve.degrade` — the graceful-degradation ladder (exact →
  engine fallback → certified stale → estimate-only);
* :mod:`repro.serve.workers` — inline/process worker pools with
  spill-based artefact handoff and crash translation;
* :mod:`repro.serve.service` — the asyncio session server tying it all
  together (bounded queue, deadlines, retry with jittered backoff,
  event-loop watchdog);
* :mod:`repro.serve.tcp` — the newline-JSON TCP front-end with the
  slow-client defence.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.degrade import LADDER, DegradationLadder, DegradeMode
from repro.serve.request import (
    GENERATORS,
    ServiceResult,
    SolveRequest,
    build_workload,
    matrix_fingerprint,
)
from repro.serve.service import LoopWatchdog, ServiceStats, SolveService
from repro.serve.tcp import ServiceEndpoint
from repro.serve.workers import WorkerPool, solve_job

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "BreakerBoard",
    "CircuitBreaker",
    "LADDER",
    "DegradationLadder",
    "DegradeMode",
    "GENERATORS",
    "ServiceResult",
    "SolveRequest",
    "build_workload",
    "matrix_fingerprint",
    "LoopWatchdog",
    "ServiceStats",
    "SolveService",
    "ServiceEndpoint",
    "WorkerPool",
    "solve_job",
]
