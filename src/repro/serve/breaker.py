"""Per-(fingerprint, config) circuit breakers for the solve service.

A request key that keeps ending in
:class:`~repro.errors.RecoveryExhaustedError` /
:class:`~repro.errors.DeadlockError` is structurally broken for the
service's purposes — an unsolvable fault plan, a poisoned matrix, a
config that deadlocks.  Burning a worker (and a retry ladder) on every
recurrence steals capacity from healthy tenants, so each key gets the
classic three-state breaker:

* **closed** — requests flow; consecutive failures count up;
* **open** — after ``threshold`` consecutive failures, requests for the
  key fail fast with :class:`~repro.errors.CircuitOpenError` (or drop
  straight to the degradation ladder's estimate rung when the client
  allows) until ``cooldown`` elapses;
* **half-open** — one probe request is admitted after the cooldown; its
  success closes the breaker, its failure re-opens it (with the
  cooldown restarted).

The clock is injectable so the state machine is unit-testable without
sleeping.
"""

from __future__ import annotations

import time

__all__ = ["CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Three-state breaker over consecutive structural failures."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.failures = 0
        self.trips = 0
        self._opened_at: float | None = None
        self._probing = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    @property
    def retry_after(self) -> float:
        """Seconds until a half-open probe is admitted (0 when allowed)."""
        if self._opened_at is None:
            return 0.0
        remaining = self.cooldown - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def allow(self) -> bool:
        """May a request for this key proceed right now?

        Closed: always.  Open: no.  Half-open: exactly one in-flight
        probe at a time.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        """A served request closes the breaker and clears the count."""
        self.failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A structural failure; trips the breaker at ``threshold``."""
        self.failures += 1
        self._probing = False
        if self._opened_at is not None:
            # Half-open probe failed: re-open with a fresh cooldown.
            self._opened_at = self._clock()
        elif self.failures >= self.threshold:
            self._opened_at = self._clock()
            self.trips += 1


class BreakerBoard:
    """Lazy registry of one :class:`CircuitBreaker` per request key."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock=time.monotonic,
    ):
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._breakers: dict[tuple, CircuitBreaker] = {}

    def get(self, key: tuple) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.threshold, self.cooldown, clock=self._clock
            )
            self._breakers[key] = breaker
        return breaker

    def states(self) -> dict:
        """Snapshot ``{key: state}`` for diagnostics endpoints."""
        return {k: b.state for k, b in self._breakers.items()}

    def __len__(self) -> int:
        return len(self._breakers)
