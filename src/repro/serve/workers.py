"""Worker-pool execution of solve jobs, with artefact handoff.

:func:`solve_job` is the single worker entry point — a top-level
function (picklable into a process pool) that resolves the operand,
runs the requested rung of the degradation ladder through a
:class:`~repro.runtime.session.SolverSession`, and returns a plain dict
of observables.  Typed :class:`~repro.errors.ReproError` raises cross
the pool boundary intact (their ``args``-based pickling survives the
round trip).

Matrix resolution order, cheapest first:

1. the worker-process cache (one entry per matrix fingerprint — a
   worker that has served a tenant's structure before pays nothing);
2. the spilled analysis bundle
   (:func:`~repro.exec_model.artefacts.load_artefacts` — the parent
   paid the structure analysis once, workers inherit the DAG/levels/
   fronts fully built);
3. the workload generator spec (worst case: regenerate and re-analyse).

:class:`WorkerPool` wraps either an inline thread pool (tests, small
deployments; zero serialisation) or a process pool (real isolation;
worker death is survivable).  A process-pool crash —
``BrokenProcessPool`` after a SIGKILL — is translated into the typed,
transient :class:`~repro.errors.WorkerCrashError` and the pool is
rebuilt, so the service's retry loop sees one uniform failure mode.
"""

from __future__ import annotations

import asyncio
import os
import signal
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.errors import ConfigurationError, WorkerCrashError

__all__ = ["WorkerPool", "solve_job"]

#: Worker-process matrix cache: fingerprint -> (matrix, source tag).
#: Strong references on purpose — the artefact cache keys bundles by
#: matrix object identity, so holding the object keeps the analysis.
_WORKER_MATRICES: dict[str, object] = {}


def _resolve_matrix(payload: dict):
    """The operand for one job (cache -> inline -> spill -> generator)."""
    from repro.exec_model.artefacts import load_artefacts
    from repro.serve.request import build_workload

    fp = payload.get("fingerprint", "")
    cached = _WORKER_MATRICES.get(fp)
    if cached is not None:
        return cached
    lower = payload.get("matrix")
    if lower is None:
        spill_path = payload.get("spill_path")
        if spill_path and os.path.exists(spill_path):
            lower, _bundle = load_artefacts(spill_path)
        elif payload.get("workload") is not None:
            lower = build_workload(payload["workload"])
        else:
            raise ConfigurationError(
                "job payload carries neither matrix, spill path, nor "
                "workload spec",
                parameter="payload",
            )
    if fp:
        _WORKER_MATRICES[fp] = lower
    return lower


def _worker_pid() -> int:
    """Warm-up no-op; forces the executor to actually spawn a process."""
    return os.getpid()


def solve_job(payload: dict) -> dict:
    """Run one job at its assigned degradation rung; return observables.

    ``payload`` keys: ``mode`` (a :class:`~repro.serve.degrade.DegradeMode`
    value), ``config`` (the rung's derived
    :class:`~repro.runtime.config.RunConfig`), ``rhs`` mapping,
    ``fingerprint``, and one operand source (``matrix`` / ``spill_path``
    / ``workload``).
    """
    import numpy as np

    from repro.runtime.session import SolverSession

    lower = _resolve_matrix(payload)
    n = lower.shape[0]
    config = payload["config"]
    session = SolverSession(config)
    if payload["mode"] == "estimate":
        report = session.simulate(lower)
        return {
            "estimate": {
                "design": report.design,
                "n_gpus": int(report.n_gpus),
                "analysis_time": float(report.analysis_time),
                "solve_time": float(report.solve_time),
                "total_time": float(report.total_time),
            },
            "events": 0,
            "total_time": float(report.total_time),
        }
    rhs = payload["rhs"]
    if "values" in rhs:
        b = np.asarray(rhs["values"], dtype=np.float64)
    else:
        b = np.random.default_rng(int(rhs["seed"])).uniform(
            -1.0, 1.0, size=n
        )
    result = session.solve(lower, b, with_report=False)
    return {
        "x_bytes": result.x.tobytes(),
        "n": n,
        "residual": float(result.residual),
        "events": int(result.execution.events),
        "total_time": float(result.execution.total_time),
        "repaired": len(result.repaired),
    }


class WorkerPool:
    """Inline-thread or process execution of :func:`solve_job`.

    ``workers=0`` (default) runs jobs on a small thread pool in the
    service process — no serialisation, deterministic, the unit-test
    mode.  ``workers>=1`` runs a ``ProcessPoolExecutor``; jobs then ship
    spill paths / workload specs instead of matrix objects and worker
    death is a real, survivable event.
    """

    def __init__(self, workers: int = 0, *, inline_threads: int = 4):
        if workers < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {workers}", parameter="workers"
            )
        self.workers = workers
        self.inline_threads = inline_threads
        self._executor = None
        self.rebuilds = 0
        self.kills = 0

    @property
    def mode(self) -> str:
        return "process" if self.workers else "inline"

    # ------------------------------------------------------------------
    def _build(self):
        if self.workers:
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(
            max_workers=self.inline_threads,
            thread_name_prefix="repro-serve",
        )

    def start(self) -> None:
        if self._executor is None:
            self._executor = self._build()
            if self.workers:
                # Process pools spawn workers lazily on first submit;
                # warm them now so kill_one() has live targets and the
                # first tenant doesn't pay the fork latency.
                from concurrent.futures import wait

                wait(
                    [
                        self._executor.submit(_worker_pid)
                        for _ in range(self.workers)
                    ],
                    timeout=30.0,
                )

    def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    def kill_one(self) -> bool:
        """SIGKILL one live pool process (the worker-kill fault hook)."""
        if not self.workers or self._executor is None:
            return False
        procs = getattr(self._executor, "_processes", {})
        for pid in list(procs):
            try:
                os.kill(pid, signal.SIGKILL)
                self.kills += 1
                return True
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                continue
        return False  # pragma: no cover - pool without processes

    async def run(self, payload: dict, timeout: float | None = None) -> dict:
        """Execute one job; translate pool death into WorkerCrashError.

        ``timeout`` (wall seconds) bounds the await — the job itself is
        additionally bounded by its config's worker-side watchdog.  On
        timeout the future is abandoned (threads/processes cannot be
        preempted) and ``asyncio.TimeoutError`` propagates for the
        caller's deadline handling.
        """
        if self._executor is None:
            self.start()
        loop = asyncio.get_running_loop()
        try:
            # submit itself raises BrokenProcessPool when the executor
            # is already marked broken (a worker died between jobs), so
            # it must sit inside the same translation scope as the await.
            future = loop.run_in_executor(self._executor, solve_job, payload)
            return await asyncio.wait_for(future, timeout)
        except BrokenProcessPool as err:
            # A dead worker poisons the whole executor: rebuild so the
            # next attempt (and every other tenant) gets a live pool.
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._build()
            self.rebuilds += 1
            raise WorkerCrashError(
                f"worker process died mid-solve ({err}); pool rebuilt"
            ) from None
