"""The graceful-degradation ladder: shed precision before requests.

Steiner et al.'s elastic/stale-synchronous reading of SpTRSV (arXiv
2607.02324, encoded as our ``stale_sync`` design in PR 7) is exactly a
*controlled-degradation knob*: accept bounded staleness, keep making
progress, certify the result after the fact.  The service generalises
that into a ladder of modes, each strictly cheaper / more fault-tolerant
than the one above, each with a defined result contract:

====================  =====================================================
rung                  contract
====================  =====================================================
``exact``             the configured pipeline, bitwise-reproducible
``engine_fallback``   same solve on the scalar ``array`` interpreter —
                      engines are bit-identical, so still an exact result
                      (sheds the epoch compiler, not precision)
``stale``             ``stale_sync`` overlay with the ladder's certified
                      residual ceiling: the validation pass replays every
                      above-ceiling stale read, so the response carries
                      ``residual <= ceiling`` or a typed error
``estimate``          no solve at all — the fast model's priced
                      :class:`~repro.exec_model.timeline.ExecutionReport`
                      (the admission oracle) returned as an estimate-only
                      response
====================  =====================================================

The service walks the ladder downward on structural failures (tripped
breakers, exhausted recovery) and jumps straight to ``estimate`` under
queue pressure — requests are shed (typed
:class:`~repro.errors.ServiceOverloadError`) only when even
estimate-serving capacity is gone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.exec_model.costmodel import Design
from repro.runtime.config import RunConfig

__all__ = ["DegradeMode", "DegradationLadder", "LADDER"]


class DegradeMode(str, Enum):
    """The ladder's rungs, in strictly decreasing fidelity."""

    EXACT = "exact"
    ENGINE_FALLBACK = "engine_fallback"
    STALE = "stale"
    ESTIMATE = "estimate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Ladder order, top (full fidelity) to bottom (estimate-only).
LADDER = (
    DegradeMode.EXACT,
    DegradeMode.ENGINE_FALLBACK,
    DegradeMode.STALE,
    DegradeMode.ESTIMATE,
)


@dataclass(frozen=True)
class DegradationLadder:
    """Mode-selection policy plus the config surgery for each rung.

    Attributes
    ----------
    stale_k / stale_ceiling:
        The :class:`~repro.engine.protocol.StalePolicy` knobs of the
        ``stale`` rung.  The ceiling doubles as the rung's *certified
        residual ceiling*: a degraded-stale response is certified iff
        its backward error is at or below it.
    """

    stale_k: int = 2
    stale_ceiling: float = 1e-8

    # ------------------------------------------------------------------
    def applicable(self, mode: DegradeMode, config: RunConfig) -> bool:
        """Can ``config`` be degraded onto ``mode``'s rung at all?"""
        if mode is DegradeMode.EXACT or mode is DegradeMode.ESTIMATE:
            return True
        if mode is DegradeMode.ENGINE_FALLBACK:
            # The scalar array interpreter is the fallback target; a
            # config already pinned to a scalar engine has nothing to
            # fall back from.
            return config.engine not in ("array", "reference")
        if mode is DegradeMode.STALE:
            # Staleness is an overlay of the read-only NVSHMEM design;
            # a config already running stale (or on a design with
            # different memory semantics) skips this rung.
            return config.design is Design.SHMEM_READONLY
        return False  # pragma: no cover - exhaustive enum

    def next_mode(
        self, mode: DegradeMode, config: RunConfig
    ) -> DegradeMode | None:
        """First applicable rung strictly below ``mode`` (None at floor)."""
        idx = LADDER.index(DegradeMode(mode))
        for candidate in LADDER[idx + 1 :]:
            if self.applicable(candidate, config):
                return candidate
        return None

    # ------------------------------------------------------------------
    def derive_config(
        self, config: RunConfig, mode: DegradeMode
    ) -> RunConfig:
        """The rung's executable config (``estimate`` needs no surgery —
        the worker prices instead of solving)."""
        mode = DegradeMode(mode)
        if mode is DegradeMode.ENGINE_FALLBACK:
            # epoch_lookahead is a vector-engine knob; the array engine
            # rejects it, so the fallback config must drop it.
            return replace(config, engine="array", epoch_lookahead=None)
        if mode is DegradeMode.STALE:
            return replace(
                config,
                design=Design.STALE_SYNC,
                stale_k=self.stale_k,
                stale_ceiling=self.stale_ceiling,
            )
        return config

    def certified_ceiling(self, mode: DegradeMode) -> float:
        """Residual ceiling a degraded result must certify against."""
        return self.stale_ceiling if DegradeMode(mode) is DegradeMode.STALE else 0.0
