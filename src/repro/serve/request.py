"""Request/response vocabulary of the solve service.

A :class:`SolveRequest` is one tenant's solve: a workload (a named
generator spec, or an in-process matrix), a right-hand side, a
:class:`~repro.runtime.config.RunConfig`, a wall-clock deadline, and a
degradation consent flag.  :meth:`SolveRequest.from_mapping` is the wire
surface (the TCP front-end and the CLIs parse JSON into it), with every
unknown key raising a typed
:class:`~repro.errors.ConfigurationError` — same contract as the
``RunConfig`` JSON surface it embeds.

:func:`matrix_fingerprint` is the content hash behind cross-tenant
artefact sharing, worker-side caches, and circuit-breaker keys: two
requests naming the same structure and values share one spilled
analysis bundle no matter which tenant sent them first.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.config import RunConfig
from repro.sparse.csc import CscMatrix

__all__ = [
    "GENERATORS",
    "SolveRequest",
    "ServiceResult",
    "build_workload",
    "matrix_fingerprint",
]


def _generators() -> dict:
    from repro.workloads.generators import (
        banded_lower,
        forest_lower,
        grid_graph_lower,
        random_lower,
        tridiagonal_lower,
    )

    return {
        "forest": forest_lower,
        "tridiagonal": tridiagonal_lower,
        "banded": banded_lower,
        "random": random_lower,
        "grid": grid_graph_lower,
    }


#: Workload generator names accepted on the wire.
GENERATORS = ("forest", "tridiagonal", "banded", "random", "grid")


def build_workload(spec: dict) -> CscMatrix:
    """Materialise a workload spec: ``{"generator": name, **kwargs}``.

    The kwargs pass straight to the named generator (``n``, ``seed``,
    ``bandwidth``, ``rows``/``cols``, ...); an unknown generator raises
    a typed error listing the choices.
    """
    if "generator" not in spec:
        raise ConfigurationError(
            "workload spec needs a 'generator' key",
            parameter="workload",
            value=spec,
        )
    name = spec["generator"]
    table = _generators()
    if name not in table:
        raise ConfigurationError(
            f"unknown workload generator {name!r}; valid choices: "
            + ", ".join(GENERATORS),
            parameter="workload",
            value=name,
            choices=GENERATORS,
        )
    kwargs = {k: v for k, v in spec.items() if k != "generator"}
    try:
        return table[name](**kwargs)
    except TypeError as err:
        raise ConfigurationError(
            f"bad arguments for workload generator {name!r}: {err}",
            parameter="workload",
            value=spec,
        ) from None


def workload_key(spec: dict) -> str:
    """Deterministic cache key of a workload spec."""
    return "|".join(f"{k}={spec[k]}" for k in sorted(spec))


def matrix_fingerprint(lower: CscMatrix) -> str:
    """Content hash of a matrix (structure + values + shape).

    The service keys artefact sharing, worker caches, and circuit
    breakers on this, so it must be a pure function of the operand:
    equal matrices fingerprint equal across processes and sessions.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(lower.indptr).tobytes())
    h.update(np.ascontiguousarray(lower.indices).tobytes())
    h.update(np.ascontiguousarray(lower.data).tobytes())
    h.update(repr(tuple(lower.shape)).encode())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class SolveRequest:
    """One tenant solve request.

    Exactly one of ``workload`` (generator spec) / ``matrix``
    (in-process operand) must be set.  ``rhs`` is either
    ``{"seed": int}`` (uniform [-1, 1), the chaos harness's convention)
    or ``{"values": [...]}``.  ``deadline`` is a wall-clock budget in
    seconds (``None`` uses the service default); ``allow_degraded``
    consents to the degradation ladder — without it the service fails
    requests instead of shedding precision.
    """

    config: RunConfig = field(default_factory=RunConfig)
    workload: dict | None = None
    matrix: CscMatrix | None = None
    rhs: dict = field(default_factory=lambda: {"seed": 0})
    deadline: float | None = None
    allow_degraded: bool = True
    request_id: str = ""

    def __post_init__(self):
        if (self.workload is None) == (self.matrix is None):
            raise ConfigurationError(
                "exactly one of 'workload' / 'matrix' must be given",
                parameter="workload",
                value=self.workload,
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be > 0, got {self.deadline}",
                parameter="deadline",
                value=self.deadline,
            )
        if not ("seed" in self.rhs or "values" in self.rhs):
            raise ConfigurationError(
                "rhs must carry 'seed' or 'values'",
                parameter="rhs",
                value=self.rhs,
            )

    @classmethod
    def from_mapping(cls, mapping: dict) -> "SolveRequest":
        """Parse one wire request (unknown keys are typed errors)."""
        known = {
            "config",
            "workload",
            "rhs",
            "deadline",
            "allow_degraded",
            "id",
        }
        extra = set(mapping) - known
        if extra:
            raise ConfigurationError(
                f"unknown request key(s): {sorted(extra)}; valid keys: "
                + ", ".join(sorted(known)),
                parameter="request",
                value=sorted(extra),
                choices=tuple(sorted(known)),
            )
        config = mapping.get("config", {})
        if not isinstance(config, RunConfig):
            config = RunConfig.from_mapping(dict(config))
        return cls(
            config=config,
            workload=mapping.get("workload"),
            rhs=dict(mapping.get("rhs", {"seed": 0})),
            deadline=mapping.get("deadline"),
            allow_degraded=bool(mapping.get("allow_degraded", True)),
            request_id=str(mapping.get("id", "")),
        )

    def with_config(self, **overrides) -> "SolveRequest":
        return replace(self, config=replace(self.config, **overrides))

    def resolve_rhs(self, n: int) -> np.ndarray:
        """The right-hand side vector for an ``n``-row system."""
        if "values" in self.rhs:
            b = np.asarray(self.rhs["values"], dtype=np.float64)
            if b.shape != (n,):
                raise ConfigurationError(
                    f"rhs has {b.shape[0] if b.ndim == 1 else b.shape} "
                    f"values for an n={n} system",
                    parameter="rhs",
                    value=b.shape,
                )
            return b
        rng = np.random.default_rng(int(self.rhs["seed"]))
        return rng.uniform(-1.0, 1.0, size=n)


@dataclass
class ServiceResult:
    """One served response.

    ``status`` is ``"ok"`` (exact solve, bitwise-reproducible) or
    ``"degraded"`` (the ladder shed precision: ``mode`` names the rung,
    ``certified`` reports whether the result carries a residual
    certificate below ``ceiling``).  Errors are never encoded here —
    they surface as typed :class:`~repro.errors.ServiceError` /
    :class:`~repro.errors.ReproError` raises (or their wire mapping in
    the TCP front-end).
    """

    request_id: str
    status: str
    mode: str
    x: np.ndarray | None = None
    residual: float = 0.0
    certified: bool = False
    ceiling: float = 0.0
    events: int = 0
    total_time: float = 0.0
    estimate: dict | None = None
    attempts: int = 1
    latency: float = 0.0
    degraded_from: str = ""

    def to_mapping(self) -> dict:
        """JSON-able response payload (the TCP wire format)."""
        out = {
            "id": self.request_id,
            "status": self.status,
            "mode": self.mode,
            "residual": self.residual,
            "certified": self.certified,
            "ceiling": self.ceiling,
            "events": self.events,
            "total_time": self.total_time,
            "attempts": self.attempts,
            "latency": self.latency,
        }
        if self.x is not None:
            out["x"] = [float(v) for v in self.x]
        if self.estimate is not None:
            out["estimate"] = self.estimate
        if self.degraded_from:
            out["degraded_from"] = self.degraded_from
        return out
