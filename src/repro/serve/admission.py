"""Token-bucket admission control priced by the fast model.

The service's first line of defence: before a request may even join the
bounded queue, it must afford its *estimated cost* from a token bucket.
The cost estimate comes from the analytic fast model
(:func:`~repro.exec_model.timeline.simulate_execution`) — the admission
oracle ROADMAP item 5 anticipated: a near-zero-cost prediction of the
solve's simulated makespan, cached per ``(matrix, config)`` key, so a
heavyweight solve consumes proportionally more admission budget than a
trivial one and a flood of expensive requests is shed *before* it ties
up workers.

Rejections are typed :class:`~repro.errors.ServiceOverloadError` with a
computed ``retry_after`` — the bucket knows exactly when enough tokens
will have refilled — so well-behaved clients back off precisely instead
of hammering.
"""

from __future__ import annotations

import time

from repro.errors import ServiceOverloadError

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket with a monotonic (injectable) clock.

    ``capacity`` bounds the burst; ``refill_rate`` is tokens per
    second.  :meth:`try_take` either debits ``cost`` and returns 0.0,
    or leaves the bucket untouched and returns the seconds until
    ``cost`` tokens will be available.
    """

    def __init__(
        self, capacity: float, refill_rate: float, clock=time.monotonic
    ):
        if capacity <= 0 or refill_rate <= 0:
            raise ValueError(
                f"capacity and refill_rate must be > 0, got "
                f"{capacity}/{refill_rate}"
            )
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.capacity,
            self._tokens + (now - self._stamp) * self.refill_rate,
        )
        self._stamp = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, cost: float) -> float:
        """Debit ``cost`` tokens; 0.0 on success, else seconds to wait."""
        self._refill()
        if cost <= self._tokens:
            self._tokens -= cost
            return 0.0
        deficit = min(cost, self.capacity) - self._tokens
        return deficit / self.refill_rate


class AdmissionController:
    """Admit or shed requests by fast-model-priced token cost.

    A request estimated to occupy ``est`` simulated seconds costs
    ``max(1, est / unit_cost)`` tokens — ``unit_cost`` is the simulated
    makespan worth one token.  ``None`` for ``bucket`` disables
    admission control (every request admitted), which is the unit-test
    default; services under load configure a bucket sized to their
    worker throughput.
    """

    def __init__(
        self, bucket: TokenBucket | None = None, unit_cost: float = 1e-3
    ):
        if unit_cost <= 0:
            raise ValueError(f"unit_cost must be > 0, got {unit_cost}")
        self.bucket = bucket
        self.unit_cost = unit_cost
        self.admitted = 0
        self.shed = 0

    def cost_of(self, estimate: float) -> float:
        """Token cost of a solve estimated at ``estimate`` sim-seconds."""
        return max(1.0, float(estimate) / self.unit_cost)

    def admit(self, estimate: float) -> float:
        """Admit a request or raise typed overload with ``retry_after``.

        Returns the token cost debited (0.0 when admission control is
        disabled).
        """
        if self.bucket is None:
            self.admitted += 1
            return 0.0
        cost = self.cost_of(estimate)
        wait = self.bucket.try_take(cost)
        if wait > 0.0:
            self.shed += 1
            raise ServiceOverloadError(
                f"admission shed: cost {cost:.1f} tokens exceeds budget; "
                f"retry after {wait:.3f}s",
                retry_after=wait,
                reason="admission",
            )
        self.admitted += 1
        return cost
