"""Newline-delimited-JSON TCP front-end for :class:`SolveService`.

One connection, many requests: each line in is one
:meth:`~repro.serve.request.SolveRequest.from_mapping` mapping, each
line out is either a :meth:`~repro.serve.request.ServiceResult.to_mapping`
payload or a typed error mapping::

    {"error": "ServiceOverloadError", "message": ..., "retry_after": 0.12}

Errors never tear the connection down — a shed request is a *response*,
and a well-behaved client uses ``retry_after`` to back off.  What does
tear the connection down is the slow-client defence: writes go through a
small OS send buffer and a bounded ``drain()`` timeout, so a client that
stops reading cannot pin server memory or wedge a handler task — its
connection is dropped (and counted) instead.  That is the service-level
mirror of the solver's "never hang" invariant.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServiceOverloadError,
)
from repro.serve.request import SolveRequest
from repro.serve.service import SolveService

__all__ = ["ServiceEndpoint"]

#: Bytes of OS-level send buffering before ``drain()`` blocks — small on
#: purpose, so a non-reading client surfaces as a drain timeout quickly.
WRITE_HIGH_WATER = 64 * 1024


class ServiceEndpoint:
    """A :class:`SolveService` listening on a TCP socket.

    Parameters
    ----------
    service:
        The (not-yet-started) service to expose.
    host / port:
        Bind address; port ``0`` picks a free port (tests), readable
        from :attr:`port` after :meth:`start`.
    drain_timeout:
        Seconds a response write may wait for the client to read before
        the connection is declared slow and dropped.
    """

    def __init__(
        self,
        service: SolveService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        drain_timeout: float = 2.0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self.slow_client_drops = 0
        self.protocol_errors = 0
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            limit=WRITE_HIGH_WATER,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "ServiceEndpoint":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:  # pragma: no cover - CLI path
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    @staticmethod
    def _error_mapping(err: ReproError) -> dict:
        out = {
            "error": type(err).__name__,
            "message": str(err),
        }
        if isinstance(err, (ServiceOverloadError, CircuitOpenError)):
            out["retry_after"] = err.retry_after
        if isinstance(err, ServiceOverloadError):
            out["reason"] = err.reason
        if isinstance(err, DeadlineExceededError):
            out["stage"] = err.stage
        return out

    async def _respond(self, writer: asyncio.StreamWriter, payload: dict):
        """Write one response line; drop the connection on a slow client."""
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        try:
            await asyncio.wait_for(writer.drain(), self.drain_timeout)
            return True
        except asyncio.TimeoutError:
            self.slow_client_drops += 1
            writer.transport.abort()
            return False

    async def _handle(self, reader, writer):
        writer.transport.set_write_buffer_limits(high=WRITE_HIGH_WATER)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    mapping = json.loads(line)
                    request = SolveRequest.from_mapping(mapping)
                except (json.JSONDecodeError, ReproError) as err:
                    self.protocol_errors += 1
                    ok = await self._respond(
                        writer,
                        {"error": type(err).__name__, "message": str(err)},
                    )
                    if not ok:
                        return
                    continue
                try:
                    result = await self.service.submit(request)
                    payload = result.to_mapping()
                except ReproError as err:
                    payload = self._error_mapping(err)
                if not await self._respond(writer, payload):
                    return
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (  # pragma: no cover - dead transport / shutdown race
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass
