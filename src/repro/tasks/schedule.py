"""Task-to-GPU distribution and the malleable task pool (Section V).

Two placement policies:

* :func:`block_distribution` — the baseline: components split into one
  contiguous block per GPU in ascending order.  Produces the
  unidirectional waiting problem (GPU ``k`` waits on all GPUs ``< k``).
* :func:`round_robin_distribution` — the paper's task model: contiguous
  tasks dealt round-robin over GPUs *in order of available memory* so
  every GPU receives both early (small-index) and late components.

Both return a :class:`Distribution` that the execution models and the
functional solver emulations consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TaskModelError
from repro.machine.memory import DeviceMemory
from repro.tasks.partition import TaskPartition, partition_components

__all__ = [
    "Distribution",
    "block_distribution",
    "round_robin_distribution",
    "remap_failed_components",
    "redistribute_after_failure",
]


@dataclass(frozen=True)
class Distribution:
    """A complete workload placement.

    Attributes
    ----------
    n:
        Number of components.
    n_gpus:
        Number of participating GPUs (PE ranks ``0..n_gpus-1``).
    partition:
        The underlying component-task partition.
    task_gpu:
        ``(n_tasks,)`` owning GPU rank per task.
    task_launch_slot:
        ``(n_tasks,)`` kernel-launch position of each task *within its
        GPU's launch queue* (0 = launched first).  Tasks on one GPU launch
        in ascending component order, keeping per-GPU dispatch monotone in
        component index (the deadlock-freedom requirement of the
        sync-free execution model).
    gpu_of:
        ``(n,)`` owning GPU rank per component.
    """

    n: int
    n_gpus: int
    partition: TaskPartition
    task_gpu: np.ndarray
    task_launch_slot: np.ndarray
    gpu_of: np.ndarray

    @property
    def n_tasks(self) -> int:
        return self.partition.n_tasks

    @property
    def tasks_per_gpu(self) -> np.ndarray:
        """Number of tasks placed on each GPU."""
        return np.bincount(self.task_gpu, minlength=self.n_gpus)

    def task_of(self) -> np.ndarray:
        """``(n,)`` owning task per component."""
        return self.partition.task_of_components()

    def components_on_gpu(self, g: int) -> np.ndarray:
        """All component indices owned by GPU ``g`` (ascending)."""
        return np.nonzero(self.gpu_of == g)[0]

    def local_fraction(self, dag) -> float:
        """Fraction of dependency edges that stay on one GPU.

        Higher is better: cross-GPU edges are the ones that pay
        communication.  ``dag`` is a
        :class:`repro.analysis.dag.DependencyDag`.
        """
        if dag.n_edges == 0:
            return 1.0
        src = np.repeat(
            np.arange(dag.n, dtype=np.int64), np.diff(dag.out_ptr)
        )
        same = self.gpu_of[src] == self.gpu_of[dag.out_idx]
        return float(np.mean(same))


def _build(
    n: int, n_gpus: int, partition: TaskPartition, task_gpu: np.ndarray
) -> Distribution:
    sizes = partition.sizes()
    gpu_of = np.repeat(task_gpu, sizes)
    # Launch slots: ascending task id per GPU.
    launch = np.zeros(partition.n_tasks, dtype=np.int64)
    next_slot = np.zeros(n_gpus, dtype=np.int64)
    for t in range(partition.n_tasks):
        g = int(task_gpu[t])
        launch[t] = next_slot[g]
        next_slot[g] += 1
    return Distribution(
        n=n,
        n_gpus=n_gpus,
        partition=partition,
        task_gpu=task_gpu,
        task_launch_slot=launch,
        gpu_of=gpu_of,
    )


def block_distribution(n: int, n_gpus: int) -> Distribution:
    """Baseline: one contiguous ascending block per GPU.

    Equivalent to a round-robin distribution with one task per GPU; this
    is the "continued component distribution" of the 4GPU-Shmem scenario.
    """
    if n_gpus < 1:
        raise TaskModelError(f"n_gpus must be >= 1, got {n_gpus}")
    part = partition_components(n, min(n_gpus, max(n, 1)))
    task_gpu = np.arange(part.n_tasks, dtype=np.int64)
    return _build(n, n_gpus, part, task_gpu)


def round_robin_distribution(
    n: int,
    n_gpus: int,
    tasks_per_gpu: int,
    memories: list[DeviceMemory] | None = None,
) -> Distribution:
    """The paper's task model: tasks dealt round-robin over GPUs.

    Parameters
    ----------
    n, n_gpus:
        Problem and machine size.
    tasks_per_gpu:
        Tasks per GPU (the Fig. 9 sensitivity knob); total tasks =
        ``tasks_per_gpu * n_gpus`` (capped at ``n``).
    memories:
        Optional per-GPU :class:`~repro.machine.memory.DeviceMemory`.
        When given, each round deals to GPUs in descending free-memory
        order ("round-robin order based on the available memory",
        Section V); with homogeneous empty devices this degenerates to
        plain round-robin.
    """
    if n_gpus < 1:
        raise TaskModelError(f"n_gpus must be >= 1, got {n_gpus}")
    if tasks_per_gpu < 1:
        raise TaskModelError(f"tasks_per_gpu must be >= 1, got {tasks_per_gpu}")
    n_tasks = min(tasks_per_gpu * n_gpus, max(n, 1))
    part = partition_components(n, n_tasks)
    task_gpu = np.zeros(part.n_tasks, dtype=np.int64)

    if memories is not None and len(memories) != n_gpus:
        raise TaskModelError(
            f"got {len(memories)} device memories for {n_gpus} GPUs"
        )
    # Track placed bytes to honour the available-memory rule.
    sizes = part.sizes()
    placed_bytes = np.array(
        [0 if memories is None else memories[g].used() for g in range(n_gpus)],
        dtype=np.float64,
    )
    t = 0
    while t < part.n_tasks:
        # One dealing round: GPUs ordered by most-available memory first,
        # stable on rank for determinism.
        order = np.argsort(placed_bytes, kind="stable")
        for g in order:
            if t >= part.n_tasks:
                break
            task_gpu[t] = g
            placed_bytes[g] += float(sizes[t]) * 8 * 3  # x, b, intermediates
            t += 1
    return _build(n, n_gpus, part, task_gpu)


# ----------------------------------------------------------------------
# Graceful degradation: re-distribution after a GPU failure.
# ----------------------------------------------------------------------
def remap_failed_components(
    gpu_of: np.ndarray,
    components,
    failed: int,
    n_gpus: int,
    dead: set[int] | None = None,
) -> np.ndarray:
    """Deterministically remap ``components`` off a failed GPU.

    This is the fine-grained hook the DES engines call mid-run when a
    ``gpu_fail`` fault fires: ``components`` (the failed GPU's unsolved
    work, ascending) is dealt round-robin over the surviving ranks in
    ascending-current-load order (stable on rank), mirroring the paper's
    available-memory dealing rule at component granularity.

    Returns the new owning rank per entry of ``components``.  Raises
    :class:`TaskModelError` when no survivor remains.
    """
    dead = set(dead or ()) | {failed}
    survivors = [g for g in range(n_gpus) if g not in dead]
    if not survivors:
        raise TaskModelError(
            f"cannot remap components: all {n_gpus} GPUs have failed"
        )
    load = np.bincount(gpu_of, minlength=n_gpus).astype(np.int64)
    order = sorted(survivors, key=lambda g: (load[g], g))
    targets = np.empty(len(components), dtype=np.int64)
    for k in range(len(components)):
        targets[k] = order[k % len(order)]
    return targets


def redistribute_after_failure(dist: Distribution, failed: int) -> Distribution:
    """Rebuild a :class:`Distribution` with one GPU's tasks remapped.

    The planning-level counterpart of :func:`remap_failed_components`:
    the failed rank's whole tasks are dealt over the survivors in
    ascending-load order, producing a valid placement on the *same*
    ``n_gpus``-rank machine with rank ``failed`` left empty (callers
    that shrink the machine can relabel ranks themselves).
    """
    if not 0 <= failed < dist.n_gpus:
        raise TaskModelError(
            f"failed rank {failed} out of range (n_gpus={dist.n_gpus})"
        )
    if dist.n_gpus < 2:
        raise TaskModelError("cannot redistribute: no surviving GPU")
    task_gpu = dist.task_gpu.copy()
    sizes = dist.partition.sizes()
    load = np.zeros(dist.n_gpus, dtype=np.int64)
    for t in range(dist.n_tasks):
        if task_gpu[t] != failed:
            load[task_gpu[t]] += sizes[t]
    survivors = [g for g in range(dist.n_gpus) if g != failed]
    for t in range(dist.n_tasks):
        if task_gpu[t] == failed:
            g = min(survivors, key=lambda s: (load[s], s))
            task_gpu[t] = g
            load[g] += sizes[t]
    return _build(dist.n, dist.n_gpus, dist.partition, task_gpu)
